//! `mosaic` — command-line driver for the reproduction study.
//!
//! ```text
//! mosaic list                          # workloads and platforms
//! mosaic run <workload> <platform>     # fit all nine models on one pair
//! mosaic figure <fig2..fig11|tab6..tab8|casestudy|all>
//! mosaic sensitivity <platform>        # TLB sensitivity of every workload
//! mosaic serve [addr] [--warm <workload>:<platform>]... [--cache-cap <n>] [--jobs <n>] [--sampled[=<w>:<p>:<b>]]  # start mosaicd
//! mosaic query <addr> <workload> <platform> <layout-spec> [model]
//! mosaic query <addr> stats            # fetch server metrics
//! mosaic query <addr> pairs            # list the server's fitted pairs
//! mosaic recommend <addr> <workload> <platform> <budget> [threshold]  # ask for a layout
//! mosaic batch <addr> <request>...     # several requests on one wire line
//! mosaic metrics <addr>                # Prometheus text exposition scrape
//! mosaic trace <addr> [n]              # dump the last n request traces
//! mosaic audit [--json | --sarif] [--summary] [--deny] [--root <path>]  # static analysis (CI gate)
//! mosaic bench [--json] [workload] [platform]  # hot-path throughput + serving latency
//! ```
//!
//! `MOSAIC_FAST=1` selects the low-fidelity preset everywhere;
//! `MOSAIC_JOBS=<n>` caps the grid battery's worker threads (an explicit
//! `--jobs` wins, the default is the machine's available parallelism);
//! `MOSAIC_SAMPLED=1` (or `=<window>:<period>:<bound>`) turns on
//! validated interval-sampled grid builds (an explicit `--sampled` wins).

use harness::report::{pct, TextTable};
use harness::{casestudy, figures, tables, Grid, Speed};
use machine::Platform;
use mosmodel::metrics::{geo_mean_err, max_err};
use mosmodel::models::ModelKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(args.get(1), args.get(2)),
        Some("figure") => cmd_figure(args.get(1)),
        Some("sensitivity") => cmd_sensitivity(args.get(1)),
        Some("export") => cmd_export(args.get(1), args.get(2)),
        Some("describe") => cmd_describe(args.get(1), args.get(2), args.get(3)),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("recommend") => cmd_recommend(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("metrics") => cmd_metrics(args.get(1)),
        Some("trace") => cmd_trace(args.get(1), args.get(2)),
        Some("audit") => cmd_audit(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => {
            eprintln!(
                "usage: mosaic <list | run <workload> <platform> | figure <id> [--csv] | sensitivity <platform> | export <workload> <platform> | describe <workload> <platform> [model] | serve [addr] [--warm <workload>:<platform>]... [--cache-cap <n>] [--jobs <n>] [--sampled[=<w>:<p>:<b>]] | query <addr> ... | recommend <addr> <workload> <platform> <budget> [threshold] | batch <addr> <request>... | metrics <addr> | trace <addr> [n] | audit [--json | --sarif] [--summary] [--deny] [--root <path>] | bench [--json] [workload] [platform]>"
            );
            2
        }
    };
    std::process::exit(code);
}

fn cmd_list() -> i32 {
    println!("workloads (paper Table 5):");
    for w in workloads::registry() {
        println!(
            "  {:<22} {:>6} MiB nominal",
            w.name,
            w.nominal_footprint >> 20
        );
    }
    println!("\nplatforms (paper Tables 3-4; * = measured in the paper):");
    for p in Platform::ALL_EXTENDED {
        let starred = Platform::ALL.contains(&p);
        println!(
            "  {}{:<12} STLB {:>4} entries{}, {} walker(s), L3 {} MiB",
            if starred { "*" } else { " " },
            p.name,
            p.stlb.entries,
            if p.stlb.holds_2m {
                " (shared 4K/2M)"
            } else {
                " (4K only)"
            },
            p.walkers,
            p.l3_bytes >> 20,
        );
    }
    0
}

fn cmd_run(workload: Option<&String>, platform: Option<&String>) -> i32 {
    let Some(workload) = workload else {
        eprintln!("usage: mosaic run <workload> <platform>");
        return 2;
    };
    let default_platform = "SandyBridge".to_string();
    let platform_name = platform.unwrap_or(&default_platform);
    let Some(platform) = Platform::by_name(platform_name) else {
        eprintln!("unknown platform {platform_name:?}; see `mosaic list`");
        return 2;
    };
    if workloads::WorkloadSpec::by_name(workload).is_none() {
        eprintln!("unknown workload {workload:?}; see `mosaic list`");
        return 2;
    }
    let grid = Grid::new(Speed::from_env());
    let entry = grid.entry(workload, platform);
    let ds = entry.dataset();
    println!(
        "{workload} on {}: {} layouts measured, TLB sensitivity {}",
        platform.name,
        entry.records.len(),
        entry
            .full_dataset()
            .tlb_sensitivity()
            .map_or("n/a".to_string(), pct)
    );
    let mut t = TextTable::new(vec!["model".into(), "max err".into(), "geomean err".into()]);
    for kind in ModelKind::ALL {
        match kind.fit(&ds) {
            Ok(m) => t.row(vec![
                kind.name().into(),
                pct(max_err(&m, &ds)),
                pct(geo_mean_err(&m, &ds)),
            ]),
            Err(e) => t.row(vec![kind.name().into(), e.to_string(), String::new()]),
        };
    }
    println!("\n{t}");
    match casestudy::one_gb(&grid, workload, platform) {
        Ok(v) => println!("\n{v}"),
        Err(e) => println!("\n1GB case study unavailable: {e}"),
    }
    0
}

fn cmd_figure(which: Option<&String>) -> i32 {
    let default = "fig2".to_string();
    let what = which.unwrap_or(&default).clone();
    let csv = std::env::args().any(|a| a == "--csv");
    let grid = Grid::new(Speed::from_env());
    let run = |name: &str| what == "all" || what == name;
    let mut matched = false;

    // CSV export is supported for the series figures.
    if csv {
        let curve = match what.as_str() {
            "fig3" => Some(figures::fig3(&grid).expect("anchors")),
            "fig8" => Some(figures::fig8(&grid).expect("anchors")),
            "fig10" => Some(figures::fig10(&grid).expect("anchors")),
            _ => None,
        };
        if let Some(c) = curve {
            print!("{}", c.to_csv());
            return 0;
        }
        if what == "fig5" || what == "fig6" {
            let stat = if what == "fig5" {
                figures::ErrorStat::Max
            } else {
                figures::ErrorStat::GeoMean
            };
            for (p, names) in figures::sensitive_by_platform(&grid) {
                println!("# {}", p.name);
                print!("{}", figures::error_matrix(&grid, p, &names, stat).to_csv());
            }
            return 0;
        }
        eprintln!("--csv supports fig3, fig5, fig6, fig8, fig10");
        return 2;
    }

    if run("fig2") {
        matched = true;
        let pairs = figures::sensitive_pairs(&grid);
        println!("{}\n", figures::fig2(&grid, &pairs));
    }
    if run("fig3") {
        matched = true;
        println!("Figure 3 — {}\n", figures::fig3(&grid).expect("anchors"));
    }
    if run("fig5") {
        matched = true;
        for m in figures::fig5(&grid, &figures::sensitive_by_platform(&grid)) {
            println!("Figure 5 — {m}\n");
        }
    }
    if run("fig6") {
        matched = true;
        for m in figures::fig6(&grid, &figures::sensitive_by_platform(&grid)) {
            println!("Figure 6 — {m}\n");
        }
    }
    if run("fig7") {
        matched = true;
        println!("{}\n", figures::fig7(&grid).expect("anchors"));
    }
    if run("fig8") {
        matched = true;
        println!("Figure 8 — {}\n", figures::fig8(&grid).expect("anchors"));
    }
    if run("fig9") {
        matched = true;
        println!("{}\n", figures::fig9(&grid).expect("anchors"));
    }
    if run("fig10") {
        matched = true;
        println!("Figure 10 — {}\n", figures::fig10(&grid).expect("anchors"));
    }
    if run("fig11") {
        matched = true;
        println!("Figure 11 — {}\n", figures::fig11(&grid).expect("anchors"));
    }
    if run("tab6") {
        matched = true;
        let pairs = figures::sensitive_pairs(&grid);
        println!("{}\n", tables::tab6(&grid, &pairs, 6));
    }
    if run("tab7") {
        matched = true;
        println!("{}\n", tables::tab7(&grid).expect("anchors"));
    }
    if run("tab8") {
        matched = true;
        let pairs = figures::sensitive_pairs(&grid);
        println!("{}\n", tables::tab8(&grid, &pairs));
    }
    if run("casestudy") {
        matched = true;
        let pairs = figures::sensitive_pairs(&grid);
        for v in casestudy::one_gb_sweep(&grid, &pairs) {
            println!("{v}\n");
        }
    }
    if !matched {
        eprintln!("unknown figure {what:?}; try fig2..fig11, tab6..tab8, casestudy, all");
        return 2;
    }
    0
}

/// Dumps one pair's full battery as CSV (layout description, kind, and
/// every counter) for external analysis.
fn cmd_export(workload: Option<&String>, platform: Option<&String>) -> i32 {
    let (Some(workload), Some(platform_name)) = (workload, platform) else {
        eprintln!("usage: mosaic export <workload> <platform>");
        return 2;
    };
    let Some(platform) = Platform::by_name(platform_name) else {
        eprintln!("unknown platform {platform_name:?}");
        return 2;
    };
    if workloads::WorkloadSpec::by_name(workload).is_none() {
        eprintln!("unknown workload {workload:?}");
        return 2;
    }
    let grid = Grid::new(Speed::from_env());
    let entry = grid.entry(workload, platform);
    println!("kind,R,H,M,C,instructions,program_l1d,program_l2,program_l3,walker_l1d,walker_l2,walker_l3,layout");
    for r in &entry.records {
        let c = &r.counters;
        println!(
            "{:?},{},{},{},{},{},{},{},{},{},{},{},\"{}\"",
            r.kind,
            c.runtime_cycles,
            c.stlb_hits,
            c.stlb_misses,
            c.walk_cycles,
            c.instructions,
            c.program_l1d_loads,
            c.program_l2_loads,
            c.program_l3_loads,
            c.walker_l1d_loads,
            c.walker_l2_loads,
            c.walker_l3_loads,
            r.description.replace('"', "'"),
        );
    }
    0
}

/// Prints the fitted formula of one (or every) model for a pair.
fn cmd_describe(
    workload: Option<&String>,
    platform: Option<&String>,
    model: Option<&String>,
) -> i32 {
    let (Some(workload), Some(platform_name)) = (workload, platform) else {
        eprintln!("usage: mosaic describe <workload> <platform> [model]");
        return 2;
    };
    let Some(platform) = Platform::by_name(platform_name) else {
        eprintln!("unknown platform {platform_name:?}");
        return 2;
    };
    let grid = Grid::new(Speed::from_env());
    let ds = grid.dataset(workload, platform);
    let kinds: Vec<ModelKind> = match model {
        Some(m) => match m.parse() {
            Ok(kind) => vec![kind],
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
        None => ModelKind::ALL.to_vec(),
    };
    println!("fitted models for {workload} on {}:", platform.name);
    for kind in kinds {
        match kind.fit(&ds) {
            Ok(fitted) => println!("  {fitted}"),
            Err(e) => println!("  {}: {e}", kind.name()),
        }
    }
    0
}

fn cmd_sensitivity(platform: Option<&String>) -> i32 {
    let default_platform = "Broadwell".to_string();
    let platform_name = platform.unwrap_or(&default_platform);
    let Some(platform) = Platform::by_name(platform_name) else {
        eprintln!("unknown platform {platform_name:?}");
        return 2;
    };
    let grid = Grid::new(Speed::from_env());
    let mut t = TextTable::new(vec![
        "workload".into(),
        "sensitivity".into(),
        "included".into(),
    ]);
    for w in workloads::registry() {
        let entry = grid.entry(w.name, platform);
        let sens = entry.full_dataset().tlb_sensitivity().unwrap_or(0.0);
        t.row(vec![
            w.name.into(),
            pct(sens),
            if entry.is_tlb_sensitive() {
                "yes".into()
            } else {
                "no (< 5%)".into()
            },
        ]);
    }
    println!(
        "TLB sensitivity on {} (paper §VI-A threshold: 5%):\n\n{t}",
        platform.name
    );
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    let usage = "usage: mosaic serve [addr] [--warm <workload>:<platform>]... [--cache-cap <n>] [--jobs <n>] [--sampled[=<w>:<p>:<b>]]";
    let mut addr = "127.0.0.1:7070".to_string();
    let mut positional_seen = false;
    let mut warm_pairs: Vec<(String, String)> = Vec::new();
    let mut cache_cap = service::registry::DEFAULT_PREDICTION_CACHE;
    let mut jobs: Option<usize> = None;
    // An explicit flag wins over the environment, so a service wrapper
    // that exports MOSAIC_SAMPLED can still be overridden per-launch.
    let mut sampled = harness::SampledConfig::from_env();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sampled" => sampled = Some(harness::DEFAULT_SAMPLED),
            spec if spec.starts_with("--sampled=") => {
                let text = &spec["--sampled=".len()..];
                match harness::SampledConfig::parse(text) {
                    Ok(cfg) => sampled = Some(cfg),
                    Err(e) => {
                        eprintln!("{usage} (--sampled: {e})");
                        return 2;
                    }
                }
            }
            "--cache-cap" => {
                let Some(text) = it.next() else {
                    eprintln!("{usage} (--cache-cap needs a number)");
                    return 2;
                };
                match text.parse::<usize>() {
                    Ok(n) => cache_cap = n,
                    Err(_) => {
                        eprintln!("{usage} (--cache-cap wants a number, got {text:?})");
                        return 2;
                    }
                }
            }
            "--jobs" => {
                let Some(text) = it.next() else {
                    eprintln!("{usage} (--jobs needs a number)");
                    return 2;
                };
                match text.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => {
                        eprintln!("{usage} (--jobs wants a positive number, got {text:?})");
                        return 2;
                    }
                }
            }
            "--warm" => {
                let Some(pair) = it.next() else {
                    eprintln!("{usage} (--warm needs <workload>:<platform>)");
                    return 2;
                };
                // Workload names may contain '/' but not ':', so the
                // rightmost ':' splits unambiguously.
                let Some((workload, platform_name)) = pair.rsplit_once(':') else {
                    eprintln!("--warm wants <workload>:<platform>, got {pair:?}");
                    return 2;
                };
                if workloads::WorkloadSpec::by_name(workload).is_none() {
                    eprintln!("unknown workload {workload:?}; see `mosaic list`");
                    return 2;
                }
                let Some(platform) = Platform::by_name(platform_name) else {
                    eprintln!("unknown platform {platform_name:?}; see `mosaic list`");
                    return 2;
                };
                warm_pairs.push((workload.to_string(), platform.name.to_string()));
            }
            other if other.starts_with('-') => {
                eprintln!("{usage} (unknown flag {other:?})");
                return 2;
            }
            other => {
                if positional_seen {
                    eprintln!("{usage} (unexpected argument {other:?})");
                    return 2;
                }
                positional_seen = true;
                addr = other.to_string();
            }
        }
    }
    let speed = Speed::from_env();
    let store_dir = service::registry::ModelRegistry::default_store_dir();
    // `--jobs` (or MOSAIC_JOBS, or available parallelism) sets the grid's
    // battery fan-out, so every cold fit — including the `--warm` pre-fits
    // below — measures its layouts on that many worker threads.
    let resolved_jobs = harness::resolve_jobs(jobs);
    let mut grid = Grid::new(speed).with_jobs(resolved_jobs);
    if let Some(cfg) = sampled {
        grid = grid.with_sampled(cfg);
    }
    let registry = service::registry::ModelRegistry::with_cache_capacity(
        grid,
        Some(store_dir.clone()),
        cache_cap,
    );
    let config = service::server::ServerConfig {
        addr: addr.clone(),
        ..Default::default()
    };
    let server = match service::server::Server::start(config, registry) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mosaicd: cannot listen on {addr}: {e}");
            return 1;
        }
    };
    let battery = match sampled {
        Some(cfg) => format!(
            "sampled {}:{} batteries gated at {}",
            cfg.window, cfg.period, cfg.bound
        ),
        None => "full batteries".to_string(),
    };
    println!(
        "mosaicd listening on {} ({} preset, {} battery jobs, {battery}, model store {})",
        server.addr(),
        speed.name,
        resolved_jobs,
        store_dir.display(),
    );
    // Pre-fit the requested pairs in the background, one `warm` request
    // per pair on its own connection: the registry's singleflight
    // fitting lets distinct pairs proceed in parallel while the server
    // is already accepting requests (a predict racing a warm for the
    // same pair simply coalesces onto the in-flight fit).
    let warm_addr = server.addr();
    for (workload, platform_name) in warm_pairs {
        std::thread::spawn(move || {
            let outcome = service::client::Client::connect(warm_addr)
                .and_then(|mut client| client.warm(&workload, &platform_name));
            match outcome {
                Ok(models) => {
                    println!("mosaicd: warmed {workload}:{platform_name} ({models} models)");
                }
                Err(e) => eprintln!("mosaicd: warm {workload}:{platform_name} failed: {e}"),
            }
        });
    }
    // Serve until the process is killed; workers own all the state.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_query(args: &[String]) -> i32 {
    let usage = "usage: mosaic query <addr> <workload> <platform> <layout-spec> [model] | mosaic query <addr> <stats | pairs>";
    let Some(addr) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let mut client = match service::client::Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("mosaic query: cannot reach {addr}: {e}");
            return 1;
        }
    };
    match &args[1..] {
        [word] if word == "stats" => match client.stats() {
            Ok(snap) => {
                println!("{}", snap.render());
                0
            }
            Err(e) => {
                eprintln!("mosaic query: {e}");
                1
            }
        },
        [word] if word == "pairs" => match client.pairs() {
            Ok(pairs) => {
                println!("{} pair(s) in the registry:", pairs.len());
                for p in &pairs {
                    let cv = if p.cv_err.is_finite() {
                        pct(p.cv_err)
                    } else {
                        "n/a".to_string()
                    };
                    println!(
                        "  {}:{} {} ({} models, CV error {})",
                        p.workload,
                        p.platform,
                        if p.ready { "ready" } else { "fitting" },
                        p.models,
                        cv,
                    );
                }
                0
            }
            Err(e) => {
                eprintln!("mosaic query: {e}");
                1
            }
        },
        [workload, platform, spec, rest @ ..] if rest.len() <= 1 => {
            let model = match rest.first() {
                None => None,
                Some(name) => match service::protocol::model_by_name(name) {
                    Some(kind) => Some(kind),
                    None => {
                        eprintln!(
                            "unknown model {name:?}; one of: {}",
                            model_names().join(" ")
                        );
                        return 2;
                    }
                },
            };
            match client.predict(workload, platform, spec, model) {
                Ok(p) => {
                    println!(
                        "measured  R={} H={} M={} C={}",
                        p.runtime_cycles, p.stlb_hits, p.stlb_misses, p.walk_cycles
                    );
                    println!(
                        "predicted R̂={:.0} cycles ({}; battery max err {}, geo mean {})",
                        p.predicted,
                        p.model.name(),
                        pct(p.max_err),
                        pct(p.geo_mean_err),
                    );
                    0
                }
                Err(e) => {
                    eprintln!("mosaic query: {e}");
                    1
                }
            }
        }
        _ => {
            eprintln!("{usage}");
            2
        }
    }
}

/// Asks a running mosaicd for a layout recommendation under a hugepage
/// budget (`64x2m+1x1g` grammar). Prints either the recommended layout
/// spec (ready to feed back into `mosaic query`) or, when the pair's CV
/// error exceeds the confidence threshold, the most informative layout
/// to measure next.
fn cmd_recommend(args: &[String]) -> i32 {
    let usage = "usage: mosaic recommend <addr> <workload> <platform> <budget> [threshold]";
    let [addr, workload, platform, budget, rest @ ..] = args else {
        eprintln!("{usage}");
        return 2;
    };
    let threshold = match rest {
        [] => None,
        [text] => match text.parse::<f64>() {
            Ok(t) => Some(t),
            Err(_) => {
                eprintln!("{usage} (threshold must be a number, got {text:?})");
                return 2;
            }
        },
        _ => {
            eprintln!("{usage}");
            return 2;
        }
    };
    let mut client = match service::client::Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("mosaic recommend: cannot reach {addr}: {e}");
            return 1;
        }
    };
    match client.recommend(workload, platform, budget, threshold) {
        Ok(reply) => {
            match reply.action {
                service::protocol::RecommendAction::Layout => {
                    println!(
                        "recommend {} (predicted {:.0} cycles; CV error {} <= threshold {})",
                        reply.spec,
                        reply.value,
                        pct(reply.cv_err),
                        pct(reply.threshold),
                    );
                    println!(
                        "run it:   mosaic query {addr} {workload} {platform} {}",
                        reply.spec
                    );
                }
                service::protocol::RecommendAction::Measure => {
                    println!(
                        "models not confident for {workload}:{platform} (CV error {} > threshold {})",
                        pct(reply.cv_err),
                        pct(reply.threshold),
                    );
                    println!(
                        "measure next: {} (model committee disagreement {})",
                        reply.spec,
                        pct(reply.value),
                    );
                }
            }
            0
        }
        Err(e) => {
            eprintln!("mosaic recommend: {e}");
            1
        }
    }
}

/// Sends several sub-requests as one `batch` wire line — one network
/// round trip instead of N — and prints each reply line in order. Quote
/// each sub-request so the shell passes it as one argument:
/// `mosaic batch 127.0.0.1:7070 'predict gups/8GB sandybridge 4k' stats`.
fn cmd_batch(args: &[String]) -> i32 {
    let usage = "usage: mosaic batch <addr> <request>...";
    let [addr, requests @ ..] = args else {
        eprintln!("{usage}");
        return 2;
    };
    if requests.is_empty() {
        eprintln!("{usage} (batch needs at least one request)");
        return 2;
    }
    let mut client = match service::client::Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("mosaic batch: cannot reach {addr}: {e}");
            return 1;
        }
    };
    let subs: Vec<&str> = requests.iter().map(String::as_str).collect();
    match client.batch(&subs) {
        Ok(replies) => {
            let mut failed = false;
            for (request, reply) in subs.iter().zip(&replies) {
                failed |= reply.starts_with("err ");
                println!("{request} -> {reply}");
            }
            i32::from(failed)
        }
        Err(e) => {
            eprintln!("mosaic batch: {e}");
            1
        }
    }
}

/// Scrapes the server's Prometheus exposition and prints it verbatim,
/// so `mosaic metrics <addr> > scrape.prom` matches what an HTTP
/// exporter bridge would serve.
fn cmd_metrics(addr: Option<&String>) -> i32 {
    let Some(addr) = addr else {
        eprintln!("usage: mosaic metrics <addr>");
        return 2;
    };
    let mut client = match service::client::Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("mosaic metrics: cannot reach {addr}: {e}");
            return 1;
        }
    };
    match client.metrics_text() {
        Ok(text) => {
            print!("{text}");
            0
        }
        Err(e) => {
            eprintln!("mosaic metrics: {e}");
            1
        }
    }
}

/// Dumps the server's most recent request traces (wall-domain spans in
/// µs, sim-domain spans in simulated cycles).
fn cmd_trace(addr: Option<&String>, count: Option<&String>) -> i32 {
    let usage = "usage: mosaic trace <addr> [n]";
    let Some(addr) = addr else {
        eprintln!("{usage}");
        return 2;
    };
    let n = match count {
        None => service::protocol::DEFAULT_TRACE_COUNT,
        Some(text) => match text.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("{usage} (count must be a number, got {text:?})");
                return 2;
            }
        },
    };
    let mut client = match service::client::Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("mosaic trace: cannot reach {addr}: {e}");
            return 1;
        }
    };
    match client.trace(n) {
        Ok((traces, dropped)) => {
            println!(
                "{} trace(s), {} dropped by the ring buffer",
                traces.len(),
                dropped
            );
            for trace in &traces {
                println!("{}", obs::render_trace(trace));
            }
            0
        }
        Err(e) => {
            eprintln!("mosaic trace: {e}");
            1
        }
    }
}

fn cmd_audit(args: &[String]) -> i32 {
    const USAGE: &str =
        "usage: mosaic audit [--json | --sarif] [--summary] [--deny] [--root <path>]";
    let mut json = false;
    let mut sarif = false;
    let mut summary = false;
    let mut deny = false;
    let mut root_override: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--summary" => summary = true,
            "--deny" => deny = true,
            "--root" => match it.next() {
                Some(path) => root_override = Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("{USAGE} (--root needs a path)");
                    return 2;
                }
            },
            other => {
                eprintln!("{USAGE} (unknown flag {other:?})");
                return 2;
            }
        }
    }
    if json && sarif {
        eprintln!("{USAGE} (--json and --sarif are mutually exclusive)");
        return 2;
    }
    // Run from the workspace root when invoked via `cargo run`; fall back
    // to the compile-time manifest dir so the binary works from anywhere.
    // `--root` overrides both (CI audits the bad fixture tree this way).
    let root = root_override.unwrap_or_else(|| {
        if std::path::Path::new("crates").is_dir() {
            std::path::PathBuf::from(".")
        } else {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        }
    });
    let report = match audit::audit_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mosaic audit: cannot scan {}: {e}", root.display());
            return 1;
        }
    };
    let diags = &report.diagnostics;

    // A rule's honored waivers may not exceed its declared ceiling; debt
    // beyond the budget fails `--deny` even with zero findings.
    let over_budget: Vec<(&str, usize, usize)> = audit::SUPPRESSION_BUDGET
        .iter()
        .filter_map(|&(rule, cap)| {
            let used = report.suppressions.get(rule).copied().unwrap_or(0);
            (used > cap).then_some((rule, used, cap))
        })
        .collect();

    if json {
        print!("{}", audit::render_json(diags));
    } else if sarif {
        let mut rules: Vec<&str> = audit::RULE_IDS.to_vec();
        rules.push("suppression");
        print!("{}", audit::render_sarif(diags, &rules));
    } else {
        for d in diags {
            println!("{d}");
        }
        println!(
            "audit: {} finding{} across workspace",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    if summary {
        let mut rules: Vec<&str> = audit::RULE_IDS.to_vec();
        rules.push("suppression");
        eprintln!("audit summary: {} files scanned", report.files_scanned);
        for rule in rules {
            let findings = diags.iter().filter(|d| d.rule == rule).count();
            let waived = report.suppressions.get(rule).copied().unwrap_or(0);
            let budget = audit::SUPPRESSION_BUDGET
                .iter()
                .find(|(r, _)| *r == rule)
                .map_or("-".to_string(), |(_, cap)| cap.to_string());
            eprintln!(
                "  {rule:<16} {findings:>3} finding{} {waived:>3} waiver{} (budget {budget})",
                if findings == 1 { " " } else { "s" },
                if waived == 1 { " " } else { "s" },
            );
        }
    }
    for (rule, used, cap) in &over_budget {
        eprintln!(
            "audit: rule `{rule}` has {used} honored waivers, over its budget of {cap} \
             (raise the ceiling in crates/audit/src/rules.rs or fix the code)"
        );
    }
    if deny && (!diags.is_empty() || !over_budget.is_empty()) {
        1
    } else {
        0
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    let mut json = false;
    let mut positional: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with('-') => {
                eprintln!(
                    "usage: mosaic bench [--json] [workload] [platform] (unknown flag {other:?})"
                );
                return 2;
            }
            _ => positional.push(arg),
        }
    }
    let workload = positional.first().map_or("gups/8GB", |s| s.as_str());
    let platform_name = positional.get(1).map_or("sandybridge", |s| s.as_str());
    let Some(platform) = Platform::by_name(platform_name) else {
        eprintln!("unknown platform {platform_name:?}; see `mosaic list`");
        return 2;
    };
    if workloads::WorkloadSpec::by_name(workload).is_none() {
        eprintln!("unknown workload {workload:?}; see `mosaic list`");
        return 2;
    }

    // The benchmark pins the FAST preset regardless of MOSAIC_FAST: its
    // numbers are only comparable run-to-run at one fixed fidelity.
    let report = bench::run_bench(Speed::FAST, workload, platform);
    println!(
        "grid battery: {} records / {} accesses in {:.3}s -> {:.0} accesses/sec",
        report.grid.records,
        report.grid.accesses,
        report.grid.wall_seconds,
        report.grid.accesses_per_sec,
    );
    println!(
        "grid-par:     battery jobs=1 {:.3}s vs jobs={} {:.3}s -> {:.2}x speedup (byte-identical records)",
        report.grid_par.par_1_wall_seconds,
        report.grid_par.par_jobs,
        report.grid_par.par_n_wall_seconds,
        report.grid_par.par_speedup,
    );
    println!(
        "grid-sampled: battery full {:.3}s vs sampled {}:{} {:.3}s -> {:.2}x speedup (anchor err {:.4} <= {} gate)",
        report.grid_sampled.sampled_full_wall_seconds,
        report.grid_sampled.sampled_window,
        report.grid_sampled.sampled_period,
        report.grid_sampled.sampled_wall_seconds,
        report.grid_sampled.sampled_speedup,
        report.grid_sampled.sampled_anchor_err,
        report.grid_sampled.sampled_bound,
    );
    // The tracing gate: span recording must be cheap enough that an
    // instrumented run is the same run. Unlike the throughput figures
    // (absolute numbers, too noisy to gate on shared runners), this is
    // a self-relative ratio measured min-of-k, so it holds a threshold.
    let overhead = report.grid.trace_overhead_pct;
    let gate_ok = overhead < 3.0;
    println!(
        "tracing:      measure_layout overhead {overhead:+.2}% with spans enabled (gate: <3%) {}",
        if gate_ok { "PASS" } else { "FAIL" },
    );
    println!(
        "mosaicd:      {} warm predict requests, mean {:.0}us, p50<={}us p90<={}us p99<={}us",
        report.service.requests,
        report.service.mean_us,
        report.service.p50_us,
        report.service.p90_us,
        report.service.p99_us,
    );
    let speedup = if report.service.mean_us > 0.0 {
        report.service.cold_us / report.service.mean_us
    } else {
        0.0
    };
    println!(
        "mosaicd:      cold first request {:.0}us (model fit) vs warm mean {:.0}us -> {:.0}x; pre-fit with `mosaic serve --warm {}:{}`",
        report.service.cold_us, report.service.mean_us, speedup, workload, platform.name,
    );
    println!(
        "mosaicd:      cold request stages (us): {}",
        report.service.cold_stages,
    );
    println!(
        "recommend:    cold {:.0}us (enumerate + score + CV) vs {} cached mean {:.1}us",
        report.recommend.rec_cold_us, report.recommend.rec_requests, report.recommend.rec_mean_us,
    );
    println!(
        "conns:        warm predict throughput {:.0} qps @1 / {:.0} qps @16 / {:.0} qps @256 connections",
        report.conns.conns_1_qps, report.conns.conns_16_qps, report.conns.conns_256_qps,
    );
    if json {
        let path = format!("BENCH_{}.json", report.date);
        let text = bench::codec::render_report(&report);
        match bench::codec::parse_report(&text) {
            Ok(back) if back == report => {}
            _ => {
                eprintln!(
                    "mosaic bench: report failed its own roundtrip check; not writing {path}"
                );
                return 1;
            }
        }
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("mosaic bench: cannot write {path}: {e}");
            return 1;
        }
        println!("wrote {path}");
    }
    if !gate_ok {
        eprintln!("mosaic bench: tracing overhead gate failed ({overhead:+.2}% >= 3%)");
        return 1;
    }
    0
}

fn model_names() -> Vec<&'static str> {
    ModelKind::ALL.into_iter().map(ModelKind::name).collect()
}
