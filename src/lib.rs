//! Mosaic: a reproduction of *"Predicting Execution Times With Partial
//! Simulations in Virtual Memory Research: Why and How"* (MICRO 2020).
//!
//! This facade crate re-exports every subsystem of the workspace so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`vmcore`] — addresses, page sizes, memory layouts, PMU counters.
//! * [`mosalloc`] — the Mosaic memory allocator (pools, first-fit, layouts).
//! * [`memsim`] — the virtual-memory subsystem simulator (TLBs, caches,
//!   page tables, walkers, platform configurations).
//! * [`workloads`] — synthetic benchmark trace generators.
//! * [`machine`] — the trace-driven execution engine standing in for real
//!   hardware, producing `(R, H, M, C)` counters.
//! * [`mosmodel`] — the paper's core contribution: runtime models (Basu,
//!   Pham, Gandhi, Alam, Yaniv, poly1/2/3 and Mosmodel) plus the regression
//!   and validation machinery.
//! * [`layouts`] — layout-exploration heuristics (growing / random /
//!   sliding window).
//! * [`harness`] — experiment orchestration and the table/figure renderers.
//!
//! # Quickstart
//!
//! ```no_run
//! use harness::experiment::Grid;
//! use harness::SPEED_FAST;
//! use mosmodel::models::ModelKind;
//!
//! let grid = Grid::new(SPEED_FAST);
//! let dataset = grid.dataset("spec06/mcf", &machine::Platform::SANDY_BRIDGE);
//! let fitted = ModelKind::Mosmodel.fit(&dataset).unwrap();
//! println!("max error: {:.2}%", 100.0 * mosmodel::metrics::max_err(&fitted, &dataset));
//! ```

pub use harness;
pub use layouts;
pub use machine;
pub use memsim;
pub use mosalloc;
pub use mosmodel;
pub use vmcore;
pub use workloads;
