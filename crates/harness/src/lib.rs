//! Experiment orchestration: from workloads, layouts and the execution
//! engine to the paper's tables and figures.
//!
//! The central type is [`experiment::Grid`], which lazily evaluates and
//! caches the full *workload × platform × layout* measurement grid (54
//! Mosalloc layouts plus the held-out all-1GB run per pair). Everything
//! else — the figure and table modules — consumes grid entries:
//!
//! | module | regenerates |
//! |---|---|
//! | [`figures::fig2`] | Figure 2a/2b: aggregated maximal errors, old vs new models |
//! | [`figures::fig3`] | Figure 3: R(C) curve for spec06/mcf on SandyBridge |
//! | [`figures::fig5`] | Figure 5: per-benchmark maximal errors, all models |
//! | [`figures::fig6`] | Figure 6: per-benchmark geomean errors |
//! | [`figures::fig7`] | Figure 7: Basu optimism on gapbs/sssp-twitter |
//! | [`figures::fig8`] | Figure 8: poly1 fits spec06/omnetpp |
//! | [`figures::fig9`] | Figure 9: poly1 slope > 1 on spec17/xalancbmk_s |
//! | [`figures::fig10`] | Figure 10: poly2 vs poly1 on gups/16GB |
//! | [`figures::fig11`] | Figure 11: 1GB prediction, Yaniv vs Mosmodel |
//! | [`tables::tab6`] | Table 6: K-fold cross-validation errors |
//! | [`tables::tab7`] | Table 7: xalancbmk counters under 4KB vs 2MB |
//! | [`tables::tab8`] | Table 8: R² of C / M / H per workload |
//! | [`casestudy`] | §VII-D: the 1GB-page validation procedure |
//! | [`methodology`] | the full Figure-1 loop: model + partial simulation of a hypothetical design, validated against full simulation |
//!
//! Use [`Speed`] presets to trade fidelity for wall-clock: `Speed::FAST`
//! for tests, `Speed::FULL` for the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
pub mod experiment;
pub mod figures;
pub mod methodology;
pub mod parallel;
pub mod report;
pub mod sampled;
mod speed;
pub mod tables;

pub use experiment::{
    measure_layout, measure_layout_sampled, measure_layout_traced, Grid, GridEntry, MachineVariant,
    MeasureContext, RunRecord, SIM_STAGES,
};
pub use parallel::resolve_jobs;
pub use sampled::{BatteryMode, GateReport, SampledConfig, DEFAULT_SAMPLED};
pub use speed::Speed;

/// The fast preset (shrunken footprints and short traces) for tests.
pub const SPEED_FAST: Speed = Speed::FAST;
/// The full preset used by `cargo bench`.
pub const SPEED_FULL: Speed = Speed::FULL;
