//! Fidelity presets.

/// How much of the full experiment to run.
///
/// Footprints scale down uniformly (`nominal / footprint_div`, floored at
/// `min_footprint`). TLB pressure survives the scaling because every
/// scaled working set still exceeds TLB reach by orders of magnitude;
/// what changes is wall-clock time and the absolute counter magnitudes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Speed {
    /// Preset name used in cache paths and reports.
    pub name: &'static str,
    /// Uniform footprint divisor applied to each workload's nominal
    /// footprint.
    pub footprint_div: u64,
    /// Minimum footprint after scaling (keeps small workloads above TLB
    /// reach).
    pub min_footprint: u64,
    /// Baseline number of memory accesses per run (scaled by each
    /// workload's `access_factor`).
    pub accesses: u64,
    /// Maximum repetitions per layout. The paper reruns each workload
    /// "until the variation in runtime ... is less than 5%" (§VI-A);
    /// repetitions vary the physical page placement (the simulator's
    /// only noise source) and stop early once the variation bound holds.
    pub max_reps: u32,
}

impl Speed {
    /// Test preset: ~1s per (workload, platform) grid entry.
    pub const FAST: Speed = Speed {
        name: "fast",
        footprint_div: 128,
        min_footprint: 128 << 20,
        accesses: 80_000,
        max_reps: 1,
    };

    /// Benchmark preset: higher-resolution counters, minutes per full
    /// grid.
    pub const FULL: Speed = Speed {
        name: "full",
        footprint_div: 16,
        min_footprint: 256 << 20,
        accesses: 400_000,
        max_reps: 3,
    };

    /// Reads the preset from the `MOSAIC_FAST` environment variable
    /// (`1`/`true` → [`Speed::FAST`]), defaulting to [`Speed::FULL`].
    pub fn from_env() -> Speed {
        match std::env::var("MOSAIC_FAST") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Speed::FAST,
            _ => Speed::FULL,
        }
    }

    /// The scaled footprint for a nominal (paper-scale) footprint.
    pub fn footprint(&self, nominal: u64) -> u64 {
        let scaled = (nominal / self.footprint_div).max(self.min_footprint);
        // Round to 2MB so pools align with hugepage windows.
        scaled.div_ceil(2 << 20) * (2 << 20)
    }

    /// The trace length for a workload's access factor.
    pub fn trace_len(&self, access_factor: f64) -> u64 {
        ((self.accesses as f64) * access_factor) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::GIB;

    #[test]
    fn footprint_scales_and_floors() {
        let s = Speed::FAST;
        assert_eq!(s.footprint(32 * GIB), 32 * GIB / 128);
        // Small nominal footprints hit the floor.
        assert_eq!(s.footprint(100 << 20), s.min_footprint);
        // Always 2MB-aligned.
        assert_eq!(s.footprint(33 * GIB) % (2 << 20), 0);
    }

    #[test]
    fn trace_len_uses_factor() {
        assert_eq!(Speed::FAST.trace_len(1.0), Speed::FAST.accesses);
        assert_eq!(Speed::FAST.trace_len(1.5), Speed::FAST.accesses * 3 / 2);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn presets_differ() {
        assert!(Speed::FULL.accesses > Speed::FAST.accesses);
        assert!(Speed::FULL.footprint_div < Speed::FAST.footprint_div);
    }
}
