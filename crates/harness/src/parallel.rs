//! Deterministic fan-out for the grid battery.
//!
//! The battery measures dozens of independent layouts; this module runs
//! them on a fixed-size pool of scoped worker threads and reduces the
//! results **in the original item order**, so the bytes that reach the
//! on-disk grid cache are identical for every worker count. Determinism
//! rests on three properties:
//!
//! 1. *No shared mutable simulation state*: each closure invocation
//!    builds its own engine and replays its own trace; workers share
//!    only the read-only inputs and a work-stealing index.
//! 2. *Fixed reduction order*: every item writes into its own
//!    pre-allocated slot, and the slots are drained in index order after
//!    all workers join — thread scheduling can reorder the *computation*
//!    but never the *result vector*.
//! 3. *Worker-count-independent work*: the item→result function receives
//!    only the item and its index, never the worker id or the job count.
//!
//! The worker count comes from [`resolve_jobs`]: an explicit `--jobs`
//! value wins, then the `MOSAIC_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Fallback worker count when the OS cannot report its parallelism.
const FALLBACK_JOBS: usize = 4;

/// Resolves the battery worker count: an explicit override (e.g. a
/// `--jobs` flag) wins, then a positive integer in the `MOSAIC_JOBS`
/// environment variable, then the machine's available parallelism.
/// Zero and unparsable values fall through to the next source, so
/// `MOSAIC_JOBS=0` means "decide for me", never "no workers".
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    let env = || {
        std::env::var("MOSAIC_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    };
    match explicit.filter(|&n| n >= 1).or_else(env) {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(FALLBACK_JOBS, |n| n.get()),
    }
}

/// Maps `f` over `items` on at most `jobs` scoped worker threads and
/// returns the results in item order. `f` gets `(index, &item)` and must
/// be a pure function of them for the output to be deterministic.
///
/// Returns `None` only if a worker exited without completing its item,
/// which scoped threads make unreachable: a panicking closure propagates
/// out of the scope instead of leaving an empty slot behind. Callers
/// treat `None` as the infallible-invariant breach it is.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Option<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.clamp(1, items.len().max(1));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let (Some(item), Some(slot)) = (items.get(i), slots.get(i)) else {
                    break;
                };
                let result = f(i, item);
                *slot.lock() = Some(result);
            });
        }
    });
    // Drain in index order: the reduction order is the item order, no
    // matter which worker produced which result.
    slots.into_iter().map(Mutex::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order_for_every_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64, 1000] {
            let got = parallel_map(&items, jobs, |_, &x| x * x).expect("all slots filled");
            assert_eq!(got, expected, "order broke at jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = parallel_map(&[], 8, |_, &x: &u64| x).expect("empty is trivially done");
        assert!(got.is_empty());
    }

    #[test]
    fn index_argument_matches_item_position() {
        let items = ["a", "b", "c", "d"];
        let got = parallel_map(&items, 2, |i, s| format!("{i}:{s}")).expect("all slots filled");
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn explicit_jobs_override_wins() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(1)), 1);
        // Zero is not a usable worker count; fall through to defaults.
        assert!(resolve_jobs(Some(0)) >= 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn worker_panic_propagates_out_of_the_scope() {
        let caught = std::panic::catch_unwind(|| {
            let items: Vec<u32> = (0..16).collect();
            parallel_map(&items, 4, |_, &x| {
                assert!(x != 7, "injected worker failure");
                x
            })
        });
        assert!(caught.is_err(), "a worker panic must not be swallowed");
    }
}
