//! Validated interval-sampled grid builds.
//!
//! Full batteries replay every layout over the whole trace; this module
//! holds the policy side of the sampled alternative: a
//! [`SampledConfig`] selecting periodic trace windows (via
//! `workloads::sampling::windows`), and the **cross-validation gate**
//! the paper's methodology demands before partial simulation may feed a
//! model. The gate simulates the anchor layouts (all-4KB, all-2MB,
//! all-1GB) both sampled and full, compares every PMU counter, and only
//! admits the sampled battery when the worst relative error stays
//! within [`SampledConfig::bound`] — otherwise the grid falls back to
//! full measurement and records the rejection. Unvalidated sampling
//! silently destroys counter fidelity (SimPoint measured 80% average
//! error for blind sampling); the gate is what makes the 10x cheaper
//! battery trustworthy.
//!
//! The measurement side (replaying windows, integer extrapolation to
//! full-trace scale) lives in [`crate::experiment`] next to the full
//! battery; everything here is pure arithmetic over already-measured
//! counters, so the gate itself is trivially deterministic and
//! panic-free — it runs inside cold `warm`/`recommend` requests.

use vmcore::PmuCounters;

/// How a grid entry's records were measured. Persisted in the
/// `# mosaic-cache` v4 header so a sampled entry can never be mistaken
/// for a full one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatteryMode {
    /// Every layout replayed the full trace.
    Full,
    /// Layouts replayed periodic windows (`window` kept out of every
    /// `period` accesses) and counters were extrapolated to full scale.
    Sampled {
        /// Accesses kept at the start of each period.
        window: u64,
        /// Length of each period.
        period: u64,
    },
}

/// Interval-sampling configuration for a [`crate::Grid`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledConfig {
    /// Accesses kept at the start of each period.
    pub window: u64,
    /// Length of each period; `window / period` is the sampled fraction.
    pub period: u64,
    /// Gate bound: the largest tolerated sampled-vs-full relative error
    /// on any PMU counter of any anchor layout.
    pub bound: f64,
}

/// Default sampling: keep 1k of every 10k accesses (10%), gate at 5%
/// counter error — the paper's own cross-validation threshold (§VI-A
/// uses 5% for its runtime-variation bound too).
pub const DEFAULT_SAMPLED: SampledConfig = SampledConfig {
    window: 1_000,
    period: 10_000,
    bound: 0.05,
};

impl SampledConfig {
    /// Parses a `<window>:<period>:<bound>` spec (the `--sampled=` flag
    /// and `MOSAIC_SAMPLED` formats), e.g. `"1000:10000:0.05"`.
    pub fn parse(spec: &str) -> Result<SampledConfig, String> {
        let mut parts = spec.split(':');
        let (Some(w), Some(p), Some(b), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("expected <window>:<period>:<bound>, got {spec:?}"));
        };
        let window = w
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("window {w:?} is not an integer"))?;
        let period = p
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("period {p:?} is not an integer"))?;
        let bound = b
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("bound {b:?} is not a number"))?;
        SampledConfig {
            window,
            period,
            bound,
        }
        .validated()
    }

    /// Rejects configurations [`workloads::sampling::windows`] or the
    /// gate cannot honor.
    pub fn validated(self) -> Result<SampledConfig, String> {
        if self.window == 0 {
            return Err("window must be at least 1".to_string());
        }
        if self.window > self.period {
            return Err(format!(
                "window {} larger than its period {}",
                self.window, self.period
            ));
        }
        if !(self.bound.is_finite() && self.bound > 0.0) {
            return Err(format!("bound {} is not a positive number", self.bound));
        }
        Ok(self)
    }

    /// Reads `MOSAIC_SAMPLED`: unset, empty, `0`, or `false` mean off;
    /// `1` or `true` select [`DEFAULT_SAMPLED`]; anything else is parsed
    /// as a `<window>:<period>:<bound>` spec. An unparsable spec is
    /// reported and ignored — a typo must not silently degrade a full
    /// grid into a sampled one or vice versa.
    pub fn from_env() -> Option<SampledConfig> {
        let raw = std::env::var("MOSAIC_SAMPLED").ok()?;
        match raw.trim() {
            "" | "0" | "false" => None,
            "1" | "true" => Some(DEFAULT_SAMPLED),
            spec => match SampledConfig::parse(spec) {
                Ok(cfg) => Some(cfg),
                Err(e) => {
                    eprintln!("mosaic: ignoring MOSAIC_SAMPLED ({e})");
                    None
                }
            },
        }
    }

    /// The [`BatteryMode`] an accepted sampled battery is stamped with.
    pub fn mode(&self) -> BatteryMode {
        BatteryMode::Sampled {
            window: self.window,
            period: self.period,
        }
    }
}

/// The gate's verdict for one battery, persisted alongside the entry:
/// either the evidence that sampling was safe for this pair, or the
/// record of why it was refused.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateReport {
    /// Sampling window the gate evaluated.
    pub window: u64,
    /// Sampling period the gate evaluated.
    pub period: u64,
    /// The bound the error was compared against.
    pub bound: f64,
    /// Worst per-counter relative error across all anchors.
    pub max_rel_err: f64,
    /// Number of anchor layouts cross-validated.
    pub anchors: u64,
    /// `max_rel_err <= bound`: whether the sampled battery was admitted.
    pub accepted: bool,
}

/// Denominator floor for the relative-error metric, as a fraction of
/// the full run's cycle count: counters smaller than 5% of
/// `runtime_cycles` are compared against that floor instead of their
/// own magnitude.
///
/// Why a floor at all: extrapolation multiplies a sampled counter by
/// `total / kept`, so a counter that *saturates* instead of scaling —
/// the compulsory sTLB misses of an all-2MB layout, the cold cache-line
/// fills any layout pays exactly once — lands up to `scale - 1` away
/// from its full value in strict relative terms (400% at 5x) while
/// being utterly irrelevant to the (H, M, C) → R fit. What the fit
/// predicts is `runtime_cycles`, so that is the natural yardstick: a
/// counter sitting at 5% of R can move the fit by at most the gate
/// bound itself even if it were 100% wrong, and anything the gate
/// tolerates under the floor is bounded by `bound × 5%` of R —
/// an order below Mosmodel's own ~3% error. Counters at or above the
/// floor (the hits, misses and walk cycles that steer the model) are
/// still held to the strict relative bound. The standard abstol+reltol
/// comparison, with the absolute term tied to the run's natural scale.
const REL_ERR_FLOOR: f64 = 0.05;

/// Relative error of one counter against the noise floor:
/// `|sampled - full| / max(full, floor)`.
fn rel_err(full: u64, sampled: u64, floor: f64) -> f64 {
    let f = full as f64;
    let s = sampled as f64;
    let denom = f.max(floor);
    if denom == 0.0 {
        // Zero instructions and a zero baseline: only an exact match
        // is error-free; any nonzero reading is 100% off.
        if sampled == full {
            return 0.0;
        }
        return 1.0;
    }
    ((s - f) / denom).abs()
}

/// Worst floored relative error across every PMU counter of one
/// layout. All 11 counters are checked — a sampling scheme that nails
/// runtime but misrepresents walk cycles would still poison the
/// (H, M, C) → R fit.
pub fn counter_rel_err(full: &PmuCounters, sampled: &PmuCounters) -> f64 {
    let floor = REL_ERR_FLOOR * full.runtime_cycles as f64;
    let pairs = [
        (full.runtime_cycles, sampled.runtime_cycles),
        (full.stlb_hits, sampled.stlb_hits),
        (full.stlb_misses, sampled.stlb_misses),
        (full.walk_cycles, sampled.walk_cycles),
        (full.instructions, sampled.instructions),
        (full.program_l1d_loads, sampled.program_l1d_loads),
        (full.program_l2_loads, sampled.program_l2_loads),
        (full.program_l3_loads, sampled.program_l3_loads),
        (full.walker_l1d_loads, sampled.walker_l1d_loads),
        (full.walker_l2_loads, sampled.walker_l2_loads),
        (full.walker_l3_loads, sampled.walker_l3_loads),
    ];
    pairs
        .iter()
        .map(|&(f, s)| rel_err(f, s, floor))
        .fold(0.0, f64::max)
}

/// Evaluates the gate over `(full, sampled)` anchor counter pairs: the
/// sampled battery is admitted only if **every** anchor's **every**
/// counter is within `cfg.bound` relative error. An empty anchor set is
/// rejected — no evidence is not acceptance.
pub fn evaluate_gate(anchors: &[(PmuCounters, PmuCounters)], cfg: SampledConfig) -> GateReport {
    let max_rel_err = anchors
        .iter()
        .map(|(f, s)| counter_rel_err(f, s))
        .fold(0.0, f64::max);
    GateReport {
        window: cfg.window,
        period: cfg.period,
        bound: cfg.bound,
        max_rel_err,
        anchors: anchors.len() as u64,
        accepted: !anchors.is_empty() && max_rel_err <= cfg.bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(runtime: u64, misses: u64) -> PmuCounters {
        PmuCounters {
            runtime_cycles: runtime,
            stlb_misses: misses,
            ..PmuCounters::default()
        }
    }

    #[test]
    fn parse_round_trips_the_flag_format() {
        let cfg = SampledConfig::parse("1000:10000:0.05").unwrap();
        assert_eq!(cfg, DEFAULT_SAMPLED);
        assert_eq!(
            cfg.mode(),
            BatteryMode::Sampled {
                window: 1000,
                period: 10_000
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "1000",
            "1000:10000",
            "1000:10000:0.05:x",
            "0:10:0.05",
            "20:10:0.05",
            "10:20:0",
            "10:20:-0.5",
            "10:20:inf",
            "a:10:0.05",
        ] {
            assert!(SampledConfig::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rel_err_handles_zero_baselines() {
        // No floor: plain relative error, zero-baseline convention.
        assert_eq!(rel_err(0, 0, 0.0), 0.0);
        assert_eq!(rel_err(0, 5, 0.0), 1.0);
        assert_eq!(rel_err(100, 95, 0.0), 0.05);
        assert_eq!(rel_err(100, 100, 0.0), 0.0);
        // The floor takes over only below it: a 4-miss baseline blown up
        // to 24 is 20/1000 against the floor, not 500%.
        assert_eq!(rel_err(4, 24, 1000.0), 0.02);
        // Above the floor the metric is unchanged.
        assert_eq!(rel_err(2000, 1900, 1000.0), 0.05);
    }

    #[test]
    fn floor_tracks_the_runtime() {
        // A saturating counter (compulsory misses that extrapolation
        // multiplied by 6) passes when it is negligible against the
        // run's cycle count, and fails when it is not.
        let full = counters(1_000_000, 400);
        let sampled = counters(1_000_000, 2_400);
        let err = counter_rel_err(&full, &sampled);
        assert!(err < 0.05, "2k-of-a-million-cycles misses are noise: {err}");

        let full = counters(100_000, 400);
        let sampled = counters(100_000, 2_400);
        let err = counter_rel_err(&full, &sampled);
        assert!(err > 0.05, "2k-of-100k-cycles misses are signal: {err}");
    }

    #[test]
    fn gate_accepts_within_bound_and_rejects_outside() {
        let cfg = SampledConfig {
            window: 10,
            period: 100,
            bound: 0.05,
        };
        let close = vec![
            (counters(1_000_000, 500), counters(1_010_000, 510)),
            (counters(2_000_000, 0), counters(1_960_000, 0)),
        ];
        let report = evaluate_gate(&close, cfg);
        assert!(report.accepted, "2% error within a 5% bound: {report:?}");
        assert_eq!(report.anchors, 2);
        assert!(report.max_rel_err <= 0.05);

        // One bad counter on one anchor is enough to refuse.
        let off = vec![
            (counters(1_000_000, 500), counters(1_010_000, 510)),
            (counters(1_000_000, 500), counters(1_000_000, 200_000)),
        ];
        let report = evaluate_gate(&off, cfg);
        assert!(
            !report.accepted,
            "a 20%-of-runtime miss error must reject: {report:?}"
        );
        assert!(report.max_rel_err > 0.05);
    }

    #[test]
    fn gate_rejects_an_empty_anchor_set() {
        let report = evaluate_gate(&[], DEFAULT_SAMPLED);
        assert!(!report.accepted, "no evidence is not acceptance");
        assert_eq!(report.anchors, 0);
    }

    #[test]
    fn counter_rel_err_checks_every_field() {
        let full = counters(1_000, 100);
        let mut sampled = full;
        sampled.walker_l3_loads = 50; // full has 0 here
        assert_eq!(counter_rel_err(&full, &sampled), 1.0);
    }
}
