//! Regenerators for the paper's tables (6, 7 and 8).

use std::fmt;

use machine::Platform;
use mosmodel::cv::k_fold;
use mosmodel::models::ModelKind;
use mosmodel::poly::Var;
use mosmodel::{metrics, FitError};
use vmcore::PmuCounters;

use crate::report::{pct, TextTable};
use crate::Grid;

/// Table 6: maximal K-fold cross-validation errors of the new models over
/// all (workload, platform) pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct Tab6 {
    /// Folds used.
    pub k: usize,
    /// `(model, maximal CV error over all pairs)` in paper column order.
    pub rows: Vec<(ModelKind, f64)>,
}

impl Tab6 {
    /// The CV error of one model.
    pub fn of(&self, model: ModelKind) -> Option<f64> {
        self.rows.iter().find(|(m, _)| *m == model).map(|(_, e)| *e)
    }
}

impl fmt::Display for Tab6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 6 — maximal {}-fold cross-validation errors:",
            self.k
        )?;
        let mut t = TextTable::new(vec!["model".into(), "maximal CV error".into()]);
        for (m, e) in &self.rows {
            t.row(vec![m.name().into(), pct(*e)]);
        }
        write!(f, "{t}")
    }
}

/// Computes Table 6 with `k` folds over the given pairs.
pub fn tab6(grid: &Grid, pairs: &[(String, &'static Platform)], k: usize) -> Tab6 {
    let rows = ModelKind::NEW
        .iter()
        .map(|&model| {
            let mut worst = 0.0f64;
            for (workload, platform) in pairs {
                let ds = grid.dataset(workload, platform);
                if let Ok(report) = k_fold(model, &ds, k) {
                    worst = worst.max(report.max_err);
                }
            }
            (model, worst)
        })
        .collect();
    Tab6 { k, rows }
}

/// Table 7: performance counters of spec17/xalancbmk_s under all-4KB vs
/// all-2MB layouts on Broadwell, split between program and walker
/// references.
#[derive(Clone, Debug, PartialEq)]
pub struct Tab7 {
    /// Counters of the all-4KB run.
    pub run_4k: PmuCounters,
    /// Counters of the all-2MB run.
    pub run_2m: PmuCounters,
}

impl Tab7 {
    /// The paper's headline observation: total L3 references are higher
    /// under 4KB pages than 2MB pages (walker-induced pollution).
    pub fn l3_pollution(&self) -> (u64, u64) {
        (self.run_4k.total_l3_loads(), self.run_2m.total_l3_loads())
    }
}

impl fmt::Display for Tab7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Adaptive unit: paper-scale runs report billions, the scaled
        // simulations millions.
        let big = self.run_4k.runtime_cycles >= 1_000_000_000;
        let (div, unit) = if big {
            (1e9, "billions")
        } else {
            (1e6, "millions")
        };
        writeln!(
            f,
            "Table 7 — spec17/xalancbmk_s on Broadwell (values in {unit} of events):"
        )?;
        let mut t = TextTable::new(vec![
            "counter".into(),
            "program 4KB".into(),
            "program 2MB".into(),
            "walker 4KB".into(),
            "walker 2MB".into(),
        ]);
        let a = &self.run_4k;
        let b = &self.run_2m;
        let fmt_v = move |v: f64| format!("{:.3}", v / div);
        let row = |name: &str, p4: f64, p2: f64, w4: Option<f64>, w2: Option<f64>| {
            vec![
                name.to_string(),
                fmt_v(p4),
                fmt_v(p2),
                w4.map_or("-".into(), fmt_v),
                w2.map_or("-".into(), fmt_v),
            ]
        };
        t.row(row(
            "runtime cycles",
            a.runtime_cycles as f64,
            b.runtime_cycles as f64,
            None,
            None,
        ));
        t.row(row(
            "walk cycles",
            a.walk_cycles as f64,
            b.walk_cycles as f64,
            None,
            None,
        ));
        t.row(row(
            "TLB misses",
            a.stlb_misses as f64,
            b.stlb_misses as f64,
            None,
            None,
        ));
        t.row(row(
            "L1d loads",
            a.program_l1d_loads as f64,
            b.program_l1d_loads as f64,
            Some(a.walker_l1d_loads as f64),
            Some(b.walker_l1d_loads as f64),
        ));
        t.row(row(
            "L2 loads",
            a.program_l2_loads as f64,
            b.program_l2_loads as f64,
            Some(a.walker_l2_loads as f64),
            Some(b.walker_l2_loads as f64),
        ));
        t.row(row(
            "L3 loads",
            a.program_l3_loads as f64,
            b.program_l3_loads as f64,
            Some(a.walker_l3_loads as f64),
            Some(b.walker_l3_loads as f64),
        ));
        write!(f, "{t}")
    }
}

/// Computes Table 7 (xalancbmk on Broadwell).
///
/// # Errors
///
/// Returns [`FitError::MissingAnchor`] if an anchor run is missing.
pub fn tab7(grid: &Grid) -> Result<Tab7, FitError> {
    tab7_for(grid, "spec17/xalancbmk_s", &Platform::BROADWELL)
}

/// Table 7 machinery for any pair.
///
/// # Errors
///
/// Returns [`FitError::MissingAnchor`] if an anchor run is missing.
pub fn tab7_for(
    grid: &Grid,
    workload: &str,
    platform: &'static Platform,
) -> Result<Tab7, FitError> {
    let entry = grid.entry(workload, platform);
    let run_4k = entry
        .record(mosmodel::LayoutKind::All4K)
        .ok_or(FitError::MissingAnchor("all-4KB"))?
        .counters;
    let run_2m = entry
        .record(mosmodel::LayoutKind::All2M)
        .ok_or(FitError::MissingAnchor("all-2MB"))?
        .counters;
    Ok(Tab7 { run_4k, run_2m })
}

/// Table 8: R² of the single-variable linear regressors in `C`, `M`, `H`
/// per workload and platform.
#[derive(Clone, Debug, PartialEq)]
pub struct Tab8 {
    /// `(workload, platform, R²_C, R²_M, R²_H)` rows.
    pub rows: Vec<(String, &'static str, f64, f64, f64)>,
}

impl Tab8 {
    /// The row for a pair.
    pub fn row(&self, workload: &str, platform: &str) -> Option<(f64, f64, f64)> {
        self.rows
            .iter()
            .find(|(w, p, ..)| w == workload && *p == platform)
            .map(|&(_, _, c, m, h)| (c, m, h))
    }
}

impl fmt::Display for Tab8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 8 — R² of single-variable linear regressors:")?;
        let mut t = TextTable::new(vec![
            "workload".into(),
            "platform".into(),
            "C".into(),
            "M".into(),
            "H".into(),
        ]);
        for (w, p, c, m, h) in &self.rows {
            t.row(vec![
                w.clone(),
                (*p).to_string(),
                format!("{c:.2}"),
                format!("{m:.2}"),
                format!("{h:.2}"),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Computes Table 8 over the given pairs.
pub fn tab8(grid: &Grid, pairs: &[(String, &'static Platform)]) -> Tab8 {
    let rows = pairs
        .iter()
        .map(|(workload, platform)| {
            let ds = grid.dataset(workload, platform);
            (
                workload.clone(),
                platform.name,
                metrics::r_squared(&ds, Var::C),
                metrics::r_squared(&ds, Var::M),
                metrics::r_squared(&ds, Var::H),
            )
        })
        .collect();
    Tab8 { rows }
}
