//! The complete Figure-1 methodology, exercised end to end.
//!
//! The paper validates runtime models against *their own* processor and
//! argues (§IV) that this is a **necessary condition** for the models'
//! actual purpose: predicting the performance of *modified* processor
//! designs from partial simulations. Our substrate can do what the paper
//! could not — fully simulate the modified design too — so this module
//! closes the loop:
//!
//! 1. train a runtime model on the base platform's Mosalloc battery;
//! 2. **partially** simulate the workload on a hypothetical platform
//!    (only `(H, M, C)` observed, as in Figure 1);
//! 3. feed the counters to the model → predicted runtime;
//! 4. **fully** simulate the hypothetical platform → "true" runtime;
//! 5. report the methodology's end-to-end error.
//!
//! [`transfer_error`] additionally quantifies §IV's warning directly:
//! a model fitted for processor `P` evaluated on `P̄`'s own data.

use std::fmt;

use machine::{partial_sim, Engine, Platform};
use mosalloc::{Mosalloc, MosallocConfig, PoolSpec};
use mosmodel::metrics::max_err;
use mosmodel::models::{ModelKind, RuntimeModel};
use mosmodel::{FitError, Sample};
use vmcore::{PageSize, Region};
use workloads::{TraceParams, WorkloadSpec};

use crate::report::{cycles, pct};
use crate::{Grid, Speed};

/// Result of one design-exploration experiment (Figure 1 end to end).
#[derive(Clone, Debug, PartialEq)]
pub struct DesignPrediction {
    /// Workload name.
    pub workload: String,
    /// Platform the model was trained on.
    pub base: &'static str,
    /// Hypothetical platform that was partially simulated.
    pub design: String,
    /// The page size backing the run on the design.
    pub backing: PageSize,
    /// `(H, M, C)` from the partial simulation of the design.
    pub counters: (u64, u64, u64),
    /// Runtime predicted by the model from those counters.
    pub predicted_r: f64,
    /// Runtime of the full simulation of the design.
    pub simulated_r: f64,
}

impl DesignPrediction {
    /// Relative error of the methodology for this experiment.
    pub fn error(&self) -> f64 {
        ((self.simulated_r - self.predicted_r) / self.simulated_r).abs()
    }
}

impl fmt::Display for DesignPrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} pages): model-from-{} predicts {}, full simulation says {} — {} off",
            self.design,
            self.backing,
            self.base,
            cycles(self.predicted_r),
            cycles(self.simulated_r),
            pct(self.error())
        )
    }
}

/// Runs the Figure-1 workflow: a `model` trained on `base` (via the
/// grid's battery) predicts the runtime of `design` from a partial
/// simulation, and the prediction is checked against a full simulation.
///
/// The workload runs with `backing` pages on the design (a design study
/// would typically probe 4KB to see how well the new hardware handles
/// the worst case).
///
/// # Errors
///
/// Propagates model-fitting failures.
///
/// # Panics
///
/// Panics if the workload name is unknown.
pub fn explore_design(
    grid: &Grid,
    workload: &str,
    base: &'static Platform,
    design: &Platform,
    design_name: &str,
    model: ModelKind,
    backing: PageSize,
) -> Result<DesignPrediction, FitError> {
    // Step 1: train on the base platform's Mosalloc data.
    let fitted = model.fit(&grid.dataset(workload, base))?;

    // Steps 2-4 share the workload setup the grid uses.
    let spec =
        WorkloadSpec::by_name(workload).unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    let speed: Speed = grid.speed();
    let footprint = speed.footprint(spec.nominal_footprint);
    let alloc = Mosalloc::new(MosallocConfig {
        brk: PoolSpec::plain(footprint),
        anon: PoolSpec::plain(64 << 20),
        file: PoolSpec::plain(64 << 20),
    })
    .expect("plain config");
    let arena: Region = alloc.heap().region();
    let params = TraceParams::new(arena, speed.trace_len(spec.access_factor), fnv(workload));

    // Step 2: partial simulation of the hypothetical design.
    let partial = partial_sim(design, spec.trace(&params), |_| backing);

    // Step 3: the model predicts the design's runtime.
    let sample = Sample {
        r: 0.0,
        h: partial.stlb_hits as f64,
        m: partial.stlb_misses as f64,
        c: partial.walk_cycles as f64,
        kind: mosmodel::LayoutKind::Mixed,
    };
    let predicted_r = fitted.predict(&sample);

    // Step 4: ground truth — the full simulation the methodology avoids.
    let full = Engine::new(design).run(spec.trace(&params), |_| backing);

    Ok(DesignPrediction {
        workload: workload.to_string(),
        base: base.name,
        design: design_name.to_string(),
        backing,
        counters: (partial.stlb_hits, partial.stlb_misses, partial.walk_cycles),
        predicted_r,
        simulated_r: full.runtime_cycles as f64,
    })
}

/// §IV's transfer experiment: the maximal error of a model fitted on
/// `from`'s data when evaluated against `to`'s own measured dataset.
///
/// # Errors
///
/// Propagates model-fitting failures.
pub fn transfer_error(
    grid: &Grid,
    workload: &str,
    from: &'static Platform,
    to: &'static Platform,
    model: ModelKind,
) -> Result<f64, FitError> {
    let fitted = model.fit(&grid.dataset(workload, from))?;
    Ok(max_err(&fitted, &grid.dataset(workload, to)))
}

/// FNV-1a over the workload name, matching the grid's trace seeds.
fn fnv(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Grid {
        Grid::in_memory(Speed {
            name: "tiny",
            footprint_div: 1024,
            min_footprint: 48 << 20,
            accesses: 15_000,
            max_reps: 1,
        })
    }

    #[test]
    fn identity_design_is_predicted_accurately() {
        // Predicting the base platform itself must work: the (H, M, C) of
        // the all-4KB partial simulation equal the training anchor's, so
        // the model interpolates rather than extrapolates.
        let grid = tiny_grid();
        let p = explore_design(
            &grid,
            "gups/8GB",
            &Platform::SANDY_BRIDGE,
            &Platform::SANDY_BRIDGE,
            "SandyBridge (identity)",
            ModelKind::Mosmodel,
            PageSize::Base4K,
        )
        .unwrap();
        assert!(p.error() < 0.05, "identity prediction error {}", p.error());
    }

    #[test]
    fn partial_counters_match_grid_anchor() {
        // The methodology's partial simulation must agree with the grid's
        // own all-4KB measurement (same trace, same structures).
        let grid = tiny_grid();
        let p = explore_design(
            &grid,
            "gups/8GB",
            &Platform::SANDY_BRIDGE,
            &Platform::SANDY_BRIDGE,
            "identity",
            ModelKind::Yaniv,
            PageSize::Base4K,
        )
        .unwrap();
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let anchor = entry.record(mosmodel::LayoutKind::All4K).unwrap().counters;
        assert_eq!(p.counters.1, anchor.stlb_misses);
        assert_eq!(p.counters.2, anchor.walk_cycles);
        assert_eq!(p.simulated_r, anchor.runtime_cycles as f64);
    }

    #[test]
    fn transfer_is_worse_than_native() {
        // §IV: a model is tied to its processor. Fitting on SandyBridge
        // and evaluating on Broadwell must be worse than native fitting.
        let grid = tiny_grid();
        let native = transfer_error(
            &grid,
            "gups/8GB",
            &Platform::BROADWELL,
            &Platform::BROADWELL,
            ModelKind::Mosmodel,
        )
        .unwrap();
        let transferred = transfer_error(
            &grid,
            "gups/8GB",
            &Platform::SANDY_BRIDGE,
            &Platform::BROADWELL,
            ModelKind::Mosmodel,
        )
        .unwrap();
        assert!(
            transferred > 2.0 * native,
            "transfer ({transferred}) should be far worse than native ({native})"
        );
    }
}
