//! Plain-text table rendering shared by the figure/table modules.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use harness::report::TextTable;
///
/// let mut t = TextTable::new(vec!["model".into(), "err".into()]);
/// t.row(vec!["basu".into(), "192%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("basu"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw rows (for tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal ("42.0%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a large cycle count in billions with two decimals, the unit
/// the paper's tables use.
pub fn billions(x: f64) -> String {
    format!("{:.2}", x / 1e9)
}

/// Formats a cycle count with an adaptive unit: billions for paper-scale
/// runs, millions for the scaled-down simulations.
pub fn cycles(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3}e9", x / 1e9)
    } else {
        format!("{:.3}e6", x / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        // Both data cells right-aligned under headers.
        assert!(lines[2].contains("xxxxxx"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.rows()[0].len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(billions(1.5e9), "1.50");
        assert_eq!(cycles(1.5e9), "1.500e9");
        assert_eq!(cycles(2.5e6), "2.500e6");
    }
}
