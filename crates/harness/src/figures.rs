//! Regenerators for the paper's figures.
//!
//! Every function returns a structured result whose `Display` renders the
//! same information the paper's figure conveys (series data and/or the
//! headline numbers), so `cargo bench`/examples can print them and tests
//! can assert on the shapes.

use std::fmt;

use machine::Platform;
use mosmodel::metrics::{geo_mean_err, max_err};
use mosmodel::models::{ModelKind, RuntimeModel};
use mosmodel::{FitError, Sample};

use crate::report::{pct, TextTable};
use crate::{casestudy, Grid};

/// Aggregated worst-case error of one model over many (W, P) pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelErrorSummary {
    /// The model.
    pub model: ModelKind,
    /// Its maximal relative error over every sample of every pair.
    pub max_err: f64,
    /// The (workload, platform) pair where the maximum occurred.
    pub worst_pair: (String, &'static str),
}

/// Figure 2: maximal errors of the old models (2a) and new models (2b).
#[derive(Clone, Debug, PartialEq)]
pub struct Fig2 {
    /// Preexisting models (pham, alam, gandhi, basu, yaniv).
    pub old: Vec<ModelErrorSummary>,
    /// New models (poly1/2/3, mosmodel).
    pub new: Vec<ModelErrorSummary>,
}

impl Fig2 {
    /// The summary for one model, if present.
    pub fn of(&self, model: ModelKind) -> Option<&ModelErrorSummary> {
        self.old.iter().chain(&self.new).find(|s| s.model == model)
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2a — preexisting models, maximal error over all W x P:"
        )?;
        let mut t = TextTable::new(vec!["model".into(), "max err".into(), "worst at".into()]);
        for s in &self.old {
            t.row(vec![
                s.model.name().into(),
                pct(s.max_err),
                format!("{} on {}", s.worst_pair.0, s.worst_pair.1),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(f, "\nFigure 2b — new models:")?;
        let mut t = TextTable::new(vec!["model".into(), "max err".into(), "worst at".into()]);
        for s in &self.new {
            t.row(vec![
                s.model.name().into(),
                pct(s.max_err),
                format!("{} on {}", s.worst_pair.0, s.worst_pair.1),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Computes Figure 2 over the given pairs (paper: all TLB-sensitive
/// workloads on all three platforms).
pub fn fig2(grid: &Grid, pairs: &[(String, &'static Platform)]) -> Fig2 {
    let summarize = |model: ModelKind| -> ModelErrorSummary {
        let mut worst = 0.0f64;
        let mut worst_pair = (String::from("-"), "-");
        for (workload, platform) in pairs {
            let ds = grid.dataset(workload, platform);
            let Ok(fitted) = model.fit(&ds) else { continue };
            let e = max_err(&fitted, &ds);
            if e > worst {
                worst = e;
                worst_pair = (workload.clone(), platform.name);
            }
        }
        ModelErrorSummary {
            model,
            max_err: worst,
            worst_pair,
        }
    };
    Fig2 {
        old: ModelKind::PREEXISTING
            .iter()
            .map(|&m| summarize(m))
            .collect(),
        new: ModelKind::NEW.iter().map(|&m| summarize(m)).collect(),
    }
}

/// Which error statistic a per-benchmark matrix reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorStat {
    /// Maximal relative error (Figure 5).
    Max,
    /// Geometric-mean relative error (Figure 6).
    GeoMean,
}

/// Figures 5/6: per-benchmark error of every model on one platform.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorMatrix {
    /// Platform name.
    pub platform: &'static str,
    /// Statistic reported.
    pub stat: ErrorStat,
    /// Models, column order.
    pub models: Vec<ModelKind>,
    /// `(workload, error per model)` rows; `None` when the model could
    /// not be fitted for that pair.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

impl ErrorMatrix {
    /// The error of `model` on `workload`, if both exist.
    pub fn error_of(&self, workload: &str, model: ModelKind) -> Option<f64> {
        let col = self.models.iter().position(|&m| m == model)?;
        let row = self.rows.iter().find(|(w, _)| w == workload)?;
        row.1[col]
    }

    /// The largest error of `model` across all workloads.
    pub fn worst_of(&self, model: ModelKind) -> Option<f64> {
        let col = self.models.iter().position(|&m| m == model)?;
        self.rows
            .iter()
            .filter_map(|(_, errs)| errs[col])
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }
}

impl ErrorMatrix {
    /// Exports the matrix as CSV: `workload,<model>,...` with errors as
    /// fractions (empty cell when a model could not be fitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload");
        for m in &self.models {
            out.push(',');
            out.push_str(m.name());
        }
        out.push('\n');
        for (workload, errs) in &self.rows {
            out.push_str(workload);
            for e in errs {
                out.push(',');
                if let Some(v) = e {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ErrorMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stat = match self.stat {
            ErrorStat::Max => "maximal",
            ErrorStat::GeoMean => "geomean",
        };
        writeln!(f, "{} — per-benchmark {stat} error:", self.platform)?;
        let mut headers = vec!["workload".to_string()];
        headers.extend(self.models.iter().map(|m| m.name().to_string()));
        let mut t = TextTable::new(headers);
        for (workload, errs) in &self.rows {
            let mut cells = vec![workload.clone()];
            cells.extend(errs.iter().map(|e| e.map_or("-".into(), pct)));
            t.row(cells);
        }
        write!(f, "{t}")
    }
}

/// Computes the Figure 5 (max) or Figure 6 (geomean) matrix for one
/// platform over `workload_names`.
pub fn error_matrix(
    grid: &Grid,
    platform: &'static Platform,
    workload_names: &[String],
    stat: ErrorStat,
) -> ErrorMatrix {
    let models: Vec<ModelKind> = ModelKind::ALL.to_vec();
    let rows = workload_names
        .iter()
        .map(|name| {
            let ds = grid.dataset(name, platform);
            let errs = models
                .iter()
                .map(|&m| {
                    m.fit(&ds).ok().map(|fitted| match stat {
                        ErrorStat::Max => max_err(&fitted, &ds),
                        ErrorStat::GeoMean => geo_mean_err(&fitted, &ds),
                    })
                })
                .collect();
            (name.clone(), errs)
        })
        .collect();
    ErrorMatrix {
        platform: platform.name,
        stat,
        models,
        rows,
    }
}

/// A runtime-vs-walk-cycles curve figure (Figures 3, 7, 8, 10, 11 share
/// this shape): empirical points plus two models' predictions.
#[derive(Clone, Debug, PartialEq)]
pub struct CurveFig {
    /// Workload name.
    pub workload: String,
    /// Platform name.
    pub platform: &'static str,
    /// Empirical `(C, R)` points sorted by walk cycles.
    pub empirical: Vec<(f64, f64)>,
    /// First model's name and `(C, R̂)` predictions at the same points.
    pub model_a: (ModelKind, Vec<(f64, f64)>),
    /// Second model, likewise.
    pub model_b: (ModelKind, Vec<(f64, f64)>),
    /// Maximal relative errors of the two models on the dataset.
    pub err_a: f64,
    /// Maximal error of model B.
    pub err_b: f64,
}

impl CurveFig {
    /// Renders the figure as an ASCII scatter plot: empirical points
    /// (`o`), model A (`a`), model B (`b`), overlaps (`*`). Both axes are
    /// linear, sized `width x height` characters.
    pub fn ascii_plot(&self, width: usize, height: usize) -> String {
        let width = width.max(16);
        let height = height.max(8);
        let all_r = self
            .empirical
            .iter()
            .chain(&self.model_a.1)
            .chain(&self.model_b.1)
            .map(|&(_, r)| r);
        let (mut r_min, mut r_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for r in all_r {
            r_min = r_min.min(r);
            r_max = r_max.max(r);
        }
        let c_max = self
            .empirical
            .iter()
            .map(|&(c, _)| c)
            .fold(0.0, f64::max)
            .max(1.0);
        let r_span = (r_max - r_min).max(1.0);
        let mut grid = vec![vec![' '; width]; height];
        let mut put = |c: f64, r: f64, glyph: char| {
            let x = ((c / c_max) * (width - 1) as f64).round() as usize;
            let y = (((r - r_min) / r_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            let cell = &mut grid[row][x.min(width - 1)];
            *cell = match (*cell, glyph) {
                (' ', g) => g,
                (existing, g) if existing == g => g,
                _ => '*',
            };
        };
        for &(c, r) in &self.model_a.1 {
            put(c, r, 'a');
        }
        for &(c, r) in &self.model_b.1 {
            put(c, r, 'b');
        }
        for &(c, r) in &self.empirical {
            put(c, r, 'o');
        }
        let mut out = String::new();
        out.push_str(&format!(
            "R (max {:.2}e6)  o=measured  a={}  b={}\n",
            r_max / 1e6,
            self.model_a.0.name(),
            self.model_b.0.name()
        ));
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', width));
        out.push_str(&format!("> C (max {:.2}e6)\n", c_max / 1e6));
        out
    }
}

impl CurveFig {
    /// Exports the figure's series as CSV: `c,measured,<model_a>,<model_b>`.
    pub fn to_csv(&self) -> String {
        let mut out = format!(
            "c,measured,{},{}\n",
            self.model_a.0.name(),
            self.model_b.0.name()
        );
        for (i, &(c, r)) in self.empirical.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                c, r, self.model_a.1[i].1, self.model_b.1[i].1
            ));
        }
        out
    }
}

impl fmt::Display for CurveFig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} — R vs C ({}: max err {}, {}: max err {}):",
            self.workload,
            self.platform,
            self.model_a.0.name(),
            pct(self.err_a),
            self.model_b.0.name(),
            pct(self.err_b),
        )?;
        // Pick the unit from the data's magnitude: paper-scale runs are
        // billions of cycles, the scaled simulations are millions.
        let max_r = self.empirical.iter().map(|&(_, r)| r).fold(0.0, f64::max);
        let (div, unit) = if max_r >= 1e9 {
            (1e9, "e9")
        } else {
            (1e6, "e6")
        };
        f.write_str(&self.ascii_plot(64, 16))?;
        let mut t = TextTable::new(vec![
            format!("C [{unit}]"),
            format!("R measured [{unit}]"),
            format!("R {} [{unit}]", self.model_a.0.name()),
            format!("R {} [{unit}]", self.model_b.0.name()),
        ]);
        for (i, &(c, r)) in self.empirical.iter().enumerate() {
            t.row(vec![
                format!("{:.3}", c / div),
                format!("{:.3}", r / div),
                format!("{:.3}", self.model_a.1[i].1 / div),
                format!("{:.3}", self.model_b.1[i].1 / div),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Builds a curve figure comparing two models on one pair.
///
/// # Errors
///
/// Propagates fit failures of either model.
pub fn model_curve(
    grid: &Grid,
    workload: &str,
    platform: &'static Platform,
    model_a: ModelKind,
    model_b: ModelKind,
) -> Result<CurveFig, FitError> {
    let ds = grid.dataset(workload, platform);
    let fit_a = model_a.fit(&ds)?;
    let fit_b = model_b.fit(&ds)?;
    let mut samples: Vec<&Sample> = ds.iter().collect();
    samples.sort_by(|a, b| a.c.total_cmp(&b.c));
    let empirical: Vec<(f64, f64)> = samples.iter().map(|s| (s.c, s.r)).collect();
    let preds = |m: &dyn RuntimeModel| {
        samples
            .iter()
            .map(|s| (s.c, m.predict(s)))
            .collect::<Vec<_>>()
    };
    Ok(CurveFig {
        workload: workload.to_string(),
        platform: platform.name,
        model_a: (model_a, preds(&fit_a)),
        model_b: (model_b, preds(&fit_b)),
        err_a: max_err(&fit_a, &ds),
        err_b: max_err(&fit_b, &ds),
        empirical,
    })
}

/// Figure 3: spec06/mcf on SandyBridge — the linear (Yaniv) model misses
/// the curvature that Mosmodel captures.
pub fn fig3(grid: &Grid) -> Result<CurveFig, FitError> {
    model_curve(
        grid,
        "spec06/mcf",
        &Platform::SANDY_BRIDGE,
        ModelKind::Yaniv,
        ModelKind::Mosmodel,
    )
}

/// Figure 5: per-benchmark maximal errors for every platform.
pub fn fig5(grid: &Grid, per_platform: &[(&'static Platform, Vec<String>)]) -> Vec<ErrorMatrix> {
    per_platform
        .iter()
        .map(|(p, names)| error_matrix(grid, p, names, ErrorStat::Max))
        .collect()
}

/// Figure 6: per-benchmark geomean errors for every platform.
pub fn fig6(grid: &Grid, per_platform: &[(&'static Platform, Vec<String>)]) -> Vec<ErrorMatrix> {
    per_platform
        .iter()
        .map(|(p, names)| error_matrix(grid, p, names, ErrorStat::GeoMean))
        .collect()
}

/// Figure 7: how optimistic the Basu model gets on gapbs/sssp-twitter.
/// The paper measures predictions up to 42% *below* the true runtime
/// near the zero-overhead region on SandyBridge; in this substrate the
/// under-prediction concentrates on Broadwell (where the two-walker `C`
/// counter inflates Basu's subtraction), so the figure reports that
/// platform.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig7 {
    /// The underlying curve (Basu vs Mosmodel for reference).
    pub curve: CurveFig,
    /// Maximal *optimism*: `max (R - R̂)/R` over the dataset (positive
    /// means the model under-predicts runtimes).
    pub basu_max_optimism: f64,
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 — Basu optimism on {}/{}: predicts up to {} below the true runtime",
            self.curve.workload,
            self.curve.platform,
            pct(self.basu_max_optimism)
        )?;
        write!(f, "{}", self.curve)
    }
}

/// Computes Figure 7.
///
/// # Errors
///
/// Propagates model-fitting failures.
pub fn fig7(grid: &Grid) -> Result<Fig7, FitError> {
    let workload = "gapbs/sssp-twitter";
    let platform = &Platform::BROADWELL;
    let curve = model_curve(
        grid,
        workload,
        platform,
        ModelKind::Basu,
        ModelKind::Mosmodel,
    )?;
    let ds = grid.dataset(workload, platform);
    let basu = ModelKind::Basu.fit(&ds)?;
    let optimism = ds
        .iter()
        .map(|s| (s.r - basu.predict(s)) / s.r)
        .fold(f64::NEG_INFINITY, f64::max);
    Ok(Fig7 {
        curve,
        basu_max_optimism: optimism,
    })
}

/// Figure 8: linear regression describes spec06/omnetpp well on
/// SandyBridge.
pub fn fig8(grid: &Grid) -> Result<CurveFig, FitError> {
    model_curve(
        grid,
        "spec06/omnetpp",
        &Platform::SANDY_BRIDGE,
        ModelKind::Poly1,
        ModelKind::Mosmodel,
    )
}

/// Figure 9: the poly1 slope for spec17/xalancbmk_s on Broadwell exceeds
/// 1 — each walk cycle costs *more* than a cycle because walker traffic
/// pollutes the caches.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig9 {
    /// The fitted poly1 slope α.
    pub slope: f64,
    /// poly1's maximal error on the pair.
    pub poly1_max_err: f64,
    /// The curve (poly1 vs mosmodel).
    pub curve: CurveFig,
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9 — {} on {}: poly1 slope α = {:.3} (> 1 means walks cost more than their cycles)",
            self.curve.workload, self.curve.platform, self.slope
        )?;
        write!(f, "{}", self.curve)
    }
}

/// Computes Figure 9.
///
/// # Errors
///
/// Propagates model-fitting failures.
pub fn fig9(grid: &Grid) -> Result<Fig9, FitError> {
    let workload = "spec17/xalancbmk_s";
    let platform = &Platform::BROADWELL;
    let ds = grid.dataset(workload, platform);
    let poly1 = ModelKind::Poly1.fit(&ds)?;
    let curve = model_curve(
        grid,
        workload,
        platform,
        ModelKind::Poly1,
        ModelKind::Mosmodel,
    )?;
    Ok(Fig9 {
        slope: poly1.slope_c().unwrap_or(f64::NAN),
        poly1_max_err: max_err(&poly1, &ds),
        curve,
    })
}

/// Figure 10: gups/16GB on SandyBridge — poly1 cannot follow the convex
/// R(C) curve; poly2 can.
pub fn fig10(grid: &Grid) -> Result<CurveFig, FitError> {
    model_curve(
        grid,
        "gups/16GB",
        &Platform::SANDY_BRIDGE,
        ModelKind::Poly1,
        ModelKind::Poly2,
    )
}

/// Figure 11: predicting the all-1GB layout of gapbs/pr-twitter on
/// SandyBridge — the Yaniv model misses, Mosmodel is accurate.
pub fn fig11(grid: &Grid) -> Result<casestudy::OneGbValidation, FitError> {
    casestudy::one_gb(grid, "gapbs/pr-twitter", &Platform::SANDY_BRIDGE)
}

/// Helper assembling the `(workload, platform)` pair list for aggregated
/// figures, respecting per-platform TLB sensitivity.
pub fn sensitive_pairs(grid: &Grid) -> Vec<(String, &'static Platform)> {
    let mut pairs = Vec::new();
    for platform in Platform::ALL {
        for name in grid.tlb_sensitive_workloads(platform) {
            pairs.push((name, platform));
        }
    }
    pairs
}

/// Per-platform TLB-sensitive workload lists, the row sets of Figures
/// 5 and 6.
pub fn sensitive_by_platform(grid: &Grid) -> Vec<(&'static Platform, Vec<String>)> {
    Platform::ALL
        .iter()
        .map(|&p| (p, grid.tlb_sensitive_workloads(p)))
        .collect()
}
