//! The §VII-D validation case study: predicting the 1GB-page layout.
//!
//! The paper validates Mosmodel against real hardware by (1) training on
//! the 54 layouts that mix only 4KB and 2MB pages, (2) measuring the
//! all-1GB layout, which the model never saw, (3) feeding the measured
//! `(H, M, C)` of that run — "a perfectly accurate partial simulation" —
//! to the model, and (4) comparing the predicted and measured runtimes.

use std::fmt;

use machine::Platform;
use mosmodel::models::{ModelKind, RuntimeModel};
use mosmodel::FitError;

use crate::report::{cycles, pct};
use crate::Grid;

/// Result of the 1GB-prediction procedure for one pair.
#[derive(Clone, Debug, PartialEq)]
pub struct OneGbValidation {
    /// Workload name.
    pub workload: String,
    /// Platform name.
    pub platform: &'static str,
    /// Measured runtime of the all-1GB layout.
    pub measured_r: f64,
    /// Yaniv's prediction and relative error.
    pub yaniv: (f64, f64),
    /// Mosmodel's prediction and relative error.
    pub mosmodel: (f64, f64),
}

impl fmt::Display for OneGbValidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "1GB-page prediction for {} on {} (measured R = {} cycles):",
            self.workload,
            self.platform,
            cycles(self.measured_r)
        )?;
        writeln!(
            f,
            "  yaniv:    predicted {}, error {}",
            cycles(self.yaniv.0),
            pct(self.yaniv.1)
        )?;
        write!(
            f,
            "  mosmodel: predicted {}, error {}",
            cycles(self.mosmodel.0),
            pct(self.mosmodel.1)
        )
    }
}

/// Runs the §VII-D procedure for one (workload, platform) pair.
///
/// # Errors
///
/// Propagates fitting failures and a missing all-1GB measurement.
pub fn one_gb(
    grid: &Grid,
    workload: &str,
    platform: &'static Platform,
) -> Result<OneGbValidation, FitError> {
    let entry = grid.entry(workload, platform);
    // Step 1-2: train on the 54 mixed 4KB/2MB layouts only.
    let train = entry.dataset();
    let yaniv = ModelKind::Yaniv.fit(&train)?;
    let mosmodel = ModelKind::Mosmodel.fit(&train)?;
    // Step 3: the held-out 1GB measurement plays the partial simulator.
    let test = entry
        .record(mosmodel::LayoutKind::All1G)
        .ok_or(FitError::MissingAnchor("all-1GB"))?
        .sample();
    // Steps 4-6: predict and compare.
    let err = |pred: f64| ((test.r - pred) / test.r).abs();
    let y_pred = yaniv.predict(&test);
    let m_pred = mosmodel.predict(&test);
    Ok(OneGbValidation {
        workload: workload.to_string(),
        platform: platform.name,
        measured_r: test.r,
        yaniv: (y_pred, err(y_pred)),
        mosmodel: (m_pred, err(m_pred)),
    })
}

/// Runs the case study over many pairs, returning all validations.
pub fn one_gb_sweep(grid: &Grid, pairs: &[(String, &'static Platform)]) -> Vec<OneGbValidation> {
    pairs
        .iter()
        .filter_map(|(w, p)| one_gb(grid, w, p).ok())
        .collect()
}
