//! The measurement grid: workload × platform × layout → PMU counters.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use machine::{profile_tlb_misses, Engine, EngineConfig, Platform};
use mosalloc::{Mosalloc, MosallocConfig, PoolSpec};
use mosmodel::dataset::{Dataset, LayoutKind, Sample};
use mosmodel::persist::{fmt_f64_shortest, parse_f64_shortest};
use parking_lot::Mutex;
use vmcore::{MemoryLayout, PageSize, PmuCounters, Region};
use workloads::{TraceParams, WorkloadSpec};

use crate::Speed;

/// One measured run: a layout and its counters.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Human-readable layout description.
    pub description: String,
    /// Anchor classification of the layout.
    pub kind: LayoutKind,
    /// The PMU readout of the run (mean over repetitions when the speed
    /// preset repeats runs).
    pub counters: PmuCounters,
    /// Coefficient of variation of the runtime across repetitions (the
    /// paper's §VI-A stopping criterion keeps this below 5%). Zero for
    /// single-repetition presets.
    pub cv_r: f64,
}

impl RunRecord {
    /// Converts the record into a model-fitting sample.
    pub fn sample(&self) -> Sample {
        Sample::from_counters(&self.counters, self.kind)
    }
}

/// All measurements for one (workload, platform) pair: the 54-layout
/// battery plus the held-out all-1GB run.
#[derive(Clone, Debug, PartialEq)]
pub struct GridEntry {
    /// Workload name (paper spelling, e.g. `"gups/16GB"`).
    pub workload: String,
    /// Platform or machine-variant name.
    pub platform: String,
    /// All runs, battery order first, the all-1GB run last.
    pub records: Vec<RunRecord>,
}

impl GridEntry {
    /// The model-fitting dataset: every run **except** the all-1GB one
    /// (which the paper holds out for the §VII-D case study).
    pub fn dataset(&self) -> Dataset {
        self.records
            .iter()
            .filter(|r| r.kind != LayoutKind::All1G)
            .map(RunRecord::sample)
            .collect()
    }

    /// Every run including the all-1GB measurement.
    pub fn full_dataset(&self) -> Dataset {
        self.records.iter().map(RunRecord::sample).collect()
    }

    /// The first record of the given layout kind.
    pub fn record(&self, kind: LayoutKind) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.kind == kind)
    }

    /// The paper's TLB-sensitivity test (§VI-A): does the best hugepage
    /// layout improve runtime by at least 5% over all-4KB?
    pub fn is_tlb_sensitive(&self) -> bool {
        self.full_dataset()
            .tlb_sensitivity()
            .is_some_and(|s| s >= 0.05)
    }

    /// The worst runtime variation across all layouts (§VI-A demands
    /// this stays below 5%).
    pub fn max_cv(&self) -> f64 {
        self.records.iter().map(|r| r.cv_r).fold(0.0, f64::max)
    }
}

/// A named machine variant: a platform (possibly hypothetical) plus an
/// engine configuration, measurable as a first-class grid column.
///
/// # Example
///
/// ```no_run
/// use harness::{Grid, MachineVariant, SPEED_FAST};
/// use machine::{EngineConfig, Platform};
/// use vmcore::PageSize;
///
/// let grid = Grid::new(SPEED_FAST);
/// let virtualized = MachineVariant {
///     name: "SNB-virt-4K".into(),
///     platform: Platform::SANDY_BRIDGE,
///     config: EngineConfig {
///         virtualized: Some(PageSize::Base4K),
///         ..EngineConfig::default()
///     },
/// };
/// let entry = grid.entry_variant("spec06/mcf", &virtualized);
/// assert_eq!(entry.records.len(), 55);
/// ```
#[derive(Clone, Debug)]
pub struct MachineVariant {
    /// Unique name (used as the cache key; keep it filesystem-safe).
    pub name: String,
    /// The (possibly hypothetical) platform.
    pub platform: Platform,
    /// Engine configuration (virtualization, lookahead overrides...).
    pub config: EngineConfig,
}

impl MachineVariant {
    /// Wraps a real platform with the default engine configuration.
    pub fn real(platform: &'static Platform) -> Self {
        MachineVariant {
            name: platform.name.to_string(),
            platform: platform.clone(),
            config: EngineConfig::default(),
        }
    }
}

/// Lazily evaluated, memoized (in memory and on disk) measurement grid.
///
/// # Example
///
/// ```no_run
/// use harness::{Grid, SPEED_FAST};
/// use machine::Platform;
///
/// let grid = Grid::new(SPEED_FAST);
/// let entry = grid.entry("spec06/mcf", &Platform::SANDY_BRIDGE);
/// assert_eq!(entry.records.len(), 55); // 54-layout battery + all-1GB
/// ```
#[derive(Debug)]
pub struct Grid {
    speed: Speed,
    // BTreeMap, not HashMap: the memo feeds the on-disk cache, and
    // nothing on a persistence path may depend on a per-process hasher.
    memo: Mutex<BTreeMap<(String, String), Arc<GridEntry>>>,
    disk_dir: Option<PathBuf>,
}

impl Grid {
    /// Creates a grid with the default on-disk cache
    /// (`target/mosaic-cache`, disable with `MOSAIC_NO_DISK_CACHE=1`).
    pub fn new(speed: Speed) -> Self {
        let disk = match std::env::var("MOSAIC_NO_DISK_CACHE") {
            Ok(v) if v == "1" => None,
            _ => Some(
                std::env::var("MOSAIC_CACHE_DIR")
                    .map(PathBuf::from)
                    .unwrap_or_else(|_| PathBuf::from("target/mosaic-cache")),
            ),
        };
        Grid {
            speed,
            memo: Mutex::new(BTreeMap::new()),
            disk_dir: disk,
        }
    }

    /// Creates a grid without the on-disk cache (hermetic tests).
    pub fn in_memory(speed: Speed) -> Self {
        Grid {
            speed,
            memo: Mutex::new(BTreeMap::new()),
            disk_dir: None,
        }
    }

    /// The active speed preset.
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// Returns (computing if needed) the grid entry for a pair.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown.
    pub fn entry(&self, workload: &str, platform: &'static Platform) -> Arc<GridEntry> {
        self.entry_variant(workload, &MachineVariant::real(platform))
    }

    /// Returns the grid entry for a workload on an arbitrary
    /// [`MachineVariant`] — hypothetical designs and virtualized machines
    /// get the same 54-layout battery treatment as the paper platforms.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown.
    pub fn entry_variant(&self, workload: &str, variant: &MachineVariant) -> Arc<GridEntry> {
        let key = (workload.to_string(), variant.name.clone());
        if let Some(hit) = self.memo.lock().get(&key) {
            return Arc::clone(hit);
        }
        if let Some(entry) = self.load_disk(workload, &variant.name) {
            let entry = Arc::new(entry);
            self.memo.lock().insert(key, Arc::clone(&entry));
            return entry;
        }
        let entry = Arc::new(compute_entry(self.speed, workload, variant));
        self.store_disk(&entry);
        self.memo.lock().insert(key, Arc::clone(&entry));
        entry
    }

    /// Convenience: the 54-sample model-fitting dataset for a pair.
    pub fn dataset(&self, workload: &str, platform: &'static Platform) -> Dataset {
        self.entry(workload, platform).dataset()
    }

    /// The workloads that are TLB-sensitive on `platform` (the paper
    /// excludes insensitive pairs, e.g. gapbs/bfs-road on Broadwell).
    pub fn tlb_sensitive_workloads(&self, platform: &'static Platform) -> Vec<String> {
        workloads::registry()
            .into_iter()
            .map(|w| w.name.to_string())
            .filter(|name| self.entry(name, platform).is_tlb_sensitive())
            .collect()
    }

    fn cache_path(&self, workload: &str, platform: &str) -> Option<PathBuf> {
        let dir = self.disk_dir.as_ref()?;
        let safe = workload.replace(['/', ' '], "_");
        Some(dir.join(format!("{}_{}_{}.tsv", self.speed.name, safe, platform)))
    }

    fn load_disk(&self, workload: &str, variant: &str) -> Option<GridEntry> {
        let path = self.cache_path(workload, variant)?;
        let text = fs::read_to_string(path).ok()?;
        parse_entry(workload, variant, &text)
    }

    fn store_disk(&self, entry: &GridEntry) {
        let Some(path) = self.cache_path(&entry.workload, &entry.platform) else {
            return;
        };
        if let Some(parent) = path.parent() {
            if let Err(e) = fs::create_dir_all(parent) {
                eprintln!("mosaic: cannot create cache dir {}: {e}", parent.display());
                return;
            }
        }
        // A failed write only costs re-measurement next run, but silence
        // would hide a misconfigured MOSAIC_CACHE_DIR forever.
        if let Err(e) = fs::write(&path, render_entry(entry)) {
            eprintln!(
                "mosaic: cache write to {} failed (ignored): {e}",
                path.display()
            );
        }
    }
}

/// Cache format version; bump whenever the TSV schema changes so stale
/// files are re-measured instead of mis-parsed.
const CACHE_VERSION: u32 = 2;

/// Serializes an entry as a TSV document (stable, human-inspectable).
/// The first line is a version header; [`parse_entry`] rejects files
/// written by any other version.
fn render_entry(entry: &GridEntry) -> String {
    let mut out = format!("# mosaic-cache v{CACHE_VERSION}\n");
    out.push_str("kind\tR\tH\tM\tC\tinst\tpl1d\tpl2\tpl3\twl1d\twl2\twl3\tcvR\tdescription\n");
    for r in &entry.records {
        let c = &r.counters;
        out.push_str(&format!(
            "{:?}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.kind,
            c.runtime_cycles,
            c.stlb_hits,
            c.stlb_misses,
            c.walk_cycles,
            c.instructions,
            c.program_l1d_loads,
            c.program_l2_loads,
            c.program_l3_loads,
            c.walker_l1d_loads,
            c.walker_l2_loads,
            c.walker_l3_loads,
            // Shortest-roundtrip codec: human-readable, yet the parsed
            // value reproduces the measured cv bit-for-bit.
            fmt_f64_shortest(r.cv_r),
            r.description.replace(['\t', '\n'], " "),
        ));
    }
    out
}

fn parse_entry(workload: &str, platform: &str, text: &str) -> Option<GridEntry> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let version = header.strip_prefix("# mosaic-cache v")?;
    if version.trim().parse::<u32>() != Ok(CACHE_VERSION) {
        return None;
    }
    let mut records = Vec::new();
    for line in lines.skip(1) {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 14 {
            return None;
        }
        let kind = match cols[0] {
            "All4K" => LayoutKind::All4K,
            "All2M" => LayoutKind::All2M,
            "All1G" => LayoutKind::All1G,
            "Mixed" => LayoutKind::Mixed,
            _ => return None,
        };
        let num = |i: usize| cols[i].parse::<u64>().ok();
        records.push(RunRecord {
            kind,
            counters: PmuCounters {
                runtime_cycles: num(1)?,
                stlb_hits: num(2)?,
                stlb_misses: num(3)?,
                walk_cycles: num(4)?,
                instructions: num(5)?,
                program_l1d_loads: num(6)?,
                program_l2_loads: num(7)?,
                program_l3_loads: num(8)?,
                walker_l1d_loads: num(9)?,
                walker_l2_loads: num(10)?,
                walker_l3_loads: num(11)?,
            },
            cv_r: parse_f64_shortest(cols[12])?,
            description: cols[13].to_string(),
        });
    }
    if records.is_empty() {
        return None;
    }
    Some(GridEntry {
        workload: workload.to_string(),
        platform: platform.to_string(),
        records,
    })
}

/// Classifies a layout into its anchor kind.
fn classify(layout: &MemoryLayout) -> LayoutKind {
    if layout.windows().is_empty() {
        return LayoutKind::All4K;
    }
    if layout.bytes_backed_by(PageSize::Base4K) == 0 {
        let all_2m = layout.windows().iter().all(|w| w.size == PageSize::Huge2M);
        let all_1g = layout.windows().iter().all(|w| w.size == PageSize::Huge1G);
        if all_2m {
            return LayoutKind::All2M;
        }
        if all_1g {
            return LayoutKind::All1G;
        }
    }
    LayoutKind::Mixed
}

/// Builds the Mosalloc configuration whose heap pool realizes `layout`.
fn config_for_layout(pool: Region, layout: &MemoryLayout) -> MosallocConfig {
    let mut brk = PoolSpec::plain(pool.len());
    for w in layout.windows() {
        let start = w.region.start().raw().saturating_sub(pool.start().raw());
        let end = w.region.end() - pool.start();
        brk = brk.with_window(start, end, w.size);
    }
    MosallocConfig {
        brk,
        anon: PoolSpec::plain(64 << 20),
        file: PoolSpec::plain(64 << 20),
    }
}

/// The fixed measurement geometry for one `(speed, workload)` pair: the
/// heap pool region and the trace parameters every layout of that pair is
/// measured against. Splitting this out of the battery loop lets callers
/// (e.g. the prediction service) measure *single* layouts on demand with
/// exactly the grid's methodology.
#[derive(Clone, Debug)]
pub struct MeasureContext {
    spec: WorkloadSpec,
    speed: Speed,
    pool: Region,
    params: TraceParams,
}

impl MeasureContext {
    /// Builds the context for a named workload, or `None` if the name is
    /// unknown.
    pub fn new(speed: Speed, workload: &str) -> Option<Self> {
        let spec = WorkloadSpec::by_name(workload)?;
        let footprint = speed.footprint(spec.nominal_footprint);
        let accesses = speed.trace_len(spec.access_factor);
        let seed = fnv(workload.as_bytes());

        // Claim the arena from a plain Mosalloc to fix the pool geometry.
        let probe_alloc = Mosalloc::new(MosallocConfig {
            brk: PoolSpec::plain(footprint),
            anon: PoolSpec::plain(64 << 20),
            file: PoolSpec::plain(64 << 20),
        })
        .expect("plain config is valid");
        let pool = probe_alloc.heap().region();
        let params = TraceParams::new(pool, accesses, seed);
        Some(MeasureContext {
            spec,
            speed,
            pool,
            params,
        })
    }

    /// The heap pool region layouts are built against.
    pub fn pool(&self) -> Region {
        self.pool
    }

    /// The workload name.
    pub fn workload(&self) -> &str {
        self.spec.name
    }
}

/// Measures one layout on one machine variant with the grid's §VI-A
/// methodology: repeat (varying physical placement via the engine salt)
/// until the runtime variation falls below 5% or the speed preset's
/// repetition budget runs out.
///
/// # Panics
///
/// Panics if `layout` does not describe a valid pool configuration for
/// the context's pool region.
pub fn measure_layout(
    ctx: &MeasureContext,
    variant: &MachineVariant,
    layout: &MemoryLayout,
) -> RunRecord {
    measure_layout_traced(ctx, variant, layout, None)
}

/// Sim-domain stage names emitted by [`measure_layout_traced`], in emission
/// order per repetition. Span timestamps are *simulated cycles* (the engine's
/// retirement clock), never wall time, so identical runs produce
/// byte-identical traces.
pub const SIM_STAGES: [&str; 3] = ["replay", "page_walk", "finalize"];

/// [`measure_layout`] with optional sim-domain span recording.
///
/// When a recorder is supplied, each repetition contributes three spans on a
/// cumulative simulated-cycle axis (repetition `k` starts where repetition
/// `k-1` retired its last instruction):
///
/// * `replay` — the full trace replay, `[base, base + runtime_cycles]`;
/// * `page_walk` — the page-walk share of that window,
///   `[base, base + walk_cycles]` (walks overlap replay by definition);
/// * `finalize` — a zero-width marker at the repetition's retirement point,
///   where counters are read out and the CV stopping rule is evaluated.
///
/// All timestamps derive from deterministic PMU counters, so the rendered
/// trace bytes are a pure function of (workload, platform, layout, speed).
pub fn measure_layout_traced(
    ctx: &MeasureContext,
    variant: &MachineVariant,
    layout: &MemoryLayout,
    mut recorder: Option<&mut obs::SpanRecorder>,
) -> RunRecord {
    let mosalloc = Mosalloc::new(config_for_layout(ctx.pool, layout))
        .expect("layout must be a valid pool spec");
    let mut runs: Vec<PmuCounters> = Vec::new();
    let mut base: u64 = 0;
    for rep in 0..ctx.speed.max_reps.max(1) {
        let config = EngineConfig {
            salt: variant.config.salt ^ (u64::from(rep) << 56),
            ..variant.config
        };
        let mut engine = Engine::with_config(&variant.platform, config);
        let counters = engine.run(ctx.spec.trace(&ctx.params), |va| mosalloc.page_size_at(va));
        if let Some(rec) = recorder.as_deref_mut() {
            let end = base.saturating_add(counters.runtime_cycles);
            rec.record("replay", base, end);
            rec.record("page_walk", base, base.saturating_add(counters.walk_cycles));
            rec.record("finalize", end, end);
            base = end;
        }
        runs.push(counters);
        if runs.len() >= 2 && runtime_cv(&runs) < 0.05 {
            break;
        }
    }
    RunRecord {
        description: layout.describe(),
        kind: classify(layout),
        counters: mean_counters(&runs),
        cv_r: runtime_cv(&runs),
    }
}

/// Runs the whole battery for one (workload, machine-variant) pair.
fn compute_entry(speed: Speed, workload: &str, variant: &MachineVariant) -> GridEntry {
    let ctx = MeasureContext::new(speed, workload)
        .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    let pool = ctx.pool;

    // PEBS-like profiling run for the Sliding Window heuristic.
    let profile = profile_tlb_misses(
        &variant.platform,
        ctx.spec.trace(&ctx.params),
        pool,
        2 << 20,
    );

    // The 54-layout battery plus the all-1GB hold-out.
    let mut layouts: Vec<MemoryLayout> = layouts::standard_battery(pool, |x| profile.hot_region(x))
        .into_iter()
        .map(|p| p.layout)
        .collect();
    layouts.push(MemoryLayout::uniform(pool, PageSize::Huge1G));

    // Measure every layout; independent runs execute in parallel.
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunRecord>>> = layouts.iter().map(|_| Mutex::new(None)).collect();
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(layouts.len());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(layout) = layouts.get(i) else { break };
                *results[i].lock() = Some(measure_layout(&ctx, variant, layout));
            });
        }
    });

    let records: Vec<RunRecord> = results
        .into_iter()
        .map(|m| m.into_inner().expect("all runs completed"))
        .collect();
    GridEntry {
        workload: workload.to_string(),
        platform: variant.name.clone(),
        records,
    }
}

/// Coefficient of variation (stddev/mean) of the runtimes of `runs`;
/// zero for fewer than two runs.
fn runtime_cv(runs: &[PmuCounters]) -> f64 {
    if runs.len() < 2 {
        return 0.0;
    }
    let rs: Vec<f64> = runs.iter().map(|c| c.runtime_cycles as f64).collect();
    let mean = rs.iter().sum::<f64>() / rs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = rs.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rs.len() as f64;
    var.sqrt() / mean
}

/// Field-wise arithmetic mean of several PMU readouts.
fn mean_counters(runs: &[PmuCounters]) -> PmuCounters {
    assert!(!runs.is_empty(), "at least one run");
    let n = runs.len() as u64;
    let avg = |f: fn(&PmuCounters) -> u64| runs.iter().map(f).sum::<u64>() / n;
    PmuCounters {
        runtime_cycles: avg(|c| c.runtime_cycles),
        stlb_hits: avg(|c| c.stlb_hits),
        stlb_misses: avg(|c| c.stlb_misses),
        walk_cycles: avg(|c| c.walk_cycles),
        instructions: avg(|c| c.instructions),
        program_l1d_loads: avg(|c| c.program_l1d_loads),
        program_l2_loads: avg(|c| c.program_l2_loads),
        program_l3_loads: avg(|c| c.program_l3_loads),
        walker_l1d_loads: avg(|c| c.walker_l1d_loads),
        walker_l2_loads: avg(|c| c.walker_l2_loads),
        walker_l3_loads: avg(|c| c.walker_l3_loads),
    }
}

/// FNV-1a, for stable workload seeds.
fn fnv(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_speed() -> Speed {
        Speed {
            name: "tiny",
            footprint_div: 1024,
            min_footprint: 48 << 20,
            accesses: 12_000,
            max_reps: 1,
        }
    }

    #[test]
    fn entry_has_55_records_with_anchors() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert_eq!(entry.records.len(), 55);
        assert!(entry.record(LayoutKind::All4K).is_some());
        assert!(entry.record(LayoutKind::All2M).is_some());
        assert!(entry.record(LayoutKind::All1G).is_some());
        // The model dataset excludes the 1GB run.
        assert_eq!(entry.dataset().len(), 54);
        assert_eq!(entry.full_dataset().len(), 55);
    }

    #[test]
    fn gups_is_tlb_sensitive_and_anchors_are_ordered() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert!(entry.is_tlb_sensitive());
        let r4k = entry
            .record(LayoutKind::All4K)
            .unwrap()
            .counters
            .runtime_cycles;
        let r2m = entry
            .record(LayoutKind::All2M)
            .unwrap()
            .counters
            .runtime_cycles;
        let r1g = entry
            .record(LayoutKind::All1G)
            .unwrap()
            .counters
            .runtime_cycles;
        assert!(r4k > r2m, "2MB must beat 4KB for gups: {r4k} vs {r2m}");
        assert!(r2m >= r1g, "1GB at least as good as 2MB: {r2m} vs {r1g}");
    }

    #[test]
    fn memoization_returns_same_arc() {
        let grid = Grid::in_memory(tiny_speed());
        let a = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let b = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn battery_spreads_walk_cycles() {
        let grid = Grid::in_memory(tiny_speed());
        let ds = grid.dataset("gups/8GB", &Platform::SANDY_BRIDGE);
        let c4k = ds.anchor_4k().unwrap().c;
        let c2m = ds.anchor_2m().unwrap().c;
        assert!(c4k > c2m);
        // At least a dozen distinct intermediate C values.
        let mut cs: Vec<u64> = ds.iter().map(|s| s.c as u64).collect();
        cs.sort_unstable();
        cs.dedup();
        assert!(cs.len() >= 12, "only {} distinct C values", cs.len());
    }

    #[test]
    fn tsv_roundtrip() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let text = render_entry(&entry);
        let parsed = parse_entry("gups/8GB", "SandyBridge", &text).unwrap();
        assert_eq!(*entry, parsed);
    }

    #[test]
    fn independent_measurements_render_byte_identical_tsv() {
        // Two grids, each measuring from scratch (multi-threaded battery
        // and all): the rendered cache files must agree byte-for-byte,
        // or the on-disk cache would smear nondeterminism across runs.
        let a = Grid::in_memory(tiny_speed()).entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let b = Grid::in_memory(tiny_speed()).entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert_eq!(
            render_entry(&a),
            render_entry(&b),
            "successive measurements of the same pair rendered different TSV"
        );
    }

    #[test]
    fn repetitions_satisfy_the_5_percent_variation_bound() {
        // §VI-A: each layout is rerun until runtime variation < 5%. The
        // simulator's only noise source is physical placement, which is
        // far quieter than real machines — the bound must hold easily.
        let speed = Speed {
            max_reps: 3,
            ..tiny_speed()
        };
        let grid = Grid::in_memory(speed);
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert!(
            entry.max_cv() < 0.05,
            "runtime variation {} exceeds the paper's bound",
            entry.max_cv()
        );
        assert!(
            entry.max_cv() > 0.0,
            "repetitions actually vary the placement"
        );
        // TSV round-trip preserves the variation column.
        let text = render_entry(&entry);
        let parsed = parse_entry("gups/8GB", "SandyBridge", &text).unwrap();
        assert_eq!(*entry, parsed);
    }

    #[test]
    fn classify_kinds() {
        let pool = Region::new(vmcore::VirtAddr::new(0x1000_0000_0000), 64 << 20);
        assert_eq!(classify(&MemoryLayout::all_4k(pool)), LayoutKind::All4K);
        assert_eq!(
            classify(&MemoryLayout::uniform(pool, PageSize::Huge2M)),
            LayoutKind::All2M
        );
        assert_eq!(
            classify(&MemoryLayout::uniform(pool, PageSize::Huge1G)),
            LayoutKind::All1G
        );
        let mixed = MemoryLayout::builder(pool)
            .window(
                Region::new(vmcore::VirtAddr::new(0x1000_0000_0000), 2 << 20),
                PageSize::Huge2M,
            )
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(classify(&mixed), LayoutKind::Mixed);
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv(b"gups/8GB"), fnv(b"gups/16GB"));
        assert_eq!(fnv(b"x"), fnv(b"x"));
    }

    #[test]
    fn stale_cache_versions_are_rejected() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let text = render_entry(&entry);
        assert!(text.starts_with("# mosaic-cache v2\n"), "{}", &text[..40]);

        // A v1-era file (no header at all) and a future version must both
        // be treated as cache misses, not mis-parsed.
        let headerless = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(parse_entry("gups/8GB", "SandyBridge", &headerless).is_none());
        let future = text.replacen("v2", "v3", 1);
        assert!(parse_entry("gups/8GB", "SandyBridge", &future).is_none());
    }

    #[test]
    fn single_layout_measurement_matches_battery_methodology() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let ctx = MeasureContext::new(tiny_speed(), "gups/8GB").unwrap();
        let variant = MachineVariant::real(&Platform::SANDY_BRIDGE);
        // The all-4KB layout measured alone reproduces the battery's
        // all-4KB record exactly (same trace, same salt schedule).
        let record = measure_layout(&ctx, &variant, &MemoryLayout::all_4k(ctx.pool()));
        assert_eq!(record, *entry.record(LayoutKind::All4K).unwrap());
    }

    use proptest::prelude::*;

    fn counters_strategy() -> impl Strategy<Value = PmuCounters> {
        prop::collection::vec(0u64..(1 << 50), 11usize).prop_map(|v| PmuCounters {
            runtime_cycles: v[0],
            stlb_hits: v[1],
            stlb_misses: v[2],
            walk_cycles: v[3],
            instructions: v[4],
            program_l1d_loads: v[5],
            program_l2_loads: v[6],
            program_l3_loads: v[7],
            walker_l1d_loads: v[8],
            walker_l2_loads: v[9],
            walker_l3_loads: v[10],
        })
    }

    fn record_strategy() -> impl Strategy<Value = RunRecord> {
        (
            counters_strategy(),
            0usize..4,
            0.0f64..0.05,
            "[a-z 0-9]{0,24}",
        )
            .prop_map(|(counters, kind, cv_r, description)| RunRecord {
                description,
                kind: [
                    LayoutKind::All4K,
                    LayoutKind::All2M,
                    LayoutKind::All1G,
                    LayoutKind::Mixed,
                ][kind],
                counters,
                cv_r,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any entry — arbitrary counters, every layout kind, fractional
        /// cv values — survives the TSV round-trip exactly.
        #[test]
        fn tsv_roundtrip_arbitrary_entries(
            records in prop::collection::vec(record_strategy(), 1..8),
        ) {
            let entry = GridEntry {
                workload: "w/1GB".to_string(),
                platform: "P".to_string(),
                records,
            };
            let parsed = parse_entry("w/1GB", "P", &render_entry(&entry));
            prop_assert_eq!(Some(entry), parsed);
        }
    }
}
