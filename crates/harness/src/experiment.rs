//! The measurement grid: workload × platform × layout → PMU counters.

use std::collections::BTreeMap;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as SyncMutex, PoisonError};

use machine::{profile_tlb_misses, Engine, EngineConfig, Platform};
use mosalloc::{Mosalloc, MosallocConfig, PoolSpec};
use mosmodel::dataset::{Dataset, LayoutKind, Sample};
use mosmodel::persist::{encode_component, fmt_f64_shortest, parse_f64_shortest};
use parking_lot::Mutex;
use vmcore::{MemoryLayout, PageSize, PmuCounters, Region};
use workloads::{sampling, TraceParams, WorkloadSpec};

use crate::sampled::{self, BatteryMode, GateReport, SampledConfig};
use crate::{parallel, Speed};

/// One measured run: a layout and its counters.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Human-readable layout description.
    pub description: String,
    /// Anchor classification of the layout.
    pub kind: LayoutKind,
    /// The PMU readout of the run (mean over repetitions when the speed
    /// preset repeats runs).
    pub counters: PmuCounters,
    /// Coefficient of variation of the runtime across repetitions (the
    /// paper's §VI-A stopping criterion keeps this below 5%). Zero for
    /// single-repetition presets.
    pub cv_r: f64,
}

impl RunRecord {
    /// Converts the record into a model-fitting sample.
    pub fn sample(&self) -> Sample {
        Sample::from_counters(&self.counters, self.kind)
    }
}

/// All measurements for one (workload, platform) pair: the 54-layout
/// battery plus the held-out all-1GB run.
#[derive(Clone, Debug, PartialEq)]
pub struct GridEntry {
    /// Workload name (paper spelling, e.g. `"gups/16GB"`).
    pub workload: String,
    /// Platform or machine-variant name.
    pub platform: String,
    /// All runs, battery order first, the all-1GB run last.
    pub records: Vec<RunRecord>,
    /// How the records were measured: full traces, or periodic windows
    /// extrapolated to full scale. Persisted in the cache header so a
    /// sampled entry can never be mistaken for a full one.
    pub mode: BatteryMode,
    /// The cross-validation gate's verdict, when a sampled build was
    /// attempted: `accepted` evidence for a sampled entry, or the
    /// recorded rejection on a full entry a failed gate fell back to.
    /// `None` for plain full batteries that never involved the gate.
    pub gate: Option<GateReport>,
}

impl GridEntry {
    /// The model-fitting dataset: every run **except** the all-1GB one
    /// (which the paper holds out for the §VII-D case study).
    pub fn dataset(&self) -> Dataset {
        self.records
            .iter()
            .filter(|r| r.kind != LayoutKind::All1G)
            .map(RunRecord::sample)
            .collect()
    }

    /// Every run including the all-1GB measurement.
    pub fn full_dataset(&self) -> Dataset {
        self.records.iter().map(RunRecord::sample).collect()
    }

    /// The first record of the given layout kind.
    pub fn record(&self, kind: LayoutKind) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.kind == kind)
    }

    /// The paper's TLB-sensitivity test (§VI-A): does the best hugepage
    /// layout improve runtime by at least 5% over all-4KB?
    pub fn is_tlb_sensitive(&self) -> bool {
        self.full_dataset()
            .tlb_sensitivity()
            .is_some_and(|s| s >= 0.05)
    }

    /// The worst runtime variation across all layouts (§VI-A demands
    /// this stays below 5%).
    pub fn max_cv(&self) -> f64 {
        self.records.iter().map(|r| r.cv_r).fold(0.0, f64::max)
    }

    /// Serializes the entry as its on-disk TSV cache document — the
    /// exact bytes [`Grid`] persists, so tests and tooling can compare
    /// independently measured entries byte-for-byte.
    pub fn to_tsv(&self) -> String {
        render_entry(self)
    }

    /// Parses a document written by [`GridEntry::to_tsv`]. Returns
    /// `None` for any other version, a truncated document, or a record
    /// that fails to parse — the caller re-measures instead of serving
    /// corrupt data.
    pub fn from_tsv(workload: &str, platform: &str, text: &str) -> Option<GridEntry> {
        parse_entry(workload, platform, text)
    }
}

/// A named machine variant: a platform (possibly hypothetical) plus an
/// engine configuration, measurable as a first-class grid column.
///
/// # Example
///
/// ```no_run
/// use harness::{Grid, MachineVariant, SPEED_FAST};
/// use machine::{EngineConfig, Platform};
/// use vmcore::PageSize;
///
/// let grid = Grid::new(SPEED_FAST);
/// let virtualized = MachineVariant {
///     name: "SNB-virt-4K".into(),
///     platform: Platform::SANDY_BRIDGE,
///     config: EngineConfig {
///         virtualized: Some(PageSize::Base4K),
///         ..EngineConfig::default()
///     },
/// };
/// let entry = grid.entry_variant("spec06/mcf", &virtualized);
/// assert_eq!(entry.records.len(), 55);
/// ```
#[derive(Clone, Debug)]
pub struct MachineVariant {
    /// Unique name (used as the cache key; keep it filesystem-safe).
    pub name: String,
    /// The (possibly hypothetical) platform.
    pub platform: Platform,
    /// Engine configuration (virtualization, lookahead overrides...).
    pub config: EngineConfig,
}

impl MachineVariant {
    /// Wraps a real platform with the default engine configuration.
    pub fn real(platform: &'static Platform) -> Self {
        MachineVariant {
            name: platform.name.to_string(),
            platform: platform.clone(),
            config: EngineConfig::default(),
        }
    }
}

/// A once-latch other requests for the same pair park on while one
/// request runs the battery (the PR-4 registry pattern). `state` stays
/// `None` until the battery completes either way; `complete` publishes
/// exactly once and wakes every waiter. A failed battery publishes the
/// panic message so waiters re-raise it instead of hanging.
#[derive(Debug)]
struct BatteryLatch {
    state: SyncMutex<Option<Result<Arc<GridEntry>, String>>>,
    done: Condvar,
}

impl BatteryLatch {
    fn new() -> Self {
        BatteryLatch {
            state: SyncMutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Blocks until the battery completes and returns its outcome.
    /// Poisoning is recovered: the state is a plain `Option` a panicked
    /// measurer cannot half-write (it publishes via
    /// [`BatteryLatch::complete`] *after* its panic shield).
    fn wait(&self) -> Result<Arc<GridEntry>, String> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn complete(&self, result: &Result<Arc<GridEntry>, String>) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = Some(result.clone());
        self.done.notify_all();
    }
}

/// One pair's slot in the grid memo.
#[derive(Debug)]
enum Slot {
    /// A battery (or disk load) is in flight; park on the latch.
    Pending(Arc<BatteryLatch>),
    /// The measured entry, served lock-free forever after.
    Ready(Arc<GridEntry>),
}

/// How an [`Grid::entry_variant`] call was resolved against the memo.
enum Claim {
    Hit(Arc<GridEntry>),
    Wait(Arc<BatteryLatch>),
    Measure(Arc<BatteryLatch>),
}

/// Lazily evaluated, memoized (in memory and on disk) measurement grid.
///
/// Concurrent requests for one cold pair coalesce onto a single
/// battery via per-pair singleflight latches (the memo lock is held
/// only to claim or publish a slot, never across a measurement), and
/// each battery fans its layouts out over [`Grid::jobs`] worker
/// threads with a fixed reduction order, so the persisted TSV bytes
/// are identical for every worker count.
///
/// # Example
///
/// ```no_run
/// use harness::{Grid, SPEED_FAST};
/// use machine::Platform;
///
/// let grid = Grid::new(SPEED_FAST);
/// let entry = grid.entry("spec06/mcf", &Platform::SANDY_BRIDGE);
/// assert_eq!(entry.records.len(), 55); // 54-layout battery + all-1GB
/// ```
#[derive(Debug)]
pub struct Grid {
    speed: Speed,
    /// Battery worker threads per [`compute_entry`] fan-out.
    jobs: usize,
    // BTreeMap, not HashMap: the memo feeds the on-disk cache, and
    // nothing on a persistence path may depend on a per-process hasher.
    memo: Mutex<BTreeMap<(String, String), Slot>>,
    disk_dir: Option<PathBuf>,
    /// Batteries actually simulated (not memo hits or disk loads) —
    /// the singleflight tests pin this to exactly one per cold pair.
    computed: AtomicU64,
    /// Interval-sampling configuration; `None` measures full traces.
    sampled: Option<SampledConfig>,
    /// Sampled batteries whose anchor cross-validation exceeded the
    /// bound and fell back to full measurement.
    rejections: AtomicU64,
}

impl Grid {
    /// Creates a grid with the default on-disk cache
    /// (`target/mosaic-cache`, disable with `MOSAIC_NO_DISK_CACHE=1`)
    /// and the default worker count ([`parallel::resolve_jobs`]:
    /// `MOSAIC_JOBS`, else available parallelism).
    pub fn new(speed: Speed) -> Self {
        let disk = match std::env::var("MOSAIC_NO_DISK_CACHE") {
            Ok(v) if v == "1" => None,
            _ => Some(
                std::env::var("MOSAIC_CACHE_DIR")
                    .map(PathBuf::from)
                    .unwrap_or_else(|_| PathBuf::from("target/mosaic-cache")),
            ),
        };
        Grid {
            speed,
            jobs: parallel::resolve_jobs(None),
            memo: Mutex::new(BTreeMap::new()),
            disk_dir: disk,
            computed: AtomicU64::new(0),
            sampled: SampledConfig::from_env(),
            rejections: AtomicU64::new(0),
        }
    }

    /// Creates a grid without the on-disk cache (hermetic tests). The
    /// environment's `MOSAIC_SAMPLED` is deliberately ignored too —
    /// hermetic grids measure full traces unless [`Grid::with_sampled`]
    /// opts in explicitly.
    pub fn in_memory(speed: Speed) -> Self {
        Grid {
            speed,
            jobs: parallel::resolve_jobs(None),
            memo: Mutex::new(BTreeMap::new()),
            disk_dir: None,
            computed: AtomicU64::new(0),
            sampled: None,
            rejections: AtomicU64::new(0),
        }
    }

    /// Overrides the battery worker count (clamped to at least one).
    /// `jobs = 1` is the serial baseline the determinism pins compare
    /// parallel builds against.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The battery worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Enables validated interval sampling: batteries replay periodic
    /// trace windows and extrapolate, but only after the anchor
    /// cross-validation gate accepts the configuration for the pair —
    /// otherwise the grid falls back to a full battery and records the
    /// rejection (see [`Grid::sampled_rejections`]).
    #[must_use]
    pub fn with_sampled(mut self, cfg: SampledConfig) -> Self {
        self.sampled = Some(cfg);
        self
    }

    /// The active sampling configuration, if any.
    pub fn sampled(&self) -> Option<SampledConfig> {
        self.sampled
    }

    /// Sampled batteries this grid refused: the gate measured an anchor
    /// error above the bound and fell back to full measurement.
    pub fn sampled_rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// Batteries this grid has actually simulated — memo hits, coalesced
    /// waiters, and disk loads do not count.
    pub fn batteries_computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// The active speed preset.
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// Returns (computing if needed) the grid entry for a pair.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown.
    pub fn entry(&self, workload: &str, platform: &'static Platform) -> Arc<GridEntry> {
        self.entry_variant(workload, &MachineVariant::real(platform))
    }

    /// Returns the grid entry for a workload on an arbitrary
    /// [`MachineVariant`] — hypothetical designs and virtualized machines
    /// get the same 54-layout battery treatment as the paper platforms.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown.
    pub fn entry_variant(&self, workload: &str, variant: &MachineVariant) -> Arc<GridEntry> {
        let key = (workload.to_string(), variant.name.clone());
        // Claim under a single lock acquisition: the old check-then-compute
        // sequence dropped the lock between the miss and the insert, so two
        // threads could both see a miss and both run the battery.
        let claim = {
            let mut memo = self.memo.lock();
            match memo.get(&key) {
                Some(Slot::Ready(entry)) => Claim::Hit(Arc::clone(entry)),
                Some(Slot::Pending(latch)) => Claim::Wait(Arc::clone(latch)),
                None => {
                    let latch = Arc::new(BatteryLatch::new());
                    memo.insert(key.clone(), Slot::Pending(Arc::clone(&latch)));
                    Claim::Measure(latch)
                }
            }
        };
        match claim {
            Claim::Hit(entry) => entry,
            Claim::Wait(latch) => match latch.wait() {
                Ok(entry) => entry,
                Err(msg) => panic!(
                    "battery for ({workload}, {variant}) failed in a concurrent \
                     request: {msg}",
                    variant = variant.name
                ),
            },
            Claim::Measure(latch) => self.measure_and_publish(&key, workload, variant, &latch),
        }
    }

    /// Runs the disk-or-battery slow path for a pair this thread claimed,
    /// publishes the outcome to the memo and the latch, and re-raises any
    /// battery panic after waking the waiters (so they don't hang on a
    /// latch nobody will ever complete).
    fn measure_and_publish(
        &self,
        key: &(String, String),
        workload: &str,
        variant: &MachineVariant,
        latch: &Arc<BatteryLatch>,
    ) -> Arc<GridEntry> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(entry) = self.load_disk(workload, &variant.name) {
                return Arc::new(entry);
            }
            self.computed.fetch_add(1, Ordering::Relaxed);
            let entry = match self.sampled {
                Some(cfg) => {
                    let entry =
                        compute_entry_sampled(self.speed, self.jobs, workload, variant, cfg);
                    if entry.gate.as_ref().is_some_and(|g| !g.accepted) {
                        self.rejections.fetch_add(1, Ordering::Relaxed);
                    }
                    entry
                }
                None => compute_entry(self.speed, self.jobs, workload, variant),
            };
            let entry = Arc::new(entry);
            self.store_disk(&entry);
            entry
        }));
        match outcome {
            Ok(entry) => {
                self.memo
                    .lock()
                    .insert(key.clone(), Slot::Ready(Arc::clone(&entry)));
                latch.complete(&Ok(Arc::clone(&entry)));
                entry
            }
            Err(payload) => {
                // Remove the slot so a later request can retry the pair.
                self.memo.lock().remove(key);
                latch.complete(&Err(panic_message(payload.as_ref())));
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// Convenience: the 54-sample model-fitting dataset for a pair.
    pub fn dataset(&self, workload: &str, platform: &'static Platform) -> Dataset {
        self.entry(workload, platform).dataset()
    }

    /// The workloads that are TLB-sensitive on `platform` (the paper
    /// excludes insensitive pairs, e.g. gapbs/bfs-road on Broadwell).
    pub fn tlb_sensitive_workloads(&self, platform: &'static Platform) -> Vec<String> {
        workloads::registry()
            .into_iter()
            .map(|w| w.name.to_string())
            .filter(|name| self.entry(name, platform).is_tlb_sensitive())
            .collect()
    }

    fn cache_path(&self, workload: &str, platform: &str) -> Option<PathBuf> {
        let dir = self.disk_dir.as_ref()?;
        // Percent-encode each component (the registry-store codec): the
        // old `replace(['/', ' '], "_")` mapped distinct workloads like
        // "a/b", "a b", and "a_b" onto one cache file, silently serving
        // one pair's counters for another. A sampled grid's files carry
        // the full (window, period, bound) configuration as a suffix so
        // they can never collide with full-battery files or with a
        // differently-configured sampled grid's.
        let mode_tag = match self.sampled {
            None => String::new(),
            Some(cfg) => format!(
                "_s{}-{}-{}",
                cfg.window,
                cfg.period,
                encode_component(&fmt_f64_shortest(cfg.bound)),
            ),
        };
        Some(dir.join(format!(
            "{}_{}_{}{}.tsv",
            encode_component(self.speed.name),
            encode_component(workload),
            encode_component(platform),
            mode_tag,
        )))
    }

    fn load_disk(&self, workload: &str, variant: &str) -> Option<GridEntry> {
        let path = self.cache_path(workload, variant)?;
        let text = fs::read_to_string(path).ok()?;
        let entry = parse_entry(workload, variant, &text)?;
        // Belt and suspenders on top of the path suffix: a cached entry
        // is served only if its persisted mode/gate metadata matches
        // this grid's configuration exactly (bound compared by bits).
        self.entry_matches_mode(&entry).then_some(entry)
    }

    /// Does a cached entry belong to this grid's battery mode? A full
    /// grid serves only full, ungated entries. A sampled grid serves
    /// entries stamped with its exact configuration: an accepted sampled
    /// battery, or the recorded full fallback of a rejected gate.
    fn entry_matches_mode(&self, entry: &GridEntry) -> bool {
        match self.sampled {
            None => entry.mode == BatteryMode::Full && entry.gate.is_none(),
            Some(cfg) => match (entry.mode, &entry.gate) {
                (BatteryMode::Sampled { window, period }, Some(g)) => {
                    g.accepted
                        && window == cfg.window
                        && period == cfg.period
                        && g.bound.to_bits() == cfg.bound.to_bits()
                }
                (BatteryMode::Full, Some(g)) => {
                    !g.accepted
                        && g.window == cfg.window
                        && g.period == cfg.period
                        && g.bound.to_bits() == cfg.bound.to_bits()
                }
                _ => false,
            },
        }
    }

    fn store_disk(&self, entry: &GridEntry) {
        let Some(path) = self.cache_path(&entry.workload, &entry.platform) else {
            return;
        };
        if let Some(parent) = path.parent() {
            if let Err(e) = fs::create_dir_all(parent) {
                eprintln!("mosaic: cannot create cache dir {}: {e}", parent.display());
                return;
            }
        }
        // Write-then-rename: a concurrent reader either sees the old
        // complete file or the new complete file, never a torn prefix.
        // The pid suffix keeps two processes from clobbering each
        // other's temporaries; rename itself is atomic on POSIX.
        let tmp = path.with_extension(format!("tsv.tmp.{}", std::process::id()));
        // A failed write only costs re-measurement next run, but silence
        // would hide a misconfigured MOSAIC_CACHE_DIR forever.
        if let Err(e) = fs::write(&tmp, render_entry(entry)) {
            eprintln!(
                "mosaic: cache write to {} failed (ignored): {e}",
                tmp.display()
            );
            let _ = fs::remove_file(&tmp);
            return;
        }
        if let Err(e) = fs::rename(&tmp, &path) {
            eprintln!(
                "mosaic: cache publish to {} failed (ignored): {e}",
                path.display()
            );
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// Renders a panic payload for latch waiters (mirrors the registry's
/// helper): panics carry `&str` or `String` messages in practice.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "battery panicked".to_string()
    }
}

/// Cache format version; bump whenever the TSV schema changes so stale
/// files are re-measured instead of mis-parsed.
///
/// History: v2 squashed description tabs/newlines to spaces (lossy) and
/// had no end-of-document marker; v3 escapes the description instead and
/// appends a `# records N` footer so a file truncated at a line boundary
/// is detected rather than parsed as a shorter battery; v4 adds `# mode`
/// and `# gate` header lines so interval-sampled entries carry their
/// provenance (and can never be mistaken for full measurements).
const CACHE_VERSION: u32 = 4;

/// Still-loadable previous version. Every v3 file is by construction a
/// full, ungated battery, so upgrading it to the v4 model is lossless —
/// rejecting the whole fleet's caches on upgrade would force a
/// re-measurement stampede for entries whose bytes are still exact.
const LEGACY_CACHE_VERSION: u32 = 3;

/// Escapes a description for its single TSV column: backslash, tab,
/// newline, and carriage return become two-character escapes, so the
/// column never spills into the field or line structure and
/// [`unescape_field`] restores the original bytes exactly.
fn escape_field(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape_field`]; `None` on a dangling backslash or an
/// unknown escape (corrupt or hand-edited cache file).
fn unescape_field(encoded: &str) -> Option<String> {
    let mut out = String::with_capacity(encoded.len());
    let mut chars = encoded.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Serializes an entry as a TSV document (stable, human-inspectable).
/// The first line is a version header and the last a record-count
/// footer; [`parse_entry`] rejects files written by any other version
/// and files whose body does not match the footer (truncated writes).
fn render_entry(entry: &GridEntry) -> String {
    let mut out = format!("# mosaic-cache v{CACHE_VERSION}\n");
    match entry.mode {
        BatteryMode::Full => out.push_str("# mode full\n"),
        BatteryMode::Sampled { window, period } => {
            out.push_str(&format!("# mode sampled {window} {period}\n"));
        }
    }
    match &entry.gate {
        None => out.push_str("# gate none\n"),
        Some(g) => out.push_str(&format!(
            "# gate {} {} {} {} {} {}\n",
            if g.accepted { "accepted" } else { "rejected" },
            g.window,
            g.period,
            // Shortest-roundtrip floats: the reloaded gate compares
            // bit-equal to the one that was evaluated.
            fmt_f64_shortest(g.bound),
            fmt_f64_shortest(g.max_rel_err),
            g.anchors,
        )),
    }
    out.push_str("kind\tR\tH\tM\tC\tinst\tpl1d\tpl2\tpl3\twl1d\twl2\twl3\tcvR\tdescription\n");
    for r in &entry.records {
        let c = &r.counters;
        out.push_str(&format!(
            "{:?}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.kind,
            c.runtime_cycles,
            c.stlb_hits,
            c.stlb_misses,
            c.walk_cycles,
            c.instructions,
            c.program_l1d_loads,
            c.program_l2_loads,
            c.program_l3_loads,
            c.walker_l1d_loads,
            c.walker_l2_loads,
            c.walker_l3_loads,
            // Shortest-roundtrip codec: human-readable, yet the parsed
            // value reproduces the measured cv bit-for-bit.
            fmt_f64_shortest(r.cv_r),
            escape_field(&r.description),
        ));
    }
    out.push_str(&format!("# records {}\n", entry.records.len()));
    out
}

fn parse_entry(workload: &str, platform: &str, text: &str) -> Option<GridEntry> {
    let mut lines: Vec<&str> = text.lines().collect();
    // The footer must be the document's last line; a file cut anywhere
    // before it — even exactly at a record boundary — has no footer (or
    // a record line in its place) and is rejected as truncated.
    let expected_records = lines
        .pop()?
        .strip_prefix("# records ")?
        .parse::<usize>()
        .ok()?;
    let mut lines = lines.into_iter();
    let header = lines.next()?;
    let version = header
        .strip_prefix("# mosaic-cache v")?
        .trim()
        .parse::<u32>()
        .ok()?;
    let (mode, gate) = match version {
        CACHE_VERSION => {
            let mode = parse_mode_line(lines.next()?)?;
            let gate = parse_gate_line(lines.next()?)?;
            (mode, gate)
        }
        // v3 predates sampling: every legacy file is a full, ungated
        // battery, so the upgrade is lossless.
        LEGACY_CACHE_VERSION => (BatteryMode::Full, None),
        _ => return None,
    };
    // A sampled entry must carry the accepting gate evidence for its own
    // configuration; anything else would let an unvalidated (or
    // differently-validated) sampled grid masquerade as trustworthy.
    match (mode, &gate) {
        (BatteryMode::Sampled { window, period }, Some(g))
            if g.accepted && g.window == window && g.period == period => {}
        (BatteryMode::Sampled { .. }, _) => return None,
        (BatteryMode::Full, _) => {}
    }
    let _column_header = lines.next()?;
    let mut records = Vec::new();
    for line in lines {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 14 {
            return None;
        }
        let kind = match cols[0] {
            "All4K" => LayoutKind::All4K,
            "All2M" => LayoutKind::All2M,
            "All1G" => LayoutKind::All1G,
            "Mixed" => LayoutKind::Mixed,
            _ => return None,
        };
        let num = |i: usize| cols[i].parse::<u64>().ok();
        records.push(RunRecord {
            kind,
            counters: PmuCounters {
                runtime_cycles: num(1)?,
                stlb_hits: num(2)?,
                stlb_misses: num(3)?,
                walk_cycles: num(4)?,
                instructions: num(5)?,
                program_l1d_loads: num(6)?,
                program_l2_loads: num(7)?,
                program_l3_loads: num(8)?,
                walker_l1d_loads: num(9)?,
                walker_l2_loads: num(10)?,
                walker_l3_loads: num(11)?,
            },
            cv_r: parse_f64_shortest(cols[12])?,
            description: unescape_field(cols[13])?,
        });
    }
    if records.is_empty() || records.len() != expected_records {
        return None;
    }
    Some(GridEntry {
        workload: workload.to_string(),
        platform: platform.to_string(),
        records,
        mode,
        gate,
    })
}

/// Parses a v4 `# mode ...` header line.
fn parse_mode_line(line: &str) -> Option<BatteryMode> {
    let rest = line.strip_prefix("# mode ")?;
    if rest == "full" {
        return Some(BatteryMode::Full);
    }
    let mut parts = rest.split(' ');
    if parts.next()? != "sampled" {
        return None;
    }
    let window = parts.next()?.parse().ok()?;
    let period = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(BatteryMode::Sampled { window, period })
}

/// Parses a v4 `# gate ...` header line (`none`, or a full verdict).
fn parse_gate_line(line: &str) -> Option<Option<GateReport>> {
    let rest = line.strip_prefix("# gate ")?;
    if rest == "none" {
        return Some(None);
    }
    let mut parts = rest.split(' ');
    let accepted = match parts.next()? {
        "accepted" => true,
        "rejected" => false,
        _ => return None,
    };
    let window = parts.next()?.parse().ok()?;
    let period = parts.next()?.parse().ok()?;
    let bound = parse_f64_shortest(parts.next()?)?;
    let max_rel_err = parse_f64_shortest(parts.next()?)?;
    let anchors = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(Some(GateReport {
        window,
        period,
        bound,
        max_rel_err,
        anchors,
        accepted,
    }))
}

/// Classifies a layout into its anchor kind.
fn classify(layout: &MemoryLayout) -> LayoutKind {
    if layout.windows().is_empty() {
        return LayoutKind::All4K;
    }
    if layout.bytes_backed_by(PageSize::Base4K) == 0 {
        let all_2m = layout.windows().iter().all(|w| w.size == PageSize::Huge2M);
        let all_1g = layout.windows().iter().all(|w| w.size == PageSize::Huge1G);
        if all_2m {
            return LayoutKind::All2M;
        }
        if all_1g {
            return LayoutKind::All1G;
        }
    }
    LayoutKind::Mixed
}

/// Builds the Mosalloc configuration whose heap pool realizes `layout`.
fn config_for_layout(pool: Region, layout: &MemoryLayout) -> MosallocConfig {
    let mut brk = PoolSpec::plain(pool.len());
    for w in layout.windows() {
        let start = w.region.start().raw().saturating_sub(pool.start().raw());
        let end = w.region.end() - pool.start();
        brk = brk.with_window(start, end, w.size);
    }
    MosallocConfig {
        brk,
        anon: PoolSpec::plain(64 << 20),
        file: PoolSpec::plain(64 << 20),
    }
}

/// The fixed measurement geometry for one `(speed, workload)` pair: the
/// heap pool region and the trace parameters every layout of that pair is
/// measured against. Splitting this out of the battery loop lets callers
/// (e.g. the prediction service) measure *single* layouts on demand with
/// exactly the grid's methodology.
#[derive(Clone, Debug)]
pub struct MeasureContext {
    spec: WorkloadSpec,
    speed: Speed,
    pool: Region,
    params: TraceParams,
}

impl MeasureContext {
    /// Builds the context for a named workload, or `None` if the name is
    /// unknown.
    pub fn new(speed: Speed, workload: &str) -> Option<Self> {
        let spec = WorkloadSpec::by_name(workload)?;
        let footprint = speed.footprint(spec.nominal_footprint);
        let accesses = speed.trace_len(spec.access_factor);
        let seed = fnv(workload.as_bytes());

        // Claim the arena from a plain Mosalloc to fix the pool geometry.
        let probe_alloc = Mosalloc::new(MosallocConfig {
            brk: PoolSpec::plain(footprint),
            anon: PoolSpec::plain(64 << 20),
            file: PoolSpec::plain(64 << 20),
        })
        .expect("plain config is valid");
        let pool = probe_alloc.heap().region();
        let params = TraceParams::new(pool, accesses, seed);
        Some(MeasureContext {
            spec,
            speed,
            pool,
            params,
        })
    }

    /// The heap pool region layouts are built against.
    pub fn pool(&self) -> Region {
        self.pool
    }

    /// The workload name.
    pub fn workload(&self) -> &str {
        self.spec.name
    }
}

/// Measures one layout on one machine variant with the grid's §VI-A
/// methodology: repeat (varying physical placement via the engine salt)
/// until the runtime variation falls below 5% or the speed preset's
/// repetition budget runs out.
///
/// # Panics
///
/// Panics if `layout` does not describe a valid pool configuration for
/// the context's pool region.
pub fn measure_layout(
    ctx: &MeasureContext,
    variant: &MachineVariant,
    layout: &MemoryLayout,
) -> RunRecord {
    measure_layout_traced(ctx, variant, layout, None)
}

/// Sim-domain stage names emitted by [`measure_layout_traced`], in emission
/// order per repetition. Span timestamps are *simulated cycles* (the engine's
/// retirement clock), never wall time, so identical runs produce
/// byte-identical traces.
pub const SIM_STAGES: [&str; 3] = ["replay", "page_walk", "finalize"];

/// [`measure_layout`] with optional sim-domain span recording.
///
/// When a recorder is supplied, each repetition contributes three spans on a
/// cumulative simulated-cycle axis (repetition `k` starts where repetition
/// `k-1` retired its last instruction):
///
/// * `replay` — the full trace replay, `[base, base + runtime_cycles]`;
/// * `page_walk` — the page-walk share of that window,
///   `[base, base + walk_cycles]` (walks overlap replay by definition);
/// * `finalize` — a zero-width marker at the repetition's retirement point,
///   where counters are read out and the CV stopping rule is evaluated.
///
/// All timestamps derive from deterministic PMU counters, so the rendered
/// trace bytes are a pure function of (workload, platform, layout, speed).
pub fn measure_layout_traced(
    ctx: &MeasureContext,
    variant: &MachineVariant,
    layout: &MemoryLayout,
    mut recorder: Option<&mut obs::SpanRecorder>,
) -> RunRecord {
    let mosalloc = Mosalloc::new(config_for_layout(ctx.pool, layout))
        .expect("layout must be a valid pool spec");
    let mut runs: Vec<PmuCounters> = Vec::new();
    let mut base: u64 = 0;
    for rep in 0..ctx.speed.max_reps.max(1) {
        let config = EngineConfig {
            salt: variant.config.salt ^ (u64::from(rep) << 56),
            ..variant.config
        };
        let mut engine = Engine::with_config(&variant.platform, config);
        let counters = engine.run(ctx.spec.trace(&ctx.params), |va| mosalloc.page_size_at(va));
        if let Some(rec) = recorder.as_deref_mut() {
            let end = base.saturating_add(counters.runtime_cycles);
            rec.record("replay", base, end);
            rec.record("page_walk", base, base.saturating_add(counters.walk_cycles));
            rec.record("finalize", end, end);
            base = end;
        }
        runs.push(counters);
        if runs.len() >= 2 && runtime_cv(&runs) < 0.05 {
            break;
        }
    }
    RunRecord {
        description: layout.describe(),
        kind: classify(layout),
        counters: mean_counters(&runs),
        cv_r: runtime_cv(&runs),
    }
}

/// [`measure_layout`] over periodic trace windows: replays only
/// `window` of every `period` accesses (`workloads::sampling::windows`)
/// and extrapolates each PMU counter to full-trace scale with a
/// **cold-split**: the first half of the kept accesses is the warmup
/// segment, charged verbatim, and only the steady-state suffix rate is
/// scaled to cover the unreplayed remainder. Pure linear scaling
/// multiplies the run's one-time costs — the compulsory TLB and
/// cache-line fills every run pays exactly once regardless of trace
/// length — by `total / kept`, inflating the estimate by
/// `(scale - 1) x` that transient. Splitting makes both regimes exact
/// by construction: absolute costs land in the warmup prefix and are
/// *not* scaled, while per-access rates are measured on the warmed
/// suffix and scaled by the exact rational
/// `(total - warmup) / (kept - warmup)` via integer math
/// ([`sampling::extrapolate`]) — no f64 accumulation, so sampled
/// records are byte-identical across runs and job counts just like
/// full ones. The repetition loop (placement-salted reruns until the
/// runtime CV falls below 5%) is the grid's standard §VI-A
/// methodology, evaluated on the extrapolated runtimes.
///
/// # Panics
///
/// Panics if `layout` is not a valid pool configuration for the
/// context's pool region, or on an invalid `window`/`period`
/// (`window == 0` or `window > period`).
pub fn measure_layout_sampled(
    ctx: &MeasureContext,
    variant: &MachineVariant,
    layout: &MemoryLayout,
    window: u64,
    period: u64,
) -> RunRecord {
    let mosalloc = Mosalloc::new(config_for_layout(ctx.pool, layout))
        .expect("layout must be a valid pool spec");
    let total = ctx.params.accesses;
    let kept = sampling::kept_count(total, window, period);
    let warmup = kept / 2;
    let mut runs: Vec<PmuCounters> = Vec::new();
    for rep in 0..ctx.speed.max_reps.max(1) {
        let config = EngineConfig {
            salt: variant.config.salt ^ (u64::from(rep) << 56),
            ..variant.config
        };
        let mut engine = Engine::with_config(&variant.platform, config);
        let page_size = |va| mosalloc.page_size_at(va);
        let mut at_warmup = PmuCounters::default();
        let mut seen: u64 = 0;
        let windowed = sampling::windows(
            ctx.spec.trace(&ctx.params),
            window as usize,
            period as usize,
        );
        for access in windowed {
            engine.step(&access, &page_size);
            seen = seen.saturating_add(1);
            if seen == warmup {
                at_warmup = engine.counters();
            }
        }
        runs.push(extrapolate_counters(
            &at_warmup,
            &engine.counters(),
            warmup,
            kept,
            total,
        ));
        if runs.len() >= 2 && runtime_cv(&runs) < 0.05 {
            break;
        }
    }
    RunRecord {
        description: layout.describe(),
        kind: classify(layout),
        counters: mean_counters(&runs),
        cv_r: runtime_cv(&runs),
    }
}

/// Field-wise cold-split extrapolation of a sampled readout to
/// full-trace scale: the warmup prefix (`warm`, the readout after the
/// first `warmup` kept accesses) is charged as-is, and the steady
/// suffix `end - warm` is scaled by the exact rational
/// `(total - warmup) / (kept - warmup)`. With `kept == total` this is
/// the identity; with `warmup == 0` it degenerates to pure linear
/// scaling.
fn extrapolate_counters(
    warm: &PmuCounters,
    end: &PmuCounters,
    warmup: u64,
    kept: u64,
    total: u64,
) -> PmuCounters {
    let scale = |w: u64, e: u64| {
        let steady = sampling::extrapolate(
            e.saturating_sub(w),
            kept.saturating_sub(warmup),
            total.saturating_sub(warmup),
        );
        w.saturating_add(steady)
    };
    PmuCounters {
        runtime_cycles: scale(warm.runtime_cycles, end.runtime_cycles),
        stlb_hits: scale(warm.stlb_hits, end.stlb_hits),
        stlb_misses: scale(warm.stlb_misses, end.stlb_misses),
        walk_cycles: scale(warm.walk_cycles, end.walk_cycles),
        instructions: scale(warm.instructions, end.instructions),
        program_l1d_loads: scale(warm.program_l1d_loads, end.program_l1d_loads),
        program_l2_loads: scale(warm.program_l2_loads, end.program_l2_loads),
        program_l3_loads: scale(warm.program_l3_loads, end.program_l3_loads),
        walker_l1d_loads: scale(warm.walker_l1d_loads, end.walker_l1d_loads),
        walker_l2_loads: scale(warm.walker_l2_loads, end.walker_l2_loads),
        walker_l3_loads: scale(warm.walker_l3_loads, end.walker_l3_loads),
    }
}

/// Runs the whole battery for one (workload, machine-variant) pair,
/// fanning the layouts out over at most `jobs` worker threads. The
/// result is a pure function of `(speed, workload, variant)` — never of
/// `jobs` — because each layout is measured by an independent engine
/// with a layout-indexed salt schedule and the records are reduced in
/// battery order (see [`parallel::parallel_map`]).
fn compute_entry(speed: Speed, jobs: usize, workload: &str, variant: &MachineVariant) -> GridEntry {
    let ctx = MeasureContext::new(speed, workload)
        .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    let layouts = battery_layouts(&ctx, variant);

    // Measure every layout; independent runs execute in parallel, and
    // the fixed reduction order keeps the records in battery order no
    // matter how many workers ran or how they were scheduled.
    let records: Vec<RunRecord> = parallel::parallel_map(&layouts, jobs, |_, layout| {
        measure_layout(&ctx, variant, layout)
    })
    .unwrap_or_else(|| panic!("battery worker exited without completing its layout"));
    GridEntry {
        workload: workload.to_string(),
        platform: variant.name.clone(),
        records,
        mode: BatteryMode::Full,
        gate: None,
    }
}

/// The battery's layout list for one pair: the 54-layout standard
/// battery (seeded by a full-trace PEBS-like profiling pass) plus the
/// all-1GB hold-out. Shared verbatim by the full and sampled paths —
/// identical layout lists are what make a sampled grid comparable,
/// record for record, with the full grid it stands in for. The
/// profiling pass always sees the *full* trace even in sampled mode:
/// it is one cheap pass, and hot-region selection from a thinned trace
/// would silently change which layouts get measured.
fn battery_layouts(ctx: &MeasureContext, variant: &MachineVariant) -> Vec<MemoryLayout> {
    let profile = profile_tlb_misses(
        &variant.platform,
        ctx.spec.trace(&ctx.params),
        ctx.pool,
        2 << 20,
    );
    let mut layouts: Vec<MemoryLayout> =
        layouts::standard_battery(ctx.pool, |x| profile.hot_region(x))
            .into_iter()
            .map(|p| p.layout)
            .collect();
    layouts.push(MemoryLayout::uniform(ctx.pool, PageSize::Huge1G));
    layouts
}

/// Sampled battery with the cross-validation gate (ROADMAP item (b),
/// paper §II-C): measure the anchor layouts both full and sampled,
/// admit the sampled battery only if every anchor's every counter is
/// within `cfg.bound` relative error, and otherwise fall back to the
/// full battery with the rejection recorded in the entry's gate. Like
/// [`compute_entry`], the result is a pure function of
/// `(speed, workload, variant, cfg)` — never of `jobs`.
fn compute_entry_sampled(
    speed: Speed,
    jobs: usize,
    workload: &str,
    variant: &MachineVariant,
    cfg: SampledConfig,
) -> GridEntry {
    let ctx = MeasureContext::new(speed, workload)
        .unwrap_or_else(|| panic!("unknown workload {workload:?}"));
    let layouts = battery_layouts(&ctx, variant);

    // The gate's anchors: the first all-4KB, first all-2MB, and the
    // all-1GB layout — the battery's extreme points, where a sampling
    // scheme that misrepresents TLB behavior has nowhere to hide.
    let anchors: Vec<MemoryLayout> = [LayoutKind::All4K, LayoutKind::All2M, LayoutKind::All1G]
        .iter()
        .filter_map(|kind| layouts.iter().find(|l| classify(l) == *kind))
        .cloned()
        .collect();
    let pairs: Vec<(PmuCounters, PmuCounters)> =
        parallel::parallel_map(&anchors, jobs, |_, layout| {
            let full = measure_layout(&ctx, variant, layout);
            let sampled = measure_layout_sampled(&ctx, variant, layout, cfg.window, cfg.period);
            (full.counters, sampled.counters)
        })
        .unwrap_or_else(|| panic!("gate worker exited without completing its anchor"));
    let gate = sampled::evaluate_gate(&pairs, cfg);

    let records: Vec<RunRecord> = if gate.accepted {
        parallel::parallel_map(&layouts, jobs, |_, layout| {
            measure_layout_sampled(&ctx, variant, layout, cfg.window, cfg.period)
        })
        .unwrap_or_else(|| panic!("sampled battery worker exited without completing its layout"))
    } else {
        parallel::parallel_map(&layouts, jobs, |_, layout| {
            measure_layout(&ctx, variant, layout)
        })
        .unwrap_or_else(|| panic!("battery worker exited without completing its layout"))
    };
    GridEntry {
        workload: workload.to_string(),
        platform: variant.name.clone(),
        records,
        mode: if gate.accepted {
            cfg.mode()
        } else {
            BatteryMode::Full
        },
        gate: Some(gate),
    }
}

/// Coefficient of variation (stddev/mean) of the runtimes of `runs`;
/// zero for fewer than two runs.
fn runtime_cv(runs: &[PmuCounters]) -> f64 {
    if runs.len() < 2 {
        return 0.0;
    }
    let rs: Vec<f64> = runs.iter().map(|c| c.runtime_cycles as f64).collect();
    let mean = rs.iter().sum::<f64>() / rs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = rs.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rs.len() as f64;
    var.sqrt() / mean
}

/// Field-wise arithmetic mean of several PMU readouts.
fn mean_counters(runs: &[PmuCounters]) -> PmuCounters {
    assert!(!runs.is_empty(), "at least one run");
    let n = runs.len() as u64;
    let avg = |f: fn(&PmuCounters) -> u64| runs.iter().map(f).sum::<u64>() / n;
    PmuCounters {
        runtime_cycles: avg(|c| c.runtime_cycles),
        stlb_hits: avg(|c| c.stlb_hits),
        stlb_misses: avg(|c| c.stlb_misses),
        walk_cycles: avg(|c| c.walk_cycles),
        instructions: avg(|c| c.instructions),
        program_l1d_loads: avg(|c| c.program_l1d_loads),
        program_l2_loads: avg(|c| c.program_l2_loads),
        program_l3_loads: avg(|c| c.program_l3_loads),
        walker_l1d_loads: avg(|c| c.walker_l1d_loads),
        walker_l2_loads: avg(|c| c.walker_l2_loads),
        walker_l3_loads: avg(|c| c.walker_l3_loads),
    }
}

/// FNV-1a, for stable workload seeds.
fn fnv(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_speed() -> Speed {
        Speed {
            name: "tiny",
            footprint_div: 1024,
            min_footprint: 48 << 20,
            accesses: 12_000,
            max_reps: 1,
        }
    }

    #[test]
    fn entry_has_55_records_with_anchors() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert_eq!(entry.records.len(), 55);
        assert!(entry.record(LayoutKind::All4K).is_some());
        assert!(entry.record(LayoutKind::All2M).is_some());
        assert!(entry.record(LayoutKind::All1G).is_some());
        // The model dataset excludes the 1GB run.
        assert_eq!(entry.dataset().len(), 54);
        assert_eq!(entry.full_dataset().len(), 55);
    }

    #[test]
    fn gups_is_tlb_sensitive_and_anchors_are_ordered() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert!(entry.is_tlb_sensitive());
        let r4k = entry
            .record(LayoutKind::All4K)
            .unwrap()
            .counters
            .runtime_cycles;
        let r2m = entry
            .record(LayoutKind::All2M)
            .unwrap()
            .counters
            .runtime_cycles;
        let r1g = entry
            .record(LayoutKind::All1G)
            .unwrap()
            .counters
            .runtime_cycles;
        assert!(r4k > r2m, "2MB must beat 4KB for gups: {r4k} vs {r2m}");
        assert!(r2m >= r1g, "1GB at least as good as 2MB: {r2m} vs {r1g}");
    }

    #[test]
    fn memoization_returns_same_arc() {
        let grid = Grid::in_memory(tiny_speed());
        let a = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let b = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn battery_spreads_walk_cycles() {
        let grid = Grid::in_memory(tiny_speed());
        let ds = grid.dataset("gups/8GB", &Platform::SANDY_BRIDGE);
        let c4k = ds.anchor_4k().unwrap().c;
        let c2m = ds.anchor_2m().unwrap().c;
        assert!(c4k > c2m);
        // At least a dozen distinct intermediate C values.
        let mut cs: Vec<u64> = ds.iter().map(|s| s.c as u64).collect();
        cs.sort_unstable();
        cs.dedup();
        assert!(cs.len() >= 12, "only {} distinct C values", cs.len());
    }

    #[test]
    fn tsv_roundtrip() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let text = render_entry(&entry);
        let parsed = parse_entry("gups/8GB", "SandyBridge", &text).unwrap();
        assert_eq!(*entry, parsed);
    }

    #[test]
    fn independent_measurements_render_byte_identical_tsv() {
        // Two grids, each measuring from scratch (multi-threaded battery
        // and all): the rendered cache files must agree byte-for-byte,
        // or the on-disk cache would smear nondeterminism across runs.
        let a = Grid::in_memory(tiny_speed()).entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let b = Grid::in_memory(tiny_speed()).entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert_eq!(
            render_entry(&a),
            render_entry(&b),
            "successive measurements of the same pair rendered different TSV"
        );
    }

    #[test]
    fn repetitions_satisfy_the_5_percent_variation_bound() {
        // §VI-A: each layout is rerun until runtime variation < 5%. The
        // simulator's only noise source is physical placement, which is
        // far quieter than real machines — the bound must hold easily.
        let speed = Speed {
            max_reps: 3,
            ..tiny_speed()
        };
        let grid = Grid::in_memory(speed);
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        assert!(
            entry.max_cv() < 0.05,
            "runtime variation {} exceeds the paper's bound",
            entry.max_cv()
        );
        assert!(
            entry.max_cv() > 0.0,
            "repetitions actually vary the placement"
        );
        // TSV round-trip preserves the variation column.
        let text = render_entry(&entry);
        let parsed = parse_entry("gups/8GB", "SandyBridge", &text).unwrap();
        assert_eq!(*entry, parsed);
    }

    #[test]
    fn classify_kinds() {
        let pool = Region::new(vmcore::VirtAddr::new(0x1000_0000_0000), 64 << 20);
        assert_eq!(classify(&MemoryLayout::all_4k(pool)), LayoutKind::All4K);
        assert_eq!(
            classify(&MemoryLayout::uniform(pool, PageSize::Huge2M)),
            LayoutKind::All2M
        );
        assert_eq!(
            classify(&MemoryLayout::uniform(pool, PageSize::Huge1G)),
            LayoutKind::All1G
        );
        let mixed = MemoryLayout::builder(pool)
            .window(
                Region::new(vmcore::VirtAddr::new(0x1000_0000_0000), 2 << 20),
                PageSize::Huge2M,
            )
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(classify(&mixed), LayoutKind::Mixed);
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv(b"gups/8GB"), fnv(b"gups/16GB"));
        assert_eq!(fnv(b"x"), fnv(b"x"));
    }

    #[test]
    fn stale_cache_versions_are_rejected() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let text = render_entry(&entry);
        assert!(
            text.starts_with("# mosaic-cache v4\n# mode full\n# gate none\n"),
            "{}",
            &text[..60]
        );

        // A v1-era file (no header at all) and a future version must both
        // be treated as cache misses, not mis-parsed.
        let headerless = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(parse_entry("gups/8GB", "SandyBridge", &headerless).is_none());
        let future = text.replacen("v4", "v5", 1);
        assert!(parse_entry("gups/8GB", "SandyBridge", &future).is_none());
    }

    #[test]
    fn legacy_v3_documents_still_load_as_full_ungated() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        // A v3 file is the v4 document minus the mode/gate lines with the
        // old version stamp — exactly what PR-9-era grids wrote.
        let v3: String = render_entry(&entry)
            .replacen("v4", "v3", 1)
            .lines()
            .filter(|l| !l.starts_with("# mode ") && !l.starts_with("# gate "))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = parse_entry("gups/8GB", "SandyBridge", &v3).unwrap();
        assert_eq!(parsed.mode, BatteryMode::Full);
        assert_eq!(parsed.gate, None);
        assert_eq!(parsed.records, entry.records);

        // ... but a v4 document without its mode/gate lines is corrupt.
        let gutted: String = render_entry(&entry)
            .lines()
            .filter(|l| !l.starts_with("# mode ") && !l.starts_with("# gate "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(parse_entry("gups/8GB", "SandyBridge", &gutted).is_none());
    }

    #[test]
    fn sampled_mode_requires_its_accepting_gate() {
        let gate = GateReport {
            window: 100,
            period: 1000,
            bound: 0.05,
            max_rel_err: 0.01,
            anchors: 3,
            accepted: true,
        };
        let entry = GridEntry {
            workload: "w".to_string(),
            platform: "P".to_string(),
            records: vec![RunRecord {
                description: "d".to_string(),
                kind: LayoutKind::All4K,
                counters: PmuCounters::default(),
                cv_r: 0.0,
            }],
            mode: BatteryMode::Sampled {
                window: 100,
                period: 1000,
            },
            gate: Some(gate),
        };
        let text = render_entry(&entry);
        assert!(text.contains("# mode sampled 100 1000\n"));
        assert!(text.contains("# gate accepted 100 1000 0.05 0.01 3\n"));
        assert_eq!(parse_entry("w", "P", &text).as_ref(), Some(&entry));

        // Sampled mode with no gate, a rejected gate, or a gate for a
        // different configuration must not parse — an unvalidated
        // sampled entry is worse than a missing one.
        for bad in [
            text.replace("# gate accepted 100 1000 0.05 0.01 3", "# gate none"),
            text.replace("# gate accepted", "# gate rejected"),
            text.replace("# gate accepted 100 1000", "# gate accepted 100 2000"),
        ] {
            assert!(parse_entry("w", "P", &bad).is_none(), "parsed: {bad:?}");
        }
    }

    #[test]
    fn truncated_cache_documents_are_rejected() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let text = render_entry(&entry);
        assert!(parse_entry("gups/8GB", "SandyBridge", &text).is_some());

        // Torn mid-line: the last record line has the wrong column count.
        let mid_line = &text[..text.len() - 10];
        assert!(
            parse_entry("gups/8GB", "SandyBridge", mid_line).is_none(),
            "a mid-line truncation must not parse"
        );

        // Torn exactly at a line boundary: every surviving line is
        // well-formed, so only the `# records` footer catches it. This
        // is the dangerous case — a pre-footer parser would silently
        // serve a shorter battery.
        let boundary: String = text
            .lines()
            .take(2 + entry.records.len() / 2)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(
            parse_entry("gups/8GB", "SandyBridge", &boundary).is_none(),
            "a line-boundary truncation must not parse"
        );

        // Footer present but disagreeing with the body: also rejected.
        let miscounted = text.replace(
            &format!("# records {}\n", entry.records.len()),
            "# records 54\n",
        );
        assert!(parse_entry("gups/8GB", "SandyBridge", &miscounted).is_none());
    }

    #[test]
    fn cache_paths_do_not_collide_for_confusable_workloads() {
        // The old sanitizer (`replace(['/', ' '], "_")`) mapped all three
        // of these onto one cache file.
        let grid = Grid {
            speed: tiny_speed(),
            jobs: 1,
            memo: Mutex::new(BTreeMap::new()),
            disk_dir: Some(PathBuf::from("/cache")),
            computed: AtomicU64::new(0),
            sampled: None,
            rejections: AtomicU64::new(0),
        };
        let paths: Vec<PathBuf> = ["a/b", "a b", "a_b"]
            .iter()
            .filter_map(|w| grid.cache_path(w, "SandyBridge"))
            .collect();
        assert_eq!(paths.len(), 3);
        assert_ne!(paths[0], paths[1]);
        assert_ne!(paths[0], paths[2]);
        assert_ne!(paths[1], paths[2]);

        // And the encoding is invertible: the workload is recoverable
        // from the filename, so a cache directory can be audited.
        use mosmodel::persist::decode_component;
        let name = paths[0].file_name().unwrap().to_str().unwrap();
        let encoded_workload = name
            .strip_prefix("tiny_")
            .unwrap()
            .strip_suffix("_SandyBridge.tsv")
            .unwrap();
        assert_eq!(decode_component(encoded_workload).as_deref(), Some("a/b"));
    }

    #[test]
    fn hostile_descriptions_round_trip_exactly() {
        // v2 squashed tabs and newlines to spaces, so render∘parse was
        // not a fixed point. v3 escapes them instead.
        let hostile = RunRecord {
            description: "tab\there\nnewline\r\\backslash \\t literal".to_string(),
            kind: LayoutKind::Mixed,
            counters: PmuCounters::default(),
            cv_r: 0.0,
        };
        let entry = GridEntry {
            workload: "w".to_string(),
            platform: "P".to_string(),
            records: vec![hostile],
            mode: BatteryMode::Full,
            gate: None,
        };
        let parsed = parse_entry("w", "P", &render_entry(&entry)).unwrap();
        assert_eq!(entry, parsed);
        // Corrupt escapes are rejected, not guessed at.
        assert_eq!(unescape_field("dangling\\"), None);
        assert_eq!(unescape_field("bad\\q"), None);
    }

    #[test]
    fn concurrent_cold_requests_run_exactly_one_battery() {
        // N threads race for the same cold pair: the singleflight latch
        // must coalesce them onto one battery. Fails on the old
        // check-then-compute race (each racer saw a miss and computed).
        let grid = Grid::in_memory(tiny_speed());
        let entries: Vec<Arc<GridEntry>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| grid.entry("gups/8GB", &Platform::SANDY_BRIDGE)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            grid.batteries_computed(),
            1,
            "concurrent requests for one pair must coalesce onto one battery"
        );
        for e in &entries[1..] {
            assert!(
                Arc::ptr_eq(&entries[0], e),
                "all racers must receive the same Arc"
            );
        }
    }

    #[test]
    fn distinct_pairs_each_compute_once() {
        let grid = Grid::in_memory(tiny_speed());
        grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        grid.entry("gups/8GB", &Platform::BROADWELL);
        grid.entry("gups/8GB", &Platform::SANDY_BRIDGE); // memo hit
        assert_eq!(grid.batteries_computed(), 2);
    }

    #[test]
    fn single_layout_measurement_matches_battery_methodology() {
        let grid = Grid::in_memory(tiny_speed());
        let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
        let ctx = MeasureContext::new(tiny_speed(), "gups/8GB").unwrap();
        let variant = MachineVariant::real(&Platform::SANDY_BRIDGE);
        // The all-4KB layout measured alone reproduces the battery's
        // all-4KB record exactly (same trace, same salt schedule).
        let record = measure_layout(&ctx, &variant, &MemoryLayout::all_4k(ctx.pool()));
        assert_eq!(record, *entry.record(LayoutKind::All4K).unwrap());
    }

    use proptest::prelude::*;

    fn counters_strategy() -> impl Strategy<Value = PmuCounters> {
        prop::collection::vec(0u64..(1 << 50), 11usize).prop_map(|v| PmuCounters {
            runtime_cycles: v[0],
            stlb_hits: v[1],
            stlb_misses: v[2],
            walk_cycles: v[3],
            instructions: v[4],
            program_l1d_loads: v[5],
            program_l2_loads: v[6],
            program_l3_loads: v[7],
            walker_l1d_loads: v[8],
            walker_l2_loads: v[9],
            walker_l3_loads: v[10],
        })
    }

    fn record_strategy() -> impl Strategy<Value = RunRecord> {
        (
            counters_strategy(),
            0usize..4,
            0.0f64..0.05,
            // Hostile descriptions on purpose: tabs, newlines, carriage
            // returns, backslashes, and non-ASCII must all survive the
            // TSV round-trip via the escape codec (v2 squashed them).
            "[a-z 0-9\t\n\r\\\\é]{0,24}",
        )
            .prop_map(|(counters, kind, cv_r, description)| RunRecord {
                description,
                kind: [
                    LayoutKind::All4K,
                    LayoutKind::All2M,
                    LayoutKind::All1G,
                    LayoutKind::Mixed,
                ][kind],
                counters,
                cv_r,
            })
    }

    /// Every *internally consistent* (mode, gate) combination: plain
    /// full, full fallback of a rejected gate, and accepted sampled.
    /// (`parse_entry` rejects the inconsistent ones by design.)
    fn mode_gate_strategy() -> impl Strategy<Value = (BatteryMode, Option<GateReport>)> {
        (0usize..3, 1u64..1000, 0u64..1000, 0.0f64..0.2, 0.0f64..0.5).prop_map(
            |(pick, window, extra, bound, max_rel_err)| {
                let period = window + extra;
                let gate = GateReport {
                    window,
                    period,
                    bound,
                    max_rel_err,
                    anchors: 3,
                    accepted: pick == 2,
                };
                match pick {
                    0 => (BatteryMode::Full, None),
                    1 => (BatteryMode::Full, Some(gate)),
                    _ => (BatteryMode::Sampled { window, period }, Some(gate)),
                }
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any entry — arbitrary counters, every layout kind, fractional
        /// cv values, any consistent mode/gate stamp — survives the TSV
        /// round-trip exactly.
        #[test]
        fn tsv_roundtrip_arbitrary_entries(
            records in prop::collection::vec(record_strategy(), 1..8),
            mode_gate in mode_gate_strategy(),
        ) {
            let (mode, gate) = mode_gate;
            let entry = GridEntry {
                workload: "w/1GB".to_string(),
                platform: "P".to_string(),
                records,
                mode,
                gate,
            };
            let parsed = parse_entry("w/1GB", "P", &render_entry(&entry));
            prop_assert_eq!(Some(entry), parsed);
        }
    }
}
