//! Inspection tool: repetition stability of one grid entry.
use harness::{Grid, Speed};
use machine::Platform;
fn main() {
    let speed = Speed {
        name: "repcheck",
        footprint_div: 256,
        min_footprint: 96 << 20,
        accesses: 40_000,
        max_reps: 3,
    };
    let grid = Grid::in_memory(speed);
    let entry = grid.entry("spec06/mcf", &Platform::SANDY_BRIDGE);
    println!("max cv over battery: {:.3}%", 100.0 * entry.max_cv());
    let a = entry.record(mosmodel::LayoutKind::All4K).unwrap();
    println!(
        "4KB anchor cv: {:.3}%  R: {}",
        100.0 * a.cv_r,
        a.counters.runtime_cycles
    );
}
