//! Inspection tool: print the 4KB / 2MB / 1GB anchor measurements and the
//! hand-computed Yaniv extrapolation to the 1GB point.
//!
//! ```text
//! MOSAIC_FAST=1 cargo run --release -p harness --example debug_anchors [workload] [platform]
//! ```
use harness::{Grid, Speed};
use machine::Platform;
use mosmodel::LayoutKind;
fn main() {
    let w = std::env::args().nth(1).unwrap_or("gapbs/pr-twitter".into());
    let pname = std::env::args().nth(2).unwrap_or("SandyBridge".into());
    let p = Platform::by_name(&pname).unwrap();
    let grid = Grid::in_memory(Speed::from_env());
    let entry = grid.entry(&w, p);
    for kind in [LayoutKind::All4K, LayoutKind::All2M, LayoutKind::All1G] {
        let c = entry.record(kind).unwrap().counters;
        println!(
            "{kind:?}: R={} H={} M={} C={} avgwalk={:.1}",
            c.runtime_cycles,
            c.stlb_hits,
            c.stlb_misses,
            c.walk_cycles,
            c.avg_walk_latency()
        );
    }
    // yaniv extrapolation by hand
    let ds = entry.dataset();
    let a4 = ds.anchor_4k().unwrap();
    let a2 = ds.anchor_2m().unwrap();
    let alpha = (a4.r - a2.r) / (a4.c - a2.c);
    let beta = a2.r - alpha * a2.c;
    let t = entry.record(LayoutKind::All1G).unwrap().sample();
    println!(
        "yaniv alpha={alpha:.3} beta={beta:.0} pred1G={:.0} real1G={:.0} err={:.2}%",
        alpha * t.c + beta,
        t.r,
        100.0 * ((alpha * t.c + beta) - t.r).abs() / t.r
    );
}
