//! Inspection tool: print the Growing Window (C, R) series for one
//! (workload, platform) pair with local slopes — handy when judging how
//! linear the runtime response is.
//!
//! ```text
//! MOSAIC_FAST=1 cargo run --release -p harness --example debug_curve [workload] [platform]
//! ```
use harness::{Grid, Speed};
use machine::Platform;
fn main() {
    let w = std::env::args().nth(1).unwrap_or("gups/16GB".into());
    let pname = std::env::args().nth(2).unwrap_or("SandyBridge".into());
    let p = Platform::by_name(&pname).unwrap();
    let grid = Grid::in_memory(Speed::from_env());
    let entry = grid.entry(&w, p);
    // first 9 records are the growing window battery
    let mut prev: Option<(f64, f64)> = None;
    for r in entry.records.iter().take(9) {
        let c = r.counters.walk_cycles as f64;
        let rt = r.counters.runtime_cycles as f64;
        let slope = prev
            .map(|(pc, pr)| (rt - pr) / (c - pc + 1e-9))
            .unwrap_or(0.0);
        println!(
            "C={:>12.0} R={:>12.0} H={:>9} M={:>9} slope={:>7.3}",
            c, rt, r.counters.stlb_hits, r.counters.stlb_misses, slope
        );
        prev = Some((c, rt));
    }
}
