//! Inspection tool: the 1GB-prediction case study over a few hard pairs.
//!
//! ```text
//! MOSAIC_FAST=1 cargo run --release -p harness --example debug_casestudy
//! ```
use harness::{casestudy, Grid, Speed};
use machine::Platform;
fn main() {
    let grid = Grid::in_memory(Speed::from_env());
    for w in ["gapbs/pr-twitter", "gups/32GB", "spec06/mcf"] {
        for p in Platform::ALL {
            match casestudy::one_gb(&grid, w, p) {
                Ok(v) => println!(
                    "{w} {}: yaniv {:.2}% mosmodel {:.2}%",
                    p.name,
                    100.0 * v.yaniv.1,
                    100.0 * v.mosmodel.1
                ),
                Err(e) => println!("{w} {}: {e}", p.name),
            }
        }
    }
}
