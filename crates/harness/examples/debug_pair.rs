//! Inspection tool: Mosmodel residual analysis for one pair — worst
//! sample and a subsampled view of predictions vs measurements.
//!
//! ```text
//! MOSAIC_FAST=1 cargo run --release -p harness --example debug_pair <workload> <platform>
//! ```
use harness::{Grid, Speed};
use machine::Platform;
use mosmodel::metrics::max_err;
use mosmodel::models::{ModelKind, RuntimeModel};
fn main() {
    let w = std::env::args().nth(1).unwrap();
    let pname = std::env::args().nth(2).unwrap();
    let p = Platform::by_name(&pname).unwrap();
    let grid = Grid::new(Speed::from_env());
    let ds = grid.dataset(&w, p);
    let m = ModelKind::Mosmodel.fit(&ds).unwrap();
    println!(
        "mosmodel max err {:.2}% terms {}",
        100.0 * max_err(&m, &ds),
        m.nonzero_terms().unwrap()
    );
    // worst sample
    let mut worst = (0.0, 0usize);
    for (i, s) in ds.iter().enumerate() {
        let e = ((s.r - m.predict(s)) / s.r).abs();
        if e > worst.0 {
            worst = (e, i);
        }
    }
    let s = &ds.samples()[worst.1];
    println!(
        "worst sample #{}: R={:.0} H={:.0} M={:.0} C={:.0} err={:.2}%",
        worst.1,
        s.r,
        s.h,
        s.m,
        s.c,
        100.0 * worst.0
    );
    for (i, s) in ds.iter().enumerate() {
        if i % 6 == 0 {
            println!(
                "#{i:>2} R={:>12.0} H={:>9.0} M={:>9.0} C={:>12.0} pred={:>12.0}",
                s.r,
                s.h,
                s.m,
                s.c,
                m.predict(s)
            );
        }
    }
    // print the fitted terms
    if let (Some(_n),) = (m.nonzero_terms(),) {
        // FittedModel doesn't expose weights; refit via lasso directly
        let fit =
            mosmodel::lasso::fit_lasso(mosmodel::poly::PolyFeatures::mosmodel(), &ds, 5).unwrap();
        let names = fit.features().names();
        println!("terms:");
        for (i, w) in fit.weights().iter().enumerate() {
            if *w != 0.0 {
                println!("  {:>8}: {:+.4e}", names[i], w);
            }
        }
        // 1GB-corner prediction
        let entry = grid.entry(&w, p);
        if let Some(rec) = entry.record(mosmodel::LayoutKind::All1G) {
            let s = rec.sample();
            println!("1G corner: real {:.4e} pred {:.4e}", s.r, fit.predict(&s));
        }
    }
}
