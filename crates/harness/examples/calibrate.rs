//! Calibration probe: per-workload anchor statistics on each platform.
//!
//! Prints, for every workload: runtime and walk-cycle anchors, the
//! TLB-sensitivity, walk-cycle share of runtime, and average walk
//! latency — the quantities used to sanity-check the engine against the
//! paper's reported behaviour.
//!
//! ```text
//! MOSAIC_FAST=1 cargo run --release -p harness --example calibrate [workload-filter]
//! ```

use harness::{Grid, Speed};
use machine::Platform;
use mosmodel::LayoutKind;

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let platforms: Vec<&'static Platform> = match std::env::var("MOSAIC_PLATFORM") {
        Ok(name) => vec![Platform::by_name(&name).expect("unknown platform")],
        Err(_) => Platform::ALL.to_vec(),
    };
    let grid = Grid::new(Speed::from_env());
    println!(
        "{:<22} {:<12} {:>8} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7}",
        "workload",
        "platform",
        "R4K[e6]",
        "R2M[e6]",
        "sens%",
        "C/R4K%",
        "C/R2M%",
        "missrate",
        "avgwalk",
        "H/M4K"
    );
    for spec in workloads::registry() {
        if !spec.name.contains(&filter) {
            continue;
        }
        for platform in &platforms {
            let start = std::time::Instant::now();
            let entry = grid.entry(spec.name, platform);
            let elapsed = start.elapsed();
            let r4k = entry.record(LayoutKind::All4K).unwrap().counters;
            let r2m = entry.record(LayoutKind::All2M).unwrap().counters;
            let r1g = entry.record(LayoutKind::All1G).unwrap().counters;
            let sens =
                (r4k.runtime_cycles as f64 - r1g.runtime_cycles as f64) / r4k.runtime_cycles as f64;
            let miss_rate = r4k.stlb_misses as f64 / (r4k.instructions as f64 / 6.0);
            println!(
                "{:<22} {:<12} {:>8.2} {:>8.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.3} {:>8.1} {:>7.2}  ({:.1}s)",
                spec.name,
                platform.name,
                r4k.runtime_cycles as f64 / 1e6,
                r2m.runtime_cycles as f64 / 1e6,
                100.0 * sens,
                100.0 * r4k.walk_cycles as f64 / r4k.runtime_cycles as f64,
                100.0 * r2m.walk_cycles as f64 / r2m.runtime_cycles as f64,
                miss_rate,
                r4k.avg_walk_latency(),
                r4k.stlb_hits as f64 / r4k.stlb_misses.max(1) as f64,
                elapsed.as_secs_f64(),
            );
        }
    }
}
