//! Inspection tool: rank pairs by Basu-model optimism (under-prediction).
use harness::{Grid, Speed};
use machine::Platform;
use mosmodel::models::{ModelKind, RuntimeModel};
fn main() {
    let grid = Grid::new(Speed::from_env());
    let mut rows: Vec<(f64, String)> = Vec::new();
    for p in Platform::ALL {
        for w in grid.tlb_sensitive_workloads(p) {
            let ds = grid.dataset(&w, p);
            let Ok(basu) = ModelKind::Basu.fit(&ds) else {
                continue;
            };
            let optimism = ds
                .iter()
                .map(|s| (s.r - basu.predict(s)) / s.r)
                .fold(f64::NEG_INFINITY, f64::max);
            rows.push((optimism, format!("{w} on {}", p.name)));
        }
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (o, name) in rows.iter().take(8) {
        println!("{:>6.1}% optimistic  {}", o * 100.0, name);
    }
}
