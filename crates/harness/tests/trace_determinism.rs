//! Sim-domain tracing invariants for `measure_layout_traced`.
//!
//! Sim-domain span timestamps are simulated cycles, which are a pure
//! function of (workload, platform, layout, speed) — so two identical runs
//! must render *byte-identical* traces, and turning the tracer on must not
//! perturb the measured counters by a single bit.

use harness::{measure_layout, measure_layout_traced, MachineVariant, MeasureContext, Speed};
use machine::Platform;
use obs::{render_trace, ClockDomain, SpanRecorder, Trace};
use vmcore::{MemoryLayout, PageSize, Region};

/// The same pinned triple as `golden_counters.rs`: gups/8GB on SandyBridge
/// with the first half of the pool backed by 2MB pages.
fn pinned_ctx_and_layout(speed: Speed) -> (MeasureContext, MemoryLayout) {
    let ctx = MeasureContext::new(speed, "gups/8GB").expect("known workload");
    let pool = ctx.pool();
    let half = Region::new(pool.start(), pool.len() / 2);
    let layout = MemoryLayout::builder(pool)
        .window(half, PageSize::Huge2M)
        .expect("2M-aligned half-pool window")
        .build()
        .expect("valid layout");
    (ctx, layout)
}

fn traced_run(speed: Speed, capacity: usize) -> (harness::RunRecord, SpanRecorder) {
    let (ctx, layout) = pinned_ctx_and_layout(speed);
    let variant = MachineVariant::real(&Platform::SANDY_BRIDGE);
    let mut rec = SpanRecorder::new(capacity);
    let record = measure_layout_traced(&ctx, &variant, &layout, Some(&mut rec));
    (record, rec)
}

fn render(rec: &SpanRecorder) -> String {
    render_trace(&Trace {
        seq: 0,
        label: "measure_layout".to_string(),
        domain: ClockDomain::Sim,
        dropped_spans: rec.dropped(),
        spans: rec.spans().to_vec(),
    })
}

#[test]
fn fast_traces_are_byte_identical_across_runs() {
    let (record_a, rec_a) = traced_run(Speed::FAST, 64);
    let (record_b, rec_b) = traced_run(Speed::FAST, 64);
    assert_eq!(rec_a.dropped(), 0, "64-span recorder must not drop");
    assert!(!rec_a.is_empty(), "tracer recorded no spans");
    let line_a = render(&rec_a);
    let line_b = render(&rec_b);
    assert_eq!(
        line_a, line_b,
        "identical FAST runs rendered different traces"
    );
    assert_eq!(
        record_a, record_b,
        "identical FAST runs measured differently"
    );

    // Every stage comes from the published sim-stage list, and timestamps
    // tie back to the deterministic counters: with FAST's single repetition
    // the replay span ends exactly at the measured runtime.
    for span in rec_a.spans() {
        assert!(
            harness::SIM_STAGES.contains(&span.stage.as_str()),
            "unexpected sim stage {:?}",
            span.stage
        );
    }
    let replay = rec_a
        .spans()
        .iter()
        .find(|s| s.stage == "replay")
        .expect("replay span present");
    assert_eq!(replay.start, 0);
    assert_eq!(replay.end, record_a.counters.runtime_cycles);
    let walk = rec_a
        .spans()
        .iter()
        .find(|s| s.stage == "page_walk")
        .expect("page_walk span present");
    assert_eq!(walk.ticks(), record_a.counters.walk_cycles);
}

#[test]
fn tracing_does_not_perturb_measurement() {
    let (ctx, layout) = pinned_ctx_and_layout(Speed::FAST);
    let variant = MachineVariant::real(&Platform::SANDY_BRIDGE);
    let untraced = measure_layout(&ctx, &variant, &layout);
    let (traced, _) = traced_run(Speed::FAST, 64);
    assert_eq!(
        untraced, traced,
        "enabling the tracer changed the measured record"
    );
}

#[test]
fn recorder_overflow_drops_instead_of_growing() {
    // FAST runs one repetition → three spans; a capacity-1 recorder must
    // keep exactly one and count the other two as dropped.
    let (_, rec) = traced_run(Speed::FAST, 1);
    assert_eq!(rec.len(), 1);
    assert_eq!(rec.dropped(), 2);
}
