//! Integration tests of the figure/table machinery over a miniature grid.

use std::sync::OnceLock;

use harness::figures::{error_matrix, fig2, model_curve, ErrorStat};
use harness::tables::{tab6, tab8};
use harness::{Grid, Speed};
use machine::Platform;
use mosmodel::models::ModelKind;

fn tiny() -> Speed {
    Speed {
        name: "tiny",
        footprint_div: 1024,
        min_footprint: 48 << 20,
        accesses: 15_000,
        max_reps: 1,
    }
}

fn grid() -> &'static Grid {
    static GRID: OnceLock<Grid> = OnceLock::new();
    GRID.get_or_init(|| Grid::in_memory(tiny()))
}

fn pairs() -> Vec<(String, &'static Platform)> {
    vec![
        ("gups/8GB".to_string(), &Platform::SANDY_BRIDGE),
        ("spec06/mcf".to_string(), &Platform::SANDY_BRIDGE),
    ]
}

#[test]
fn fig2_summarizes_all_models() {
    let f = fig2(grid(), &pairs());
    assert_eq!(f.old.len(), 5);
    assert_eq!(f.new.len(), 4);
    for kind in ModelKind::ALL {
        let summary = f.of(kind).unwrap_or_else(|| panic!("{kind} missing"));
        assert!(summary.max_err.is_finite());
        assert!(summary.max_err >= 0.0);
        assert_ne!(summary.worst_pair.0, "-", "{kind} found no pair");
    }
    // Rendering mentions every model.
    let text = f.to_string();
    for kind in ModelKind::ALL {
        assert!(
            text.contains(kind.name()),
            "display missing {}",
            kind.name()
        );
    }
}

#[test]
fn error_matrix_is_dense_and_displayable() {
    let names: Vec<String> = pairs().iter().map(|(w, _)| w.clone()).collect();
    let m = error_matrix(grid(), &Platform::SANDY_BRIDGE, &names, ErrorStat::Max);
    assert_eq!(m.rows.len(), 2);
    assert_eq!(m.models.len(), 9);
    for (w, errs) in &m.rows {
        for (kind, e) in m.models.iter().zip(errs) {
            assert!(e.is_some(), "{kind} missing for {w}");
        }
    }
    // Geomean variant is bounded by the max variant, cell by cell.
    let g = error_matrix(grid(), &Platform::SANDY_BRIDGE, &names, ErrorStat::GeoMean);
    for (w, _) in &m.rows {
        for kind in &m.models {
            let worst = m.error_of(w, *kind).unwrap();
            let geo = g.error_of(w, *kind).unwrap();
            assert!(geo <= worst + 1e-12, "{w}/{kind}: {geo} > {worst}");
        }
    }
    assert!(m.worst_of(ModelKind::Mosmodel).unwrap() <= m.worst_of(ModelKind::Basu).unwrap());
    assert!(m.to_string().contains("gups/8GB"));
}

#[test]
fn model_curve_is_sorted_and_aligned() {
    let curve = model_curve(
        grid(),
        "gups/8GB",
        &Platform::SANDY_BRIDGE,
        ModelKind::Yaniv,
        ModelKind::Mosmodel,
    )
    .unwrap();
    assert_eq!(curve.empirical.len(), 54);
    assert_eq!(curve.model_a.1.len(), 54);
    assert_eq!(curve.model_b.1.len(), 54);
    for w in curve.empirical.windows(2) {
        assert!(w[0].0 <= w[1].0, "empirical points sorted by C");
    }
    for (e, p) in curve.empirical.iter().zip(&curve.model_a.1) {
        assert_eq!(e.0, p.0, "prediction C aligned with empirical C");
    }
    assert!(
        curve.err_b <= curve.err_a + 1e-12,
        "mosmodel no worse than yaniv here"
    );
}

#[test]
fn tab6_covers_the_new_models() {
    let t = tab6(grid(), &pairs(), 6);
    assert_eq!(t.rows.len(), 4);
    for kind in ModelKind::NEW {
        let e = t.of(kind).unwrap();
        assert!(e.is_finite() && e >= 0.0, "{kind}");
    }
    assert!(
        t.of(ModelKind::Basu).is_none(),
        "preexisting models are not cross-validated"
    );
    assert!(t.to_string().contains("mosmodel"));
}

#[test]
fn tab8_r2_values_are_probabilities() {
    let t = tab8(grid(), &pairs());
    assert_eq!(t.rows.len(), 2);
    for (w, p, c, m, h) in &t.rows {
        for (name, v) in [("C", c), ("M", m), ("H", h)] {
            assert!(
                (0.0..=1.0 + 1e-9).contains(v),
                "{w}/{p} R²({name}) = {v} out of range"
            );
        }
    }
    let (c, _, _) = t.row("gups/8GB", "SandyBridge").unwrap();
    assert!(c > 0.5, "walk cycles must explain gups runtime");
}

#[test]
fn sensitive_pair_helpers_agree() {
    // On the tiny grid just check the per-platform split partitions the
    // flat pair list.
    let by_platform = harness::figures::sensitive_by_platform(grid());
    let flat = harness::figures::sensitive_pairs(grid());
    let total: usize = by_platform.iter().map(|(_, names)| names.len()).sum();
    assert_eq!(total, flat.len());
    for (platform, names) in &by_platform {
        for name in names {
            assert!(flat
                .iter()
                .any(|(w, p)| w == name && p.name == platform.name));
        }
    }
}
