//! Disk-cache behaviour of the measurement grid: round-trips, corruption
//! tolerance, and speed-preset isolation.

use harness::{Grid, Speed};
use machine::Platform;

fn tiny() -> Speed {
    Speed {
        name: "tiny",
        footprint_div: 2048,
        min_footprint: 48 << 20,
        accesses: 8_000,
        max_reps: 1,
    }
}

/// A scratch cache directory per test, cleaned up on drop.
struct ScratchCache {
    dir: std::path::PathBuf,
}

impl ScratchCache {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("mosaic-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("MOSAIC_CACHE_DIR", &dir);
        std::env::remove_var("MOSAIC_NO_DISK_CACHE");
        ScratchCache { dir }
    }
}

impl Drop for ScratchCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
        std::env::remove_var("MOSAIC_CACHE_DIR");
    }
}

#[test]
fn disk_cache_roundtrip_and_corruption_recovery() {
    // One test exercises the whole lifecycle (env vars are process-global,
    // so the scenarios must not run in parallel test threads).
    let scratch = ScratchCache::new("lifecycle");

    // 1. Cold computation writes the cache.
    let grid = Grid::new(tiny());
    let original = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    let files: Vec<_> = std::fs::read_dir(&scratch.dir).unwrap().collect();
    assert_eq!(files.len(), 1, "one cache file per pair");

    // 2. A fresh grid loads the identical entry from disk.
    let grid2 = Grid::new(tiny());
    let reloaded = grid2.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    assert_eq!(*original, *reloaded, "disk round-trip must be lossless");

    // 3. Corrupt the file: the next grid must detect it and recompute,
    //    ending up with the same (deterministic) data.
    let path = files[0].as_ref().unwrap().path();
    std::fs::write(&path, "kind\tR\nAll4K\tnot-a-number\n").unwrap();
    let grid3 = Grid::new(tiny());
    let recomputed = grid3.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    assert_eq!(
        *original, *recomputed,
        "corruption must trigger recomputation"
    );

    // 4. A different speed preset must not collide with the cached file.
    let other = Speed {
        name: "tiny2",
        ..tiny()
    };
    let grid4 = Grid::new(other);
    let _ = grid4.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    let count = std::fs::read_dir(&scratch.dir).unwrap().count();
    assert_eq!(count, 2, "presets get distinct cache files");

    // 5. Truncate the cache file at a line boundary — every surviving
    //    line is individually well-formed, simulating a torn write from
    //    a crashed process. The next grid must reject it (the `# records`
    //    footer is gone) and re-measure rather than serve a short battery.
    let full_text = std::fs::read_to_string(&path).unwrap();
    let truncated: String = full_text
        .lines()
        .take(full_text.lines().count() / 2)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, &truncated).unwrap();
    let grid5 = Grid::new(tiny());
    let remeasured = grid5.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    assert_eq!(
        grid5.batteries_computed(),
        1,
        "a truncated cache file must be re-measured, not accepted"
    );
    assert_eq!(*original, *remeasured, "re-measurement restores the entry");
    // The re-measurement also repaired the file on disk (atomically).
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        full_text,
        "store_disk must rewrite the repaired cache file"
    );
    // No temporary files leak from the write-then-rename protocol.
    let leftovers: Vec<String> = std::fs::read_dir(&scratch.dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "leaked temporaries: {leftovers:?}");
}
