//! Golden PMU-counter snapshots: the counter-invisibility gate for the
//! simulation fast path.
//!
//! The memsim translation memo and the flattened cache indexing are
//! allowed to change *wall-clock* behaviour only. These snapshots pin
//! one (workload, platform, layout) triple per speed preset to the exact
//! counter values the pre-optimization simulator produced; any
//! divergence — one extra TLB hit, one reordered LRU stamp — fails the
//! suite. Update these numbers only for a deliberate, documented model
//! change, never for an "optimization".

use harness::{measure_layout, Grid, MachineVariant, MeasureContext, Speed};
use machine::{EngineConfig, Platform};
use vmcore::{MemoryLayout, PageSize, PmuCounters, Region};

/// Measures the pinned triple: gups/8GB on SandyBridge with the first
/// half of the pool backed by 2MB pages (both halves are 2MB-aligned for
/// every preset, so the layout is exactly reproducible).
fn measure(speed: Speed) -> (PmuCounters, f64) {
    measure_with_config(speed, EngineConfig::default())
}

/// Same pinned triple, but with an explicit engine configuration so
/// machine variants (e.g. nested paging) can be pinned too.
fn measure_with_config(speed: Speed, config: EngineConfig) -> (PmuCounters, f64) {
    let ctx = MeasureContext::new(speed, "gups/8GB").expect("known workload");
    let pool = ctx.pool();
    let half = Region::new(pool.start(), pool.len() / 2);
    let layout = MemoryLayout::builder(pool)
        .window(half, PageSize::Huge2M)
        .expect("2M-aligned half-pool window")
        .build()
        .expect("valid layout");
    let variant = MachineVariant {
        name: "golden-variant".to_string(),
        platform: Platform::SANDY_BRIDGE.clone(),
        config,
    };
    let record = measure_layout(&ctx, &variant, &layout);
    (record.counters, record.cv_r)
}

#[test]
fn fast_preset_counters_are_byte_identical_to_golden() {
    let (counters, cv_r) = measure(Speed::FAST);
    let golden = PmuCounters {
        runtime_cycles: 2_409_763,
        stlb_hits: 530,
        stlb_misses: 19_507,
        walk_cycles: 859_054,
        instructions: 280_163,
        program_l1d_loads: 80_000,
        program_l2_loads: 39_993,
        program_l3_loads: 39_949,
        walker_l1d_loads: 19_541,
        walker_l2_loads: 18_113,
        walker_l3_loads: 10_055,
    };
    assert_eq!(counters, golden, "FAST counters drifted from golden");
    assert_eq!(
        cv_r.to_bits(),
        0.0f64.to_bits(),
        "single-rep FAST run must have exactly zero runtime variance"
    );
}

#[test]
fn fast_preset_nested_paging_counters_are_byte_identical_to_golden() {
    // Virtualized variant (guest backed by 4KB host pages): pins the 2D
    // walk path *and* the TranslationMemo bypass that virtualization takes
    // through the memory subsystem, bit-for-bit.
    let (counters, cv_r) = measure_with_config(
        Speed::FAST,
        EngineConfig {
            virtualized: Some(PageSize::Base4K),
            ..EngineConfig::default()
        },
    );
    let golden = PmuCounters {
        runtime_cycles: 6_802_063,
        stlb_hits: 530,
        stlb_misses: 19_507,
        walk_cycles: 5_422_012,
        instructions: 280_163,
        program_l1d_loads: 80_000,
        program_l2_loads: 39_996,
        program_l3_loads: 39_970,
        walker_l1d_loads: 118_388,
        walker_l2_loads: 61_540,
        walker_l3_loads: 48_435,
    };
    assert_eq!(
        counters, golden,
        "nested-paging counters drifted from golden"
    );
    assert_eq!(
        cv_r.to_bits(),
        0.0f64.to_bits(),
        "single-rep FAST run must have exactly zero runtime variance"
    );
}

#[test]
fn full_preset_counters_are_byte_identical_to_golden() {
    let (counters, cv_r) = measure(Speed::FULL);
    let golden = PmuCounters {
        runtime_cycles: 13_260_755,
        stlb_hits: 636,
        stlb_misses: 174_297,
        walk_cycles: 5_473_395,
        instructions: 1_400_399,
        program_l1d_loads: 400_000,
        program_l2_loads: 199_990,
        program_l3_loads: 199_927,
        walker_l1d_loads: 248_573,
        walker_l2_loads: 97_746,
        walker_l3_loads: 84_612,
    };
    assert_eq!(counters, golden, "FULL counters drifted from golden");
    // Three repetitions with distinct salts: even the cross-rep variance
    // is pinned to the bit.
    assert_eq!(
        cv_r.to_bits(),
        2.767_564_893_552_441e-5f64.to_bits(),
        "FULL cross-repetition variance drifted from golden"
    );
}

/// The pinned triple measured through the sampled path: periodic
/// windows at the default `1000:10000` sampling plus cold-split
/// extrapolation. Sampled measurement is part of the persistence
/// surface (sampled entries are cached), so its values are pinned
/// bit-for-bit exactly like full ones.
fn measure_sampled(speed: Speed) -> (PmuCounters, f64) {
    let ctx = MeasureContext::new(speed, "gups/8GB").expect("known workload");
    let pool = ctx.pool();
    let half = Region::new(pool.start(), pool.len() / 2);
    let layout = MemoryLayout::builder(pool)
        .window(half, PageSize::Huge2M)
        .expect("2M-aligned half-pool window")
        .build()
        .expect("valid layout");
    let variant = MachineVariant {
        name: "golden-variant".to_string(),
        platform: Platform::SANDY_BRIDGE.clone(),
        config: EngineConfig::default(),
    };
    let record = harness::measure_layout_sampled(&ctx, &variant, &layout, 1_000, 10_000);
    (record.counters, record.cv_r)
}

#[test]
fn fast_preset_sampled_counters_are_byte_identical_to_golden() {
    let (counters, cv_r) = measure_sampled(Speed::FAST);
    let golden = PmuCounters {
        runtime_cycles: 3_789_378,
        stlb_hits: 606,
        stlb_misses: 18_976,
        walk_cycles: 2_287_784,
        instructions: 279_256,
        program_l1d_loads: 80_000,
        program_l2_loads: 39_999,
        program_l3_loads: 39_920,
        walker_l1d_loads: 19_010,
        walker_l2_loads: 17_716,
        walker_l3_loads: 10_834,
    };
    assert_eq!(
        counters, golden,
        "FAST sampled counters drifted from golden"
    );
    assert_eq!(
        cv_r.to_bits(),
        0.0f64.to_bits(),
        "single-rep FAST sampled run must have exactly zero runtime variance"
    );
}

#[test]
fn full_preset_sampled_counters_are_byte_identical_to_golden() {
    let (counters, cv_r) = measure_sampled(Speed::FULL);
    let golden = PmuCounters {
        runtime_cycles: 19_827_530,
        stlb_hits: 602,
        stlb_misses: 174_690,
        walk_cycles: 12_025_415,
        instructions: 1_401_273,
        program_l1d_loads: 400_000,
        program_l2_loads: 199_961,
        program_l3_loads: 199_897,
        walker_l1d_loads: 249_764,
        walker_l2_loads: 98_973,
        walker_l3_loads: 85_819,
    };
    assert_eq!(
        counters, golden,
        "FULL sampled counters drifted from golden"
    );
    // Extrapolated runtimes still vary across the three salted reps;
    // even that variance is pinned to the bit.
    assert_eq!(
        cv_r.to_bits(),
        1.421_256_202_865_41e-4f64.to_bits(),
        "FULL sampled cross-repetition variance drifted from golden"
    );
}

#[test]
fn battery_is_bit_identical_across_job_counts() {
    // The parallel battery must be counter-invisible: jobs=1 (the serial
    // baseline) and jobs=8 measure every layout with the same engines,
    // salt schedules, and reduction order, so the records — down to the
    // cv bit pattern — and the rendered cache TSV agree byte-for-byte.
    // Two repetitions make the cv nonzero, so this also proves the rep
    // loop's early-stop logic is unaffected by which worker runs it.
    let speed = Speed {
        name: "tiny2",
        footprint_div: 2048,
        min_footprint: 48 << 20,
        accesses: 8_000,
        max_reps: 2,
    };
    let serial = Grid::in_memory(speed).with_jobs(1);
    let parallel = Grid::in_memory(speed).with_jobs(8);
    assert_eq!(serial.jobs(), 1);
    assert_eq!(parallel.jobs(), 8);

    let a = serial.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    let b = parallel.entry("gups/8GB", &Platform::SANDY_BRIDGE);

    assert_eq!(a.records.len(), b.records.len());
    for (i, (ra, rb)) in a.records.iter().zip(b.records.iter()).enumerate() {
        assert_eq!(
            ra.counters, rb.counters,
            "record {i} counters differ between jobs=1 and jobs=8"
        );
        assert_eq!(
            ra.cv_r.to_bits(),
            rb.cv_r.to_bits(),
            "record {i} cv bits differ between jobs=1 and jobs=8"
        );
        assert_eq!(ra.description, rb.description);
        assert_eq!(ra.kind, rb.kind);
    }
    assert!(
        a.records.iter().any(|r| r.cv_r > 0.0),
        "two reps must produce nonzero cv somewhere, or the cv pin is vacuous"
    );
    // The strongest form of the claim: the exact bytes the disk cache
    // would receive are identical, so a cache written by a parallel
    // build is indistinguishable from a serial one.
    assert_eq!(
        a.to_tsv(),
        b.to_tsv(),
        "grid TSV bytes differ between jobs=1 and jobs=8"
    );
}
