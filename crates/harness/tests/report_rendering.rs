//! Rendering tests for the figure outputs (ASCII plots, CSV export)
//! using hand-built data — no simulation required.

use harness::figures::{CurveFig, ErrorMatrix, ErrorStat};
use mosmodel::models::ModelKind;

fn curve() -> CurveFig {
    let empirical: Vec<(f64, f64)> = (0..10)
        .map(|i| (i as f64 * 1e6, 5e6 + i as f64 * 4e5))
        .collect();
    let line_a: Vec<(f64, f64)> = empirical.iter().map(|&(c, r)| (c, r * 1.02)).collect();
    let line_b: Vec<(f64, f64)> = empirical.iter().map(|&(c, r)| (c, r * 0.999)).collect();
    CurveFig {
        workload: "test/workload".into(),
        platform: "SandyBridge",
        empirical,
        model_a: (ModelKind::Yaniv, line_a),
        model_b: (ModelKind::Mosmodel, line_b),
        err_a: 0.02,
        err_b: 0.001,
    }
}

#[test]
fn ascii_plot_has_requested_dimensions_and_glyphs() {
    let plot = curve().ascii_plot(48, 12);
    let lines: Vec<&str> = plot.lines().collect();
    // Header + 12 rows + x-axis.
    assert_eq!(lines.len(), 14);
    for row in &lines[1..13] {
        assert!(row.starts_with('|'));
        assert!(row.len() <= 49);
    }
    assert!(lines[13].starts_with('+'));
    assert!(plot.contains('o'), "empirical glyphs present");
    assert!(plot.contains("yaniv"));
    assert!(plot.contains("mosmodel"));
}

#[test]
fn ascii_plot_clamps_tiny_dimensions() {
    // Degenerate sizes are raised to the minimum instead of panicking.
    let plot = curve().ascii_plot(1, 1);
    assert!(plot.lines().count() >= 8);
}

#[test]
fn curve_display_embeds_plot_and_table() {
    let text = curve().to_string();
    assert!(text.contains("R vs C"));
    assert!(text.contains('|'), "plot body");
    assert!(text.contains("R measured"), "table header");
    assert!(text.contains("max err 2.0%"));
}

#[test]
fn curve_csv_roundtrips_values() {
    let c = curve();
    let csv = c.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next().unwrap(), "c,measured,yaniv,mosmodel");
    let first: Vec<&str> = lines.next().unwrap().split(',').collect();
    assert_eq!(first.len(), 4);
    assert_eq!(first[0].parse::<f64>().unwrap(), c.empirical[0].0);
    assert_eq!(first[1].parse::<f64>().unwrap(), c.empirical[0].1);
    assert_eq!(csv.lines().count(), 11);
}

#[test]
fn error_matrix_csv_handles_missing_cells() {
    let m = ErrorMatrix {
        platform: "Haswell",
        stat: ErrorStat::Max,
        models: vec![ModelKind::Basu, ModelKind::Mosmodel],
        rows: vec![
            ("w1".into(), vec![Some(0.5), Some(0.01)]),
            ("w2".into(), vec![None, Some(0.02)]),
        ],
    };
    let csv = m.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "workload,basu,mosmodel");
    assert_eq!(lines[1], "w1,0.5,0.01");
    assert_eq!(lines[2], "w2,,0.02", "missing cell stays empty");
}
