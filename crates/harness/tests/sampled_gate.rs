//! End-to-end tests for validated interval-sampled batteries: the
//! sampled-vs-full cross-validation gate accepts an honest
//! configuration, refuses an adversarial one (falling back to the full
//! battery and recording the rejection), and the sampled pipeline is
//! byte-deterministic across runs and job counts.

use harness::sampled::evaluate_gate;
use harness::{
    measure_layout, measure_layout_sampled, BatteryMode, Grid, GridEntry, MachineVariant,
    MeasureContext, SampledConfig, Speed,
};
use machine::Platform;
use vmcore::{MemoryLayout, PageSize, PmuCounters};

/// A preset long enough for the cold-split extrapolation to amortize
/// the pool's compulsory fills (the 2MB pool is 32k cache lines; the
/// warmup prefix covers them many times over).
const ACCEPT_SPEED: Speed = Speed {
    name: "sampled-accept",
    footprint_div: 1 << 30,
    min_footprint: 2 << 20,
    accesses: 1_000_000,
    max_reps: 1,
};

/// A short preset for structural tests where gate accuracy is not the
/// point (entry marking, caching, determinism).
const TINY_SPEED: Speed = Speed {
    name: "sampled-tiny",
    footprint_div: 1 << 30,
    min_footprint: 2 << 20,
    accesses: 20_000,
    max_reps: 1,
};

/// The adversarial preset: spec06/mcf at a scale where a head-only
/// window sees a trace phase wildly unrepresentative of the whole run.
const ADVERSARIAL_SPEED: Speed = Speed {
    name: "sampled-adversarial",
    footprint_div: 2048,
    min_footprint: 48 << 20,
    accesses: 12_000,
    max_reps: 1,
};

#[test]
fn gate_accepts_gups_within_the_default_bound() {
    // Honest periodic sampling (half the trace, 1k-access windows) on
    // uniform-random gups: every anchor's every counter must land
    // within the default 5% bound. The simulator is deterministic, so
    // this is a stable property of the configuration, not a flaky
    // threshold.
    let cfg = SampledConfig {
        window: 1_000,
        period: 2_000,
        bound: 0.05,
    };
    let variant = MachineVariant::real(&Platform::SANDY_BRIDGE);
    let ctx = MeasureContext::new(ACCEPT_SPEED, "gups/8GB").expect("known workload");
    let pool = ctx.pool();
    let anchors = [
        MemoryLayout::all_4k(pool),
        MemoryLayout::uniform(pool, PageSize::Huge2M),
        MemoryLayout::uniform(pool, PageSize::Huge1G),
    ];
    let pairs: Vec<(PmuCounters, PmuCounters)> = anchors
        .iter()
        .map(|layout| {
            let full = measure_layout(&ctx, &variant, layout);
            let sampled = measure_layout_sampled(&ctx, &variant, layout, cfg.window, cfg.period);
            (full.counters, sampled.counters)
        })
        .collect();
    let report = evaluate_gate(&pairs, cfg);
    assert_eq!(report.anchors, 3);
    assert!(
        report.accepted,
        "honest sampling must pass the 5% gate: max_rel_err = {}",
        report.max_rel_err
    );
    assert!(report.max_rel_err <= cfg.bound);
    // The gate is not vacuous at this scale: extrapolation is close but
    // not exact.
    assert!(report.max_rel_err > 0.0, "sampled-vs-full cannot be exact");
}

#[test]
fn accepted_sampled_entries_are_marked_and_round_trip() {
    let cfg = SampledConfig {
        window: 1_000,
        period: 2_000,
        // Structural test: a loose bound guarantees acceptance at tiny
        // scale, where the transient dominates honest bounds.
        bound: 10.0,
    };
    let grid = Grid::in_memory(TINY_SPEED).with_sampled(cfg);
    let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    assert_eq!(
        entry.mode,
        BatteryMode::Sampled {
            window: 1_000,
            period: 2_000
        },
        "an accepted battery must be stamped sampled"
    );
    let gate = entry
        .gate
        .expect("sampled grids always carry a gate verdict");
    assert!(gate.accepted);
    assert_eq!(gate.anchors, 3);
    assert_eq!(grid.sampled_rejections(), 0);

    // The v4 cache header records the mode and the gate evidence, and
    // the full entry — mode and gate included — survives a round trip
    // through the persistence format.
    let tsv = entry.to_tsv();
    assert!(
        tsv.starts_with(
            "# mosaic-cache v4\n# mode sampled 1000 2000\n# gate accepted 1000 2000 10 "
        ),
        "sampled header must be self-describing, got:\n{}",
        tsv.lines().take(3).collect::<Vec<_>>().join("\n")
    );
    let reparsed = GridEntry::from_tsv(&entry.workload, &entry.platform, &tsv)
        .expect("rendered sampled entry must re-parse");
    assert_eq!(reparsed.mode, entry.mode);
    assert_eq!(reparsed.gate, entry.gate);
    assert_eq!(reparsed.records, entry.records);
}

#[test]
fn adversarial_head_window_is_rejected_and_falls_back_to_full() {
    // A "sampling" configuration whose period exceeds the trace keeps
    // only the head: it sees mcf's pointer-chase warmup phase and
    // nothing else, so its extrapolated counters are far off the full
    // run. The gate must refuse it, the battery must fall back to full
    // measurement, and the grid must count the rejection.
    let cfg = SampledConfig {
        window: 1_000,
        period: 1_000_000,
        bound: 0.05,
    };
    let sampled_grid = Grid::in_memory(ADVERSARIAL_SPEED).with_sampled(cfg);
    let entry = sampled_grid.entry("spec06/mcf", &Platform::SANDY_BRIDGE);

    let gate = entry
        .gate
        .expect("sampled grids always carry a gate verdict");
    assert!(
        !gate.accepted,
        "a head-only window must fail cross-validation: max_rel_err = {}",
        gate.max_rel_err
    );
    assert!(gate.max_rel_err > cfg.bound);
    assert_eq!(
        entry.mode,
        BatteryMode::Full,
        "a rejected battery must be full, not sampled"
    );
    assert_eq!(sampled_grid.sampled_rejections(), 1);

    // The fallback is the real thing: record-for-record identical to a
    // grid that never attempted sampling.
    let full_grid = Grid::in_memory(ADVERSARIAL_SPEED);
    let full = full_grid.entry("spec06/mcf", &Platform::SANDY_BRIDGE);
    assert_eq!(entry.records, full.records);
    assert_eq!(full_grid.sampled_rejections(), 0);
}

#[test]
fn sampled_batteries_are_byte_identical_across_runs_and_job_counts() {
    let cfg = SampledConfig {
        window: 1_000,
        period: 2_000,
        bound: 10.0,
    };
    let serial = Grid::in_memory(TINY_SPEED).with_sampled(cfg).with_jobs(1);
    let parallel = Grid::in_memory(TINY_SPEED).with_sampled(cfg).with_jobs(8);
    let rerun = Grid::in_memory(TINY_SPEED).with_sampled(cfg).with_jobs(8);

    let a = serial.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    let b = parallel.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    let c = rerun.entry("gups/8GB", &Platform::SANDY_BRIDGE);

    assert_eq!(a.mode, b.mode);
    assert!(matches!(a.mode, BatteryMode::Sampled { .. }));
    // The strongest form: the exact bytes the disk cache would receive
    // — gate line, records, cv bit patterns — agree for jobs=1 vs
    // jobs=8 and across independent runs.
    assert_eq!(
        a.to_tsv(),
        b.to_tsv(),
        "sampled grid TSV differs between jobs=1 and jobs=8"
    );
    assert_eq!(
        b.to_tsv(),
        c.to_tsv(),
        "sampled grid TSV differs between identical runs"
    );
}

#[test]
fn legacy_v3_documents_load_as_full_ungated_entries() {
    // Public-API version of the codec's compatibility guarantee: a grid
    // entry rendered by the previous (v3) release — no mode line, no
    // gate line — still loads, as a full ungated battery.
    let grid = Grid::in_memory(TINY_SPEED);
    let entry = grid.entry("gups/8GB", &Platform::SANDY_BRIDGE);
    let v4 = entry.to_tsv();
    assert!(v4.starts_with("# mosaic-cache v4\n# mode full\n# gate none\n"));
    let v3 = v4.replacen(
        "# mosaic-cache v4\n# mode full\n# gate none\n",
        "# mosaic-cache v3\n",
        1,
    );
    let legacy = GridEntry::from_tsv(&entry.workload, &entry.platform, &v3)
        .expect("v3 documents must still load");
    assert_eq!(legacy.mode, BatteryMode::Full);
    assert_eq!(legacy.gate, None);
    assert_eq!(legacy.records, entry.records);
}
