//! The cycle-accounting execution engine.

use memsim::{MemorySubsystem, Microarch, Platform, Translation};
use vmcore::{PageSize, PmuCounters, VirtAddr};
use workloads::Access;

/// Fraction of a dependent load's extra latency that stalls retirement.
const DEP_EXPOSED: f64 = 0.85;
/// EMA decay for the walk-density estimate (≈ last few hundred accesses).
const MISS_EMA_DECAY: f64 = 0.995;
/// A dependent chase's walk overlaps less with surrounding work: the ROB
/// drains behind the chain. Scales the platform's walk-hide cap.
const DEP_WALK_HIDE: f64 = 0.6;
/// How strongly frequent page walks degrade memory-level parallelism:
/// a walk serializes its dependent load, collapsing the miss overlap the
/// core otherwise sustains. At 100% walk density the effective MLP drops
/// by this fraction.
const MLP_DEGRADE: f64 = 0.75;
/// Walk densities below this leave the miss queues unaffected: sporadic
/// walks slot into existing bubbles. The onset threshold is what makes
/// R(C) convex for walk-saturated workloads while keeping the
/// near-zero-overhead region linear (and extrapolable).
const MLP_ONSET: f64 = 0.35;
/// How many cycles of overlap "headroom" one cycle of independent work
/// contributes: out-of-order cores extract more slack than raw issue
/// cycles because loads, stores and ALU work interleave.
const HEADROOM_SUPPLY: f64 = 2.5;

/// Tunables of the timing model that are not platform-specific.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Overrides the platform's walk lookahead (how many cycles ahead of
    /// the retirement point the out-of-order front end can launch a page
    /// walk). `None` uses [`Platform::walk_lookahead`].
    pub walk_lookahead: Option<f64>,
    /// Page-table placement salt (varies physical layout between runs).
    pub salt: u64,
    /// When set, the machine runs virtualized with the guest backed by
    /// this host page size: TLB misses take two-dimensional walks
    /// (paper's Gandhi/Pham context).
    pub virtualized: Option<PageSize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            walk_lookahead: None,
            salt: 0x6d6f_7361_6963,
            virtualized: None,
        }
    }
}

/// The trace-driven execution engine for one platform.
///
/// # Example
///
/// ```
/// use machine::{Engine, Platform};
/// use vmcore::{PageSize, Region, VirtAddr};
/// use workloads::{TraceParams, WorkloadSpec};
///
/// let spec = WorkloadSpec::by_name("gups/8GB").unwrap();
/// let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 64 << 20);
/// let trace = spec.trace(&TraceParams::new(arena, 50_000, 7));
/// let mut engine = Engine::new(&Platform::SANDY_BRIDGE);
/// let counters = engine.run(trace, |_va| PageSize::Base4K);
/// assert!(counters.stlb_misses > 0, "gups with 4KB pages must walk");
/// assert!(counters.runtime_cycles > counters.instructions / 4);
/// ```
#[derive(Debug)]
pub struct Engine {
    platform: Platform,
    config: EngineConfig,
    vm: MemorySubsystem,
    /// Wall-clock (retirement-point) cycle counter.
    now: f64,
    /// Cycle at which each hardware walker becomes free.
    walker_free_at: Vec<f64>,
    /// Independent-work cycles banked since the last exposed stall,
    /// bounded by the reorder-buffer depth.
    headroom: f64,
    headroom_cap: f64,
    lookahead: f64,
    // Counter accumulators.
    /// Exponential moving average of "this access walked" — the walk
    /// density that throttles memory-level parallelism.
    walk_density: f64,
    instructions: u64,
    stlb_hits: u64,
    stlb_misses: u64,
    walk_cycles: u64,
}

impl Engine {
    /// Creates an engine with default configuration.
    pub fn new(platform: &Platform) -> Self {
        Self::with_config(platform, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(platform: &Platform, config: EngineConfig) -> Self {
        let rob_entries: f64 = match platform.arch {
            Microarch::SandyBridge => 168.0,
            Microarch::IvyBridge => 168.0,
            Microarch::Haswell => 192.0,
            Microarch::Broadwell => 224.0,
            Microarch::Skylake => 224.0,
        };
        Engine {
            lookahead: config.walk_lookahead.unwrap_or(platform.walk_lookahead),
            platform: platform.clone(),
            config,
            vm: match config.virtualized {
                Some(host_backing) => MemorySubsystem::virtualized(platform, host_backing),
                None => MemorySubsystem::with_salt(platform, config.salt),
            },
            now: 0.0,
            walker_free_at: vec![0.0; platform.walkers as usize],
            headroom: 0.0,
            headroom_cap: rob_entries / platform.issue_width,
            walk_density: 0.0,
            instructions: 0,
            stlb_hits: 0,
            stlb_misses: 0,
            walk_cycles: 0,
        }
    }

    /// The platform this engine models.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The engine configuration in effect.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Executes a trace to completion under the page-size assignment
    /// `page_size_at` (usually a Mosalloc layout), returning the PMU
    /// readout.
    ///
    /// An engine is single-use per measurement: `run` consumes the warmth
    /// of its TLBs and caches; construct a fresh engine per run for
    /// independent measurements.
    pub fn run<T, F>(&mut self, trace: T, page_size_at: F) -> PmuCounters
    where
        T: IntoIterator<Item = Access>,
        F: Fn(VirtAddr) -> PageSize,
    {
        for access in trace {
            self.step(&access, &page_size_at);
        }
        self.counters()
    }

    /// Processes a single access (exposed for fine-grained tests).
    pub fn step<F>(&mut self, access: &Access, page_size_at: &F)
    where
        F: Fn(VirtAddr) -> PageSize,
    {
        let issue_width = self.platform.issue_width;
        let stlb_exposed_frac = self.platform.stlb_exposed_frac;
        let l1d_lat = f64::from(self.platform.lat.l1d);
        let data_mlp = self.platform.data_mlp;

        // Base cost: this memory instruction plus its preceding
        // non-memory instructions, issued at the sustained width.
        let insts = 1 + u64::from(access.inst_gap);
        self.instructions += insts;
        let base = insts as f64 / issue_width;
        self.now += base;
        self.headroom = (self.headroom + base * HEADROOM_SUPPLY).min(self.headroom_cap);

        // One fused trip through the simulator: translation plus the data
        // reference. The subsystem resolves both against the same memoized
        // page entry, and the engine-local timing math below needs only
        // the outcome fields (the EMA and stall accounting between the
        // two halves never touched `vm`, so fusing them is
        // counter-invisible).
        let size = page_size_at(access.addr);
        let outcome = self.vm.access(access.addr, size);

        // Address translation.
        let mut walked = false;
        match outcome.translation {
            Translation::L1Hit => {}
            Translation::StlbHit { latency } => {
                self.stlb_hits += 1;
                // A second-level TLB hit sits on the address-generation
                // path: a dependent chase eats all 7 cycles, independent
                // streams overlap most of them.
                if access.dep {
                    self.now += f64::from(latency);
                } else {
                    self.now += f64::from(latency) * stlb_exposed_frac;
                }
            }
            Translation::Walk { info } => {
                self.stlb_misses += 1;
                self.walk_cycles += u64::from(info.cycles);
                self.account_walk(f64::from(info.cycles), access.dep);
                walked = true;
            }
        }
        self.walk_density = MISS_EMA_DECAY * self.walk_density
            + (1.0 - MISS_EMA_DECAY) * f64::from(u8::from(walked));

        // The data reference itself. L1 hits are pipelined (free beyond
        // the base cost). Independent loads expose their extra latency
        // divided by the core's memory-level parallelism; serially
        // dependent loads (pointer chases) expose almost all of it — the
        // next instruction cannot issue without the value.
        let extra = f64::from(outcome.data_latency) - l1d_lat;
        if extra > 0.0 {
            if access.dep {
                self.now += extra * DEP_EXPOSED;
            } else {
                // Frequent walks serialize their dependent loads and eat
                // miss-queue slots, shrinking the overlap available to
                // everything else once density passes the onset.
                let over = (self.walk_density - MLP_ONSET).max(0.0) / (1.0 - MLP_ONSET);
                let eff_mlp = (data_mlp * (1.0 - MLP_DEGRADE * over)).max(1.0);
                self.now += extra / eff_mlp;
            }
        }
    }

    /// Queueing + overlap model for one page walk of `walk` cycles.
    ///
    /// `dep` marks walks triggered by a pointer chase: their address is
    /// produced by the previous load, so the walker cannot start ahead of
    /// the retirement point and the chain limits overlap.
    fn account_walk(&mut self, walk: f64, dep: bool) {
        // The walk starts as early as a free walker and the lookahead
        // window allow.
        let (slot, earliest) = self
            .walker_free_at
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one walker");
        let lookahead = if dep { 0.0 } else { self.lookahead };
        let start = (self.now - lookahead).max(earliest);
        let end = start + walk;
        self.walker_free_at[slot] = end;

        // Only the part of the walk that completes after the retirement
        // point can stall retirement. Banked independent work hides up to
        // `walk_hide_cap` of that, and hiding degrades smoothly as the
        // bank drains: a core drowning in misses has nothing to overlap
        // them with (the convexity of paper Figures 3 and 10).
        let completion = (end - self.now).max(0.0);
        let fullness = (self.headroom / self.headroom_cap).clamp(0.0, 1.0);
        let cap = self.platform.walk_hide_cap * if dep { DEP_WALK_HIDE } else { 1.0 };
        let hide = (cap * completion * fullness).min(self.headroom);
        self.now += completion - hide;
        self.headroom -= hide;
    }

    /// The current simulated cycle count (the retirement-point clock,
    /// rounded the same way as `PmuCounters::runtime_cycles`). This is the
    /// tick source for sim-domain observability spans: it is a pure function
    /// of the trace and platform, so identical runs read identical values.
    pub fn cycles(&self) -> u64 {
        self.now.round() as u64
    }

    /// Reads out the accumulated counters.
    pub fn counters(&self) -> PmuCounters {
        let program = self.vm.memory().program_loads();
        let walker = self.vm.memory().walker_loads();
        PmuCounters {
            runtime_cycles: self.now.round() as u64,
            stlb_hits: self.stlb_hits,
            stlb_misses: self.stlb_misses,
            walk_cycles: self.walk_cycles,
            instructions: self.instructions,
            program_l1d_loads: program.l1d,
            program_l2_loads: program.l2,
            program_l3_loads: program.l3,
            walker_l1d_loads: walker.l1d,
            walker_l2_loads: walker.l2,
            walker_l3_loads: walker.l3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{Region, GIB, MIB};
    use workloads::{TraceParams, WorkloadSpec};

    fn arena(len: u64) -> Region {
        Region::new(VirtAddr::new(0x1000_0000_0000), len)
    }

    fn run(
        platform: &Platform,
        workload: &str,
        footprint: u64,
        accesses: u64,
        size: PageSize,
    ) -> PmuCounters {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        let a = arena(footprint);
        let trace = spec.trace(&TraceParams::new(a, accesses, 7));
        Engine::new(platform).run(trace, |_| size)
    }

    #[test]
    fn gups_4k_walks_constantly() {
        let c = run(
            &Platform::SANDY_BRIDGE,
            "gups/8GB",
            256 * MIB,
            60_000,
            PageSize::Base4K,
        );
        // Uniform random over 64K pages with 512+64 TLB entries: nearly
        // every read access misses (writes re-hit their read's entry).
        assert!(
            c.stlb_misses as f64 > 0.35 * 60_000.0,
            "misses {} of 60k accesses",
            c.stlb_misses
        );
        assert!(c.walk_cycles > 0);
        assert!(c.avg_walk_latency() >= 4.0);
    }

    #[test]
    fn hugepages_slash_runtime_for_gups() {
        let base = run(
            &Platform::SANDY_BRIDGE,
            "gups/8GB",
            256 * MIB,
            60_000,
            PageSize::Base4K,
        );
        let huge = run(
            &Platform::SANDY_BRIDGE,
            "gups/8GB",
            256 * MIB,
            60_000,
            PageSize::Huge1G,
        );
        assert!(
            huge.stlb_misses * 50 < base.stlb_misses,
            "1GB pages kill the misses"
        );
        assert!(
            (huge.runtime_cycles as f64) < 0.95 * base.runtime_cycles as f64,
            "TLB-sensitive: {} vs {}",
            huge.runtime_cycles,
            base.runtime_cycles
        );
    }

    #[test]
    fn runtime_monotone_in_page_size_for_tlb_bound_load() {
        let r4k = run(
            &Platform::HASWELL,
            "gups/8GB",
            512 * MIB,
            60_000,
            PageSize::Base4K,
        );
        let r2m = run(
            &Platform::HASWELL,
            "gups/8GB",
            512 * MIB,
            60_000,
            PageSize::Huge2M,
        );
        let r1g = run(
            &Platform::HASWELL,
            "gups/8GB",
            512 * MIB,
            60_000,
            PageSize::Huge1G,
        );
        assert!(r2m.runtime_cycles < r4k.runtime_cycles);
        assert!(r1g.runtime_cycles <= r2m.runtime_cycles);
        assert!(r2m.walk_cycles < r4k.walk_cycles);
    }

    #[test]
    fn broadwell_gups_walk_cycles_can_exceed_runtime() {
        // The two-walker double counting of paper §VI-D: for gups the C
        // counter outruns R on Broadwell.
        let c = run(
            &Platform::BROADWELL,
            "gups/16GB",
            GIB,
            120_000,
            PageSize::Base4K,
        );
        assert!(
            c.walk_cycles as f64 > 0.85 * c.runtime_cycles as f64,
            "C={} should approach/exceed R={}",
            c.walk_cycles,
            c.runtime_cycles
        );
        // Same workload on the single-walker SandyBridge: C stays below R.
        let snb = run(
            &Platform::SANDY_BRIDGE,
            "gups/16GB",
            GIB,
            120_000,
            PageSize::Base4K,
        );
        assert!(snb.walk_cycles < snb.runtime_cycles);
    }

    #[test]
    fn walker_loads_pollute_and_are_counted() {
        let c = run(
            &Platform::SANDY_BRIDGE,
            "spec06/mcf",
            128 * MIB,
            80_000,
            PageSize::Base4K,
        );
        assert!(c.walker_l1d_loads > 0);
        let huge = run(
            &Platform::SANDY_BRIDGE,
            "spec06/mcf",
            128 * MIB,
            80_000,
            PageSize::Huge1G,
        );
        assert!(huge.walker_l1d_loads < c.walker_l1d_loads / 10);
        // Table 7 effect: more total L3 traffic under 4KB than hugepages.
        assert!(c.total_l3_loads() >= huge.total_l3_loads());
    }

    #[test]
    fn instructions_independent_of_layout() {
        let a = run(
            &Platform::HASWELL,
            "xsbench/4GB",
            256 * MIB,
            40_000,
            PageSize::Base4K,
        );
        let b = run(
            &Platform::HASWELL,
            "xsbench/4GB",
            256 * MIB,
            40_000,
            PageSize::Huge2M,
        );
        assert_eq!(
            a.instructions, b.instructions,
            "layout must not change the program"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(
            &Platform::BROADWELL,
            "graph500/2GB",
            128 * MIB,
            30_000,
            PageSize::Base4K,
        );
        let b = run(
            &Platform::BROADWELL,
            "graph500/2GB",
            128 * MIB,
            30_000,
            PageSize::Base4K,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_layout_lands_between_uniform_extremes() {
        let spec = WorkloadSpec::by_name("gups/8GB").unwrap();
        let a = arena(256 * MIB);
        let mk_trace = || spec.trace(&TraceParams::new(a, 60_000, 7));
        let r4k = Engine::new(&Platform::SANDY_BRIDGE).run(mk_trace(), |_| PageSize::Base4K);
        let r2m = Engine::new(&Platform::SANDY_BRIDGE).run(mk_trace(), |_| PageSize::Huge2M);
        let mid = a.start() + a.len() / 2;
        let rmix = Engine::new(&Platform::SANDY_BRIDGE).run(mk_trace(), |va| {
            if va < mid {
                PageSize::Huge2M
            } else {
                PageSize::Base4K
            }
        });
        let lo = r2m.runtime_cycles.min(r4k.runtime_cycles);
        let hi = r2m.runtime_cycles.max(r4k.runtime_cycles);
        assert!(
            rmix.runtime_cycles >= lo && rmix.runtime_cycles <= hi,
            "mix {} outside [{lo}, {hi}]",
            rmix.runtime_cycles
        );
        assert!(rmix.walk_cycles < r4k.walk_cycles);
        assert!(rmix.walk_cycles > r2m.walk_cycles);
    }

    #[test]
    fn headroom_makes_sparse_misses_cheaper_per_walk_cycle() {
        // Marginal runtime per walk cycle should be smaller when misses are
        // sparse (2MB layout, few misses) than when dense (4KB): this is
        // the convexity the paper observed. Compare slope between
        // (C_2M→C_mix) and (C_mix→C_4K) segments for gups.
        let spec = WorkloadSpec::by_name("gups/16GB").unwrap();
        let a = arena(512 * MIB);
        let mk = || spec.trace(&TraceParams::new(a, 80_000, 3));
        let p = &Platform::SANDY_BRIDGE;
        let r2m = Engine::new(p).run(mk(), |_| PageSize::Huge2M);
        let cut = a.start() + a.len() / 2;
        let rmix = Engine::new(p).run(mk(), |va| {
            if va < cut {
                PageSize::Huge2M
            } else {
                PageSize::Base4K
            }
        });
        let r4k = Engine::new(p).run(mk(), |_| PageSize::Base4K);
        let slope_lo = (rmix.runtime_cycles as f64 - r2m.runtime_cycles as f64)
            / (rmix.walk_cycles as f64 - r2m.walk_cycles as f64);
        let slope_hi = (r4k.runtime_cycles as f64 - rmix.runtime_cycles as f64)
            / (r4k.walk_cycles as f64 - rmix.walk_cycles as f64);
        assert!(
            slope_lo < slope_hi,
            "convexity: low-density slope {slope_lo:.3} should be below high-density {slope_hi:.3}"
        );
    }
}
