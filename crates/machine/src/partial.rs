//! The standalone **partial simulator** of paper Figure 1.
//!
//! The paper's methodology feeds a runtime model with the output of a
//! partial simulator — a simulator of *only* the virtual-memory subsystem
//! that reports `(H, M, C)` but, crucially, **not** the runtime. The
//! paper itself ignores partial simulators ("we exclusively focus on the
//! complementary runtime models"); this module provides one anyway so
//! the complete Figure-1 workflow can be exercised end to end: partially
//! simulate a *hypothetical* processor, feed the counters to a model
//! trained on the *real* (simulated-real) processor, and compare the
//! predicted runtime with a full simulation of the hypothetical design
//! (see `harness::methodology`).
//!
//! It drives the same `memsim` structures as the full engine — including
//! the data-cache traffic, which page-walk latencies depend on — but
//! performs no cycle accounting at all, which is exactly what makes
//! partial simulation cheap on real traces.

use memsim::{MemorySubsystem, Platform, Translation};
use vmcore::{PageSize, VirtAddr};
use workloads::Access;

/// The `(H, M, C)` readout of a partial simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartialSimOutput {
    /// Translations that missed the L1 TLB but hit the L2 TLB.
    pub stlb_hits: u64,
    /// Translations that missed both TLB levels.
    pub stlb_misses: u64,
    /// Total page-walk cycles.
    pub walk_cycles: u64,
}

impl PartialSimOutput {
    /// Converts the output into a model-input sample with an *unknown*
    /// runtime (set to zero — partial simulations cannot observe it).
    pub fn sample(&self) -> mosmodel_sample::Sample {
        mosmodel_sample::Sample {
            r: 0.0,
            h: self.stlb_hits as f64,
            m: self.stlb_misses as f64,
            c: self.walk_cycles as f64,
            kind: mosmodel_sample::LayoutKind::Mixed,
        }
    }
}

/// Internal alias so this crate does not depend on `mosmodel` broadly.
mod mosmodel_sample {
    pub use mosmodel::dataset::{LayoutKind, Sample};
}

/// Partially simulates a trace on `platform` under the page-size
/// assignment `page_size_at`, reporting only virtual-memory metrics.
///
/// # Example
///
/// ```
/// use machine::{partial_sim, Platform};
/// use vmcore::{PageSize, Region, VirtAddr};
/// use workloads::{TraceParams, WorkloadSpec};
///
/// let spec = WorkloadSpec::by_name("gups/8GB").unwrap();
/// let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 64 << 20);
/// let trace = spec.trace(&TraceParams::new(arena, 20_000, 7));
/// let out = partial_sim(&Platform::HASWELL, trace, |_| PageSize::Base4K);
/// assert!(out.stlb_misses > 0);
/// assert!(out.walk_cycles > out.stlb_misses, "walks cost multiple cycles");
/// ```
pub fn partial_sim<T, F>(platform: &Platform, trace: T, page_size_at: F) -> PartialSimOutput
where
    T: IntoIterator<Item = Access>,
    F: Fn(VirtAddr) -> PageSize,
{
    let mut vm = MemorySubsystem::new(platform);
    let mut out = PartialSimOutput::default();
    for access in trace {
        let size = page_size_at(access.addr);
        match vm.translate(access.addr, size).translation {
            Translation::L1Hit => {}
            Translation::StlbHit { .. } => out.stlb_hits += 1,
            Translation::Walk { info } => {
                out.stlb_misses += 1;
                out.walk_cycles += u64::from(info.cycles);
            }
        }
        // Data references keep the cache state realistic: page-walk
        // latencies depend on what the program itself keeps resident.
        vm.data_access(access.addr, size);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use vmcore::Region;
    use workloads::{TraceParams, WorkloadSpec};

    fn trace(accesses: u64) -> impl Iterator<Item = Access> {
        let spec = WorkloadSpec::by_name("xsbench/4GB").unwrap();
        let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 128 << 20);
        spec.trace(&TraceParams::new(arena, accesses, 9))
    }

    #[test]
    fn partial_sim_matches_full_engine_counters() {
        // The partial simulator and the full engine must agree exactly on
        // (H, M, C): they drive identical structures; only the timing
        // model differs.
        let partial = partial_sim(&Platform::SANDY_BRIDGE, trace(30_000), |_| PageSize::Base4K);
        let full = Engine::new(&Platform::SANDY_BRIDGE).run(trace(30_000), |_| PageSize::Base4K);
        assert_eq!(partial.stlb_hits, full.stlb_hits);
        assert_eq!(partial.stlb_misses, full.stlb_misses);
        assert_eq!(partial.walk_cycles, full.walk_cycles);
    }

    #[test]
    fn different_designs_produce_different_counters() {
        let snb = partial_sim(&Platform::SANDY_BRIDGE, trace(30_000), |_| PageSize::Base4K);
        let bdw = partial_sim(&Platform::BROADWELL, trace(30_000), |_| PageSize::Base4K);
        assert!(
            bdw.stlb_misses < snb.stlb_misses,
            "a 3x larger STLB must miss less: {} vs {}",
            bdw.stlb_misses,
            snb.stlb_misses
        );
    }

    #[test]
    fn sample_conversion_carries_counters() {
        let out = PartialSimOutput {
            stlb_hits: 1,
            stlb_misses: 2,
            walk_cycles: 30,
        };
        let s = out.sample();
        assert_eq!((s.h, s.m, s.c), (1.0, 2.0, 30.0));
        assert_eq!(s.r, 0.0, "partial simulations cannot observe runtime");
    }
}
