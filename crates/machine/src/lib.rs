//! The execution engine: the workspace's stand-in for real hardware.
//!
//! The paper measures runtimes `R` and virtual-memory counters `(H, M, C)`
//! on three physical Xeon machines. Here, [`Engine`] plays that role: it
//! drives a workload's memory-access trace through the `memsim` partial
//! simulator and accounts wall-clock cycles with a mechanistic
//! out-of-order timing model. Two hardware behaviours that the paper
//! *discovered* through Mosalloc emerge from the model rather than being
//! painted on:
//!
//! * **Latency hiding improves as misses thin out** (paper Figure 3/10):
//!   the reorder buffer accumulates independent-work "headroom" between
//!   misses, and a page walk can only be overlapped with headroom that
//!   exists; dense misses leave none, sparse misses leave plenty.
//! * **Walk-induced slowdown can exceed the walk cycles themselves**
//!   (paper Figure 9, Table 7): walker references flow through the same
//!   L1d/L2/L3 as program data and evict warm lines; the extra program
//!   misses cost runtime that no walk-cycle counter sees.
//!
//! On Broadwell, two hardware walkers serve misses concurrently while the
//! `C` counter sums both walkers' active cycles — so `C` can exceed `R`
//! for walk-saturated workloads (gups), reproducing the negative-β
//! pathology of the Basu model (paper §VI-D).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod partial;
mod profiler;

pub use engine::{Engine, EngineConfig};
pub use memsim::{Microarch, Platform};
pub use partial::{partial_sim, PartialSimOutput};
pub use profiler::{profile_tlb_misses, MissProfile};
