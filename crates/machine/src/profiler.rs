//! PEBS-like TLB-miss profiling.
//!
//! The paper's Sliding Window heuristic needs to know *where* a workload's
//! TLB misses fall in its address space (§VI-B step 1: "collect the
//! workload's TLB miss trace with PEBS"). [`profile_tlb_misses`] plays the
//! role of PEBS: it runs the trace through the TLBs only (no timing) and
//! histograms second-level misses over fixed-size chunks of the arena.

use memsim::{MemorySubsystem, Platform, Translation};
use vmcore::{PageSize, Region};
use workloads::Access;

/// Histogram of L2-TLB misses over an arena.
#[derive(Clone, Debug, PartialEq)]
pub struct MissProfile {
    arena: Region,
    chunk: u64,
    counts: Vec<u64>,
}

impl MissProfile {
    /// The profiled arena.
    pub fn arena(&self) -> Region {
        self.arena
    }

    /// Chunk granularity in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk
    }

    /// Miss count per chunk, lowest address first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total misses recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Finds the smallest contiguous chunk range accounting for at least
    /// `fraction` (0..=1) of all misses — the paper's "hot region".
    ///
    /// Scans all windows with a two-pointer sweep, preferring the
    /// shortest; returns the region in virtual addresses. Returns the full
    /// arena when there are no misses.
    pub fn hot_region(&self, fraction: f64) -> Region {
        let total = self.total();
        if total == 0 || self.counts.is_empty() {
            return self.arena;
        }
        let need = (fraction.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut best: Option<(usize, usize)> = None; // [lo, hi)
        let mut lo = 0usize;
        let mut sum = 0u64;
        for hi in 0..self.counts.len() {
            sum += self.counts[hi];
            while sum >= need {
                let len = hi + 1 - lo;
                if best.is_none_or(|(blo, bhi)| len < bhi - blo) {
                    best = Some((lo, hi + 1));
                }
                sum -= self.counts[lo];
                lo += 1;
            }
        }
        match best {
            Some((blo, bhi)) => {
                let start = self.arena.start() + blo as u64 * self.chunk;
                let end_off = (bhi as u64 * self.chunk).min(self.arena.len());
                Region::new(start, end_off - blo as u64 * self.chunk)
            }
            None => self.arena,
        }
    }
}

/// Profiles the L2-TLB misses a trace incurs with an all-4KB layout,
/// bucketing by `chunk_bytes` chunks of `arena`.
///
/// Accesses outside the arena are counted against their nearest end chunk.
///
/// # Panics
///
/// Panics if `chunk_bytes == 0` or the arena is empty.
pub fn profile_tlb_misses<T>(
    platform: &Platform,
    trace: T,
    arena: Region,
    chunk_bytes: u64,
) -> MissProfile
where
    T: IntoIterator<Item = Access>,
{
    assert!(chunk_bytes > 0, "zero chunk size");
    assert!(!arena.is_empty(), "empty arena");
    let chunks = arena.len().div_ceil(chunk_bytes) as usize;
    let mut counts = vec![0u64; chunks];
    let mut vm = MemorySubsystem::new(platform);
    for access in trace {
        if let Translation::Walk { .. } = vm.translate(access.addr, PageSize::Base4K).translation {
            let off = access.addr.raw().saturating_sub(arena.start().raw());
            let idx = ((off / chunk_bytes) as usize).min(chunks - 1);
            counts[idx] += 1;
        }
    }
    MissProfile {
        arena,
        chunk: chunk_bytes,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, MIB};
    use workloads::{TraceParams, WorkloadSpec};

    fn arena() -> Region {
        Region::new(VirtAddr::new(0x2000_0000_0000), 128 * MIB)
    }

    fn profile(workload: &str) -> MissProfile {
        let spec = WorkloadSpec::by_name(workload).unwrap();
        let trace = spec.trace(&TraceParams::new(arena(), 60_000, 5));
        profile_tlb_misses(&Platform::SANDY_BRIDGE, trace, arena(), 2 * MIB)
    }

    #[test]
    fn gups_misses_spread_uniformly() {
        let p = profile("gups/8GB");
        assert!(p.total() > 10_000);
        // The hot region for 50% of uniform misses is ~half the arena.
        let hot = p.hot_region(0.5);
        let frac = hot.len() as f64 / p.arena().len() as f64;
        assert!(frac > 0.3 && frac < 0.7, "uniform hot fraction {frac:.2}");
    }

    #[test]
    fn graph500_misses_concentrate_at_heap_top() {
        let p = profile("graph500/2GB");
        let hot = p.hot_region(0.6);
        // Hot region should be a small slice near the arena top (the
        // paper's 80MB-at-the-top observation).
        assert!(
            hot.len() * 3 < p.arena().len(),
            "hot region {} of {} bytes",
            hot.len(),
            p.arena().len()
        );
        assert!(
            hot.end() > p.arena().start() + p.arena().len() * 3 / 4,
            "hot at the top"
        );
    }

    #[test]
    fn hot_region_fraction_monotone() {
        let p = profile("graph500/2GB");
        let h40 = p.hot_region(0.4);
        let h80 = p.hot_region(0.8);
        assert!(h40.len() <= h80.len());
    }

    #[test]
    fn empty_profile_returns_arena() {
        let p = MissProfile {
            arena: arena(),
            chunk: 2 * MIB,
            counts: vec![0; 64],
        };
        assert_eq!(p.hot_region(0.8), arena());
    }

    #[test]
    fn chunk_accounting_sums_to_total() {
        let p = profile("xsbench/4GB");
        assert_eq!(p.total(), p.counts().iter().sum::<u64>());
        assert_eq!(p.counts().len(), 64);
    }
}
