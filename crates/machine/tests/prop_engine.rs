//! Property tests for the execution engine's accounting invariants.

use machine::{Engine, Platform};
use proptest::prelude::*;
use vmcore::{PageSize, Region, VirtAddr};
use workloads::{Access, TraceParams, WorkloadSpec};

fn arena() -> Region {
    Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20)
}

/// An arbitrary synthetic trace within the arena.
fn trace_strategy() -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec(
        (0u64..(256 << 20), 0u32..20, any::<bool>(), any::<bool>()),
        1..400,
    )
    .prop_map(|ops| {
        ops.into_iter()
            .map(|(off, gap, write, dep)| Access {
                addr: arena().start() + (off & !7),
                write,
                inst_gap: gap,
                dep,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fundamental accounting: instructions equal the trace's own count,
    /// H + M never exceeds the number of accesses, and runtime covers at
    /// least the issue cycles.
    #[test]
    fn counter_accounting(trace in trace_strategy()) {
        let expect_insts: u64 = trace.iter().map(|a| 1 + u64::from(a.inst_gap)).sum();
        let n = trace.len() as u64;
        for platform in Platform::ALL {
            let c = Engine::new(platform).run(trace.clone(), |_| PageSize::Base4K);
            prop_assert_eq!(c.instructions, expect_insts);
            prop_assert!(c.stlb_hits + c.stlb_misses <= n);
            let min_cycles = (expect_insts as f64 / platform.issue_width) as u64;
            prop_assert!(
                c.runtime_cycles >= min_cycles.saturating_sub(1),
                "R {} below issue floor {min_cycles}",
                c.runtime_cycles
            );
        }
    }

    /// Walk cycles appear if and only if misses occurred, and average walk
    /// latency stays within the hierarchy's physical bounds.
    #[test]
    fn walk_cycles_iff_misses(trace in trace_strategy()) {
        let platform = &Platform::SANDY_BRIDGE;
        let c = Engine::new(platform).run(trace, |_| PageSize::Base4K);
        prop_assert_eq!(c.stlb_misses == 0, c.walk_cycles == 0);
        if c.stlb_misses > 0 {
            let avg = c.avg_walk_latency();
            prop_assert!(avg >= f64::from(platform.lat.l1d));
            prop_assert!(avg <= 4.0 * f64::from(platform.lat.dram));
        }
    }

    /// The engine is a pure function of (platform, trace, layout).
    #[test]
    fn engine_determinism(trace in trace_strategy()) {
        let a = Engine::new(&Platform::BROADWELL).run(trace.clone(), |_| PageSize::Base4K);
        let b = Engine::new(&Platform::BROADWELL).run(trace, |_| PageSize::Base4K);
        prop_assert_eq!(a, b);
    }

    /// Growing the hugepage window monotonically reduces walk cycles for
    /// a uniform random workload (more coverage -> fewer, cheaper walks).
    #[test]
    fn coverage_monotonically_reduces_walks(split_idx in 0usize..5) {
        let spec = WorkloadSpec::by_name("gups/8GB").unwrap();
        let params = TraceParams::new(arena(), 20_000, 5);
        let splits = [0u64, 64 << 20, 128 << 20, 192 << 20, 256 << 20];
        let lo = splits[split_idx];
        let hi = (lo + (64 << 20)).min(256 << 20);
        let run_with_cut = |cut: u64| {
            let boundary = arena().start() + cut;
            Engine::new(&Platform::HASWELL).run(spec.trace(&params), move |va| {
                if va < boundary {
                    PageSize::Huge2M
                } else {
                    PageSize::Base4K
                }
            })
        };
        let less = run_with_cut(lo);
        let more = run_with_cut(hi);
        prop_assert!(
            more.walk_cycles <= less.walk_cycles,
            "2MB coverage {hi} should walk no more than {lo}: {} vs {}",
            more.walk_cycles,
            less.walk_cycles
        );
    }

    /// Program cache-load counters are consistent: the deeper the level,
    /// the fewer the loads, and L1d loads equal the number of accesses.
    #[test]
    fn cache_load_counters_nest(trace in trace_strategy()) {
        let n = trace.len() as u64;
        let c = Engine::new(&Platform::HASWELL).run(trace, |_| PageSize::Base4K);
        prop_assert_eq!(c.program_l1d_loads, n);
        prop_assert!(c.program_l2_loads <= c.program_l1d_loads);
        prop_assert!(c.program_l3_loads <= c.program_l2_loads);
        prop_assert!(c.walker_l2_loads <= c.walker_l1d_loads);
        prop_assert!(c.walker_l3_loads <= c.walker_l2_loads);
    }

    /// Hugepages never *increase* TLB misses for any trace (fewer,
    /// larger translations always cover at least as much as 4KB ones on
    /// the shared-STLB Haswell).
    #[test]
    fn hugepages_do_not_increase_misses(trace in trace_strategy()) {
        let m4k = Engine::new(&Platform::HASWELL)
            .run(trace.clone(), |_| PageSize::Base4K)
            .stlb_misses;
        let m1g = Engine::new(&Platform::HASWELL)
            .run(trace, |_| PageSize::Huge1G)
            .stlb_misses;
        // The arena fits one 1GB page; after the first cold walk there
        // can be no further misses.
        prop_assert!(m1g <= m4k.max(1), "1GB misses {m1g} vs 4KB {m4k}");
        prop_assert!(m1g <= 1);
    }
}
