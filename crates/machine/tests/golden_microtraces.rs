//! Golden tests: tiny hand-built traces on a hand-built platform, with
//! counter values verified against pencil-and-paper expectations.

use machine::{Engine, Platform};
use memsim::{PwcGeometry, StlbGeometry, TlbGeometry};
use vmcore::{PageSize, VirtAddr};
use workloads::Access;

/// A deliberately tiny machine: 1-entry L1 TLBs, 2-entry STLB, so that
/// hit/miss sequences can be computed by hand.
fn tiny_platform() -> Platform {
    Platform {
        name: "Tiny",
        l1_tlb_4k: TlbGeometry {
            entries: 1,
            ways: 1,
        },
        l1_tlb_2m: TlbGeometry {
            entries: 1,
            ways: 1,
        },
        l1_tlb_1g: TlbGeometry {
            entries: 1,
            ways: 1,
        },
        stlb: StlbGeometry {
            entries: 2,
            ways: 2,
            holds_2m: true,
            entries_1g: 0,
        },
        pwc: PwcGeometry {
            pml4e: 4,
            pdpte: 4,
            pde: 32,
        },
        ..Platform::SANDY_BRIDGE
    }
}

fn read(page: u64) -> Access {
    Access::read(VirtAddr::new(0x4000_0000 + page * 4096), 2)
}

#[test]
fn empty_trace_is_all_zeros() {
    let c = Engine::new(&tiny_platform()).run(std::iter::empty(), |_| PageSize::Base4K);
    assert_eq!(c.runtime_cycles, 0);
    assert_eq!(c.instructions, 0);
    assert_eq!(c.stlb_hits + c.stlb_misses + c.walk_cycles, 0);
    assert_eq!(c.program_l1d_loads, 0);
}

#[test]
fn alternating_pages_hand_computed_h_and_m() {
    // Trace: A B A B A B with a 1-entry L1 and a 2-entry STLB.
    //   A: L1 miss, STLB miss -> walk (M)
    //   B: L1 miss (evicts A from L1), STLB miss -> walk (M)
    //   A: L1 miss, STLB hit (H)    B: L1 miss, STLB hit (H)
    //   A: H                        B: H
    let trace: Vec<Access> = (0..6).map(|i| read(i % 2)).collect();
    let c = Engine::new(&tiny_platform()).run(trace, |_| PageSize::Base4K);
    assert_eq!(c.stlb_misses, 2, "two cold walks");
    assert_eq!(c.stlb_hits, 4, "every revisit is an STLB hit");
    assert_eq!(c.program_l1d_loads, 6);
    assert_eq!(c.instructions, 6 * 3, "1 memory + 2 gap instructions each");
}

#[test]
fn single_page_only_misses_once() {
    let trace: Vec<Access> = (0..10).map(|_| read(0)).collect();
    let c = Engine::new(&tiny_platform()).run(trace, |_| PageSize::Base4K);
    assert_eq!(c.stlb_misses, 1);
    assert_eq!(c.stlb_hits, 0, "L1 holds the single page after the walk");
}

#[test]
fn three_pages_thrash_the_two_entry_stlb() {
    // Cycling A B C through a 2-entry LRU STLB: after the cold walks,
    // every access evicted its entry two steps ago -> all walks, no hits.
    let trace: Vec<Access> = (0..9).map(|i| read(i % 3)).collect();
    let c = Engine::new(&tiny_platform()).run(trace, |_| PageSize::Base4K);
    assert_eq!(c.stlb_hits, 0, "LRU cycling over capacity never hits");
    assert_eq!(c.stlb_misses, 9);
}

#[test]
fn adjacent_page_walk_uses_pde_cache() {
    // Page 0 walks cold (4 refs); page 1 shares its PT node, so the PDE
    // cache shortens the walk to the single leaf reference.
    let mut engine = Engine::new(&tiny_platform());
    let resolver = |_va| PageSize::Base4K;
    engine.step(&read(0), &resolver);
    let after_first = engine.counters();
    assert_eq!(
        after_first.walker_l1d_loads, 4,
        "cold walk references 4 levels"
    );
    engine.step(&read(1), &resolver);
    let after_second = engine.counters();
    assert_eq!(
        after_second.walker_l1d_loads - after_first.walker_l1d_loads,
        1,
        "warm PDE cache leaves only the leaf reference"
    );
}

#[test]
fn runtime_is_at_least_issue_plus_exposed_walks() {
    let platform = tiny_platform();
    let trace: Vec<Access> = (0..100).map(|i| read(i % 3)).collect();
    let c = Engine::new(&platform).run(trace, |_| PageSize::Base4K);
    let issue_floor = (300.0 / platform.issue_width) as u64;
    assert!(c.runtime_cycles >= issue_floor);
    // And bounded above by fully exposed everything.
    let ceiling = issue_floor + c.walk_cycles + 100 * u64::from(platform.lat.dram);
    assert!(
        c.runtime_cycles <= ceiling,
        "{} > {ceiling}",
        c.runtime_cycles
    );
}

#[test]
fn hugepage_resolver_collapses_all_pages_into_one() {
    // All 4KB pages of the trace live in one 2MB page: after one cold
    // walk everything L1-hits even on the tiny machine.
    let trace: Vec<Access> = (0..12).map(|i| read(i % 4)).collect();
    let c = Engine::new(&tiny_platform()).run(trace, |_| PageSize::Huge2M);
    assert_eq!(c.stlb_misses, 1);
    assert_eq!(c.stlb_hits, 0);
}

#[test]
fn every_extended_platform_runs_end_to_end() {
    // Instantiating the engine exercises every cache geometry; the
    // Skylake L3 bug this guards against was caught by Platform::validate.
    for platform in Platform::ALL_EXTENDED {
        let trace: Vec<Access> = (0..200).map(|i| read(i % 50)).collect();
        let c = Engine::new(platform).run(trace, |_| PageSize::Base4K);
        assert!(c.runtime_cycles > 0, "{}", platform.name);
        assert_eq!(c.program_l1d_loads, 200, "{}", platform.name);
    }
}

#[test]
fn write_accesses_count_like_reads_in_translation() {
    let mut writes: Vec<Access> = Vec::new();
    for i in 0..6 {
        writes.push(Access::write(
            VirtAddr::new(0x4000_0000 + (i % 2) * 4096),
            2,
        ));
    }
    let c = Engine::new(&tiny_platform()).run(writes, |_| PageSize::Base4K);
    assert_eq!(c.stlb_misses, 2);
    assert_eq!(c.stlb_hits, 4);
}
