//! Rule 7 — wire conformance, the one cross-file rule.
//!
//! The wire protocol's source of truth is `service/src/protocol.rs`:
//! every request verb is a `Some("<verb>") => ...` arm inside
//! `parse_request`. A verb is only *shipped* when four more cells
//! exist: a dispatch/render arm in `service/src/server.rs`, a
//! `Client::` method in `service/src/client.rs`, a CLI frontend in
//! `src/main.rs`, and a README mention. Any missing cell is a finding
//! anchored at the verb's literal in `parse_request`, so verbs cannot
//! silently drift out of the client, the CLI, or the docs (deleting
//! `Client::warm` fails the audit — a test proves it).
//!
//! "Mentioned" means the verb appears as an identifier or as a
//! whole word inside a string literal, in production (non-test) code —
//! a comment does not count as a client method. The rule runs at the
//! workspace level ([`crate::workspace::audit_files`]) because it needs
//! several files at once; findings honor `audit:allow(wire-conformance)`
//! suppressions in `protocol.rs` like any other rule.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::fn_body_named;
use crate::source::FileView;

/// The rule id this module emits.
pub const RULE: &str = "wire-conformance";

/// Extracts the protocol's verb table: `(verb, token index of the
/// string literal)` for every `Some("<verb>") =>` arm inside
/// `fn parse_request`, in source order, first occurrence wins.
pub fn parse_request_verbs(view: &FileView<'_>) -> Vec<(String, usize)> {
    let Some((start, end)) = fn_body_named(view, "parse_request") else {
        return Vec::new();
    };
    let text = |p: usize| view.tokens[view.code[p]].text;
    let mut verbs: Vec<(String, usize)> = Vec::new();
    for p in start..end.saturating_sub(5) {
        if text(p) != "Some" || text(p + 1) != "(" {
            continue;
        }
        let lit = &view.tokens[view.code[p + 2]];
        if lit.kind != TokenKind::Str
            || text(p + 3) != ")"
            || text(p + 4) != "="
            || text(p + 5) != ">"
        {
            continue;
        }
        let verb = lit.text.trim_matches('"');
        if verb.is_empty()
            || !verb
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            continue;
        }
        if !verbs.iter().any(|(v, _)| v == verb) {
            verbs.push((verb.to_string(), view.code[p + 2]));
        }
    }
    verbs
}

/// Does `text` contain `word` delimited by non-word characters
/// (`_` counts as a word character, so `warm_pairs` is not a mention
/// of `warm`)?
fn word_in(text: &str, word: &str) -> bool {
    text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
        .any(|w| w == word)
}

/// Does the file mention `verb` in production code — as an identifier
/// (`Client::warm`, `cmd_recommend` does not count; the bare ident
/// `warm` does) or as a whole word inside a string literal
/// (`"warm {workload}"`)?
fn mentions_verb(view: &FileView<'_>, verb: &str) -> bool {
    view.code.iter().any(|&idx| {
        let t = &view.tokens[idx];
        match t.kind {
            TokenKind::Ident => t.text == verb,
            TokenKind::Str => word_in(t.text, verb),
            _ => false,
        }
    })
}

/// Runs the conformance matrix over one workspace's views (plus the
/// README text, which is not a Rust file). Returns findings anchored in
/// `protocol.rs`, already filtered through its suppressions.
pub fn check_conformance(views: &[FileView<'_>], readme: Option<&str>) -> Vec<Diagnostic> {
    let Some(proto) = views
        .iter()
        .find(|v| v.path.ends_with("service/src/protocol.rs"))
    else {
        return Vec::new();
    };
    let verbs = parse_request_verbs(proto);
    if verbs.is_empty() {
        return Vec::new();
    }
    let file = |suffix: &str| views.iter().find(|v| v.path.ends_with(suffix));
    let server = file("service/src/server.rs");
    let client = file("service/src/client.rs");
    let cli = views.iter().find(|v| v.path == "src/main.rs");

    let mut out = Vec::new();
    for (verb, idx) in &verbs {
        let cells: [(Option<&FileView<'_>>, &str); 3] = [
            (server, "a dispatch/render arm in service/src/server.rs"),
            (client, "a `Client::` method in service/src/client.rs"),
            (cli, "a CLI frontend in src/main.rs"),
        ];
        let mut missing: Vec<&str> = cells
            .iter()
            .filter(|(view, _)| !view.is_some_and(|v| mentions_verb(v, verb)))
            .map(|&(_, what)| what)
            .collect();
        if !readme.is_some_and(|text| word_in(text, verb)) {
            missing.push("a README.md mention");
        }
        for what in missing {
            out.push(proto.diag_at(
                RULE,
                *idx,
                format!(
                    "wire verb `{verb}` has a parser arm but is missing {what}; a verb \
                     ships with all five cells (parser, server arm, client method, CLI, \
                     docs) or not at all"
                ),
            ));
        }
    }
    out.retain(|d| !proto.is_suppressed(d));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_IDS;

    const PROTO: &str = "//! codec\n\
        pub fn parse_request(line: &str) -> Result<u32, String> {\n\
            let mut words = line.split_ascii_whitespace();\n\
            match words.next() {\n\
                Some(\"predict\") => Ok(1),\n\
                Some(\"frob\") => Ok(2),\n\
                _ => Err(\"unknown\".to_string()),\n\
            }\n\
        }\n";

    fn views<'a>(files: &'a [(&'a str, &'a str)]) -> Vec<FileView<'a>> {
        files
            .iter()
            .map(|(p, t)| FileView::new(p, t, &RULE_IDS))
            .collect()
    }

    #[test]
    fn verbs_are_extracted_from_parse_request_only() {
        let src = "fn parse_warm(l: &str) -> bool { l.split(' ').next() != Some(\"warm\") }\n\
                   pub fn parse_request(l: &str) -> u32 {\n\
                       match l.split(' ').next() {\n\
                           Some(\"predict\") => 1,\n\
                           Some(\"predict\") => 1,\n\
                           Some(\"pairs\") => 2,\n\
                           None => 0,\n\
                           _ => 0,\n\
                       }\n\
                   }\n";
        let v = FileView::new("crates/service/src/protocol.rs", src, &RULE_IDS);
        let verbs: Vec<String> = parse_request_verbs(&v)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(verbs, vec!["predict".to_string(), "pairs".to_string()]);
    }

    #[test]
    fn a_fully_wired_verb_is_clean_and_each_missing_cell_is_one_finding() {
        let full = [
            ("crates/service/src/protocol.rs", PROTO),
            (
                "crates/service/src/server.rs",
                "fn dispatch(v: &str) -> u32 { u32::from(v == \"predict\" || v == \"frob\") }\n",
            ),
            (
                "crates/service/src/client.rs",
                "impl Client { fn predict(&self) {} fn frob(&self) {} }\n",
            ),
            ("src/main.rs", "fn main() { run(\"predict or frob\"); }\n"),
        ];
        let clean = check_conformance(&views(&full), Some("docs: predict, frob"));
        assert_eq!(clean, vec![]);

        // Drop `frob` from the client: exactly one finding, at the
        // verb's literal in protocol.rs.
        let mut drifted = full;
        drifted[2].1 = "impl Client { fn predict(&self) {} }\n";
        let diags = check_conformance(&views(&drifted), Some("docs: predict, frob"));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "wire-conformance");
        assert_eq!(diags[0].path, "crates/service/src/protocol.rs");
        assert!(diags[0].message.contains("`frob`"));
        assert!(diags[0].message.contains("Client"));

        // Drop the README mention too: a second finding for the verb.
        let diags = check_conformance(&views(&drifted), Some("docs: predict only"));
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn comments_and_compound_identifiers_are_not_mentions() {
        let files = [
            ("crates/service/src/protocol.rs", PROTO),
            (
                "crates/service/src/server.rs",
                "// the frob verb is handled elsewhere, honest\n\
                 fn dispatch(v: &str) -> bool { v == \"predict\" || frob_helper() }\n",
            ),
            (
                "crates/service/src/client.rs",
                "impl Client { fn predict(&self) {} fn frob(&self) {} }\n",
            ),
            ("src/main.rs", "fn main() { run(\"predict frob\"); }\n"),
        ];
        let diags = check_conformance(&views(&files), Some("predict and frob"));
        // `frob_helper` is not a mention of `frob`; the comment is not
        // either — the server cell is missing.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("server.rs"));
    }

    #[test]
    fn suppressions_in_protocol_rs_are_honored() {
        let proto = "pub fn parse_request(l: &str) -> u32 {\n\
                     match l.split(' ').next() {\n\
                         // audit:allow(wire-conformance) internal debug verb, deliberately undocumented\n\
                         Some(\"frob\") => 2,\n\
                         _ => 0,\n\
                     }\n\
                 }\n";
        let files = [("crates/service/src/protocol.rs", proto)];
        assert_eq!(check_conformance(&views(&files), None), vec![]);
    }

    #[test]
    fn no_protocol_file_means_no_findings() {
        let files = [("crates/service/src/server.rs", "fn x() {}\n")];
        assert_eq!(check_conformance(&views(&files), None), vec![]);
    }
}
