//! Workspace traversal: find the `.rs` sources the audit governs, lex
//! each exactly once, and run the per-file rules plus the cross-file
//! wire-conformance pass over the shared [`FileView`]s.
//!
//! The walk is deterministic (paths sorted at every level — an audit of
//! determinism had better not report findings in random order) and
//! skips build output (`target/`), the offline dependency stand-ins
//! (`vendor/` mirrors external crates we do not own), version-control
//! internals, and the audit crate's own fixture tree (those files are
//! *deliberately* full of violations).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::conformance::check_conformance;
use crate::diag::Diagnostic;
use crate::rules::{check_file, RULE_IDS};
use crate::source::FileView;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// Path suffixes (workspace-relative) never descended into.
const SKIP_SUFFIXES: [&str; 1] = ["crates/audit/tests/fixtures"];

/// The outcome of one full audit: the findings plus the bookkeeping the
/// `--summary` footer and the suppression-budget gate need.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// All findings, sorted by `(path, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files the audit examined.
    pub files_scanned: usize,
    /// Honored `audit:allow` waivers per rule id, across every scanned
    /// file (a comment allowing two rules counts once for each).
    pub suppressions: BTreeMap<String, usize>,
}

/// Audits one file's text as if it lived at `rel_path` (workspace
/// relative, `/`-separated). Runs the per-file rules only — the
/// cross-file wire-conformance pass needs a whole workspace, so it
/// lives in [`audit_files`]. The fixture tests call this directly.
pub fn audit_file(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let view = FileView::new(rel_path, text, &RULE_IDS);
    check_file(&view)
}

/// Audits a set of `(rel_path, text)` sources as one workspace: each
/// file is lexed and block-parsed exactly once into a [`FileView`], the
/// per-file rules and the cross-file wire-conformance pass all share
/// those views, and `readme` (the workspace `README.md`, when present)
/// feeds the conformance matrix's docs column. Diagnostics come back
/// sorted by `(path, line, col, rule)`.
pub fn audit_files(files: &[(String, String)], readme: Option<&str>) -> AuditReport {
    let views: Vec<FileView<'_>> = files
        .iter()
        .map(|(path, text)| FileView::new(path, text, &RULE_IDS))
        .collect();
    let mut diags = Vec::new();
    let mut suppressions: BTreeMap<String, usize> = BTreeMap::new();
    for view in &views {
        diags.extend(check_file(view));
        for s in &view.suppressions {
            for rule in &s.rules {
                *suppressions.entry(rule.clone()).or_insert(0) += 1;
            }
        }
    }
    diags.extend(check_conformance(&views, readme));
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    diags.dedup();
    AuditReport {
        diagnostics: diags,
        files_scanned: views.len(),
        suppressions,
    }
}

/// Walks the workspace under `root` and audits every governed source
/// (plus `root/README.md` for the wire-conformance docs column).
///
/// # Errors
///
/// Propagates directory-read failures on the root itself; unreadable
/// files below it are skipped (the audit must not be DoS-able by a
/// dangling symlink).
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut paths = Vec::new();
    collect_sources(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for rel in paths {
        let Ok(text) = fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel_str, text));
    }
    let readme = fs::read_to_string(root.join("README.md")).ok();
    Ok(audit_files(&files, readme.as_deref()))
}

fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Ok(rel) = path.strip_prefix(root) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str())
                || SKIP_SUFFIXES.iter().any(|s| rel_str.ends_with(s))
            {
                continue;
            }
            // Unreadable subdirectories are skipped, not fatal.
            let _ = collect_sources(root, &path, out);
        } else if rel_str.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_invocations;

    #[test]
    fn skips_vendor_target_and_fixtures() {
        let dir = std::env::temp_dir().join(format!("mosaic-audit-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for sub in [
            "crates/memsim/src",
            "vendor/rand/src",
            "target/debug",
            "crates/audit/tests/fixtures/bad",
        ] {
            fs::create_dir_all(dir.join(sub)).unwrap();
        }
        let bad = "use std::collections::HashMap;\n";
        fs::write(dir.join("crates/memsim/src/lib.rs"), bad).unwrap();
        fs::write(dir.join("vendor/rand/src/lib.rs"), bad).unwrap();
        fs::write(dir.join("target/debug/gen.rs"), bad).unwrap();
        fs::write(dir.join("crates/audit/tests/fixtures/bad/x.rs"), bad).unwrap();

        let report = audit_workspace(&dir).unwrap();
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].path, "crates/memsim/src/lib.rs");
        assert_eq!(report.files_scanned, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn each_file_is_lexed_exactly_once_per_audit() {
        // A workspace whose files all participate in the cross-file
        // wire-conformance pass — if that pass re-read or re-lexed
        // anything, the invocation count would exceed the file count.
        let files: Vec<(String, String)> = [
            (
                "crates/service/src/protocol.rs",
                "pub fn parse_request(l: &str) -> u32 {\n\
                     match l.split(' ').next() { Some(\"predict\") => 1, _ => 0 }\n\
                 }\n",
            ),
            (
                "crates/service/src/server.rs",
                "fn dispatch(v: &str) -> bool { v == \"predict\" }\n",
            ),
            (
                "crates/service/src/client.rs",
                "impl Client { fn predict(&self) {} }\n",
            ),
            ("src/main.rs", "fn main() { run(\"predict\"); }\n"),
        ]
        .into_iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();

        let before = lex_invocations();
        let report = audit_files(&files, Some("mosaicd speaks `predict` over TCP"));
        let lexed = lex_invocations() - before;
        assert_eq!(
            lexed,
            files.len() as u64,
            "one lex per file, shared by all rules"
        );
        assert_eq!(report.diagnostics, vec![], "workspace should be clean");
        assert_eq!(report.files_scanned, files.len());
    }

    #[test]
    fn report_counts_honored_suppressions_per_rule() {
        let files = vec![
            (
                "crates/memsim/src/tlb.rs".to_string(),
                "// audit:allow(determinism) memo map is sorted before serialization\n\
                 use std::collections::HashMap;\n"
                    .to_string(),
            ),
            (
                "crates/service/src/cache.rs".to_string(),
                "// audit:allow(determinism, arith-safety) cold-path stats, bounded inputs\n\
                 fn touch() {}\n"
                    .to_string(),
            ),
        ];
        let report = audit_files(&files, None);
        assert_eq!(report.diagnostics, vec![], "{:?}", report.diagnostics);
        assert_eq!(report.suppressions.get("determinism"), Some(&2));
        assert_eq!(report.suppressions.get("arith-safety"), Some(&1));
    }
}
