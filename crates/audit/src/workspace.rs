//! Workspace traversal: find the `.rs` sources the audit governs.
//!
//! The walk is deterministic (paths sorted at every level — an audit of
//! determinism had better not report findings in random order) and
//! skips build output (`target/`), the offline dependency stand-ins
//! (`vendor/` mirrors external crates we do not own), version-control
//! internals, and the audit crate's own fixture tree (those files are
//! *deliberately* full of violations).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::rules::{check_file, RULE_IDS};
use crate::source::FileView;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// Path suffixes (workspace-relative) never descended into.
const SKIP_SUFFIXES: [&str; 1] = ["crates/audit/tests/fixtures"];

/// Audits one file's text as if it lived at `rel_path` (workspace
/// relative, `/`-separated). This is the engine's core entry point; the
/// fixture tests call it directly.
pub fn audit_file(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let view = FileView::new(rel_path, text, &RULE_IDS);
    check_file(&view)
}

/// Walks the workspace under `root` and audits every governed source.
/// Diagnostics come back sorted by `(path, line, col)`.
///
/// # Errors
///
/// Propagates directory-read failures on the root itself; unreadable
/// files below it are skipped (the audit must not be DoS-able by a
/// dangling symlink).
pub fn audit_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for rel in files {
        let Ok(text) = fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diags.extend(audit_file(&rel_str, &text));
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(diags)
}

fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Ok(rel) = path.strip_prefix(root) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str())
                || SKIP_SUFFIXES.iter().any(|s| rel_str.ends_with(s))
            {
                continue;
            }
            // Unreadable subdirectories are skipped, not fatal.
            let _ = collect_sources(root, &path, out);
        } else if rel_str.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_vendor_target_and_fixtures() {
        let dir = std::env::temp_dir().join(format!("mosaic-audit-walk-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for sub in [
            "crates/memsim/src",
            "vendor/rand/src",
            "target/debug",
            "crates/audit/tests/fixtures/bad",
        ] {
            fs::create_dir_all(dir.join(sub)).unwrap();
        }
        let bad = "use std::collections::HashMap;\n";
        fs::write(dir.join("crates/memsim/src/lib.rs"), bad).unwrap();
        fs::write(dir.join("vendor/rand/src/lib.rs"), bad).unwrap();
        fs::write(dir.join("target/debug/gen.rs"), bad).unwrap();
        fs::write(dir.join("crates/audit/tests/fixtures/bad/x.rs"), bad).unwrap();

        let diags = audit_workspace(&dir).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].path, "crates/memsim/src/lib.rs");
        fs::remove_dir_all(&dir).unwrap();
    }
}
