//! Per-file analysis context: the token stream, a mask of test-only
//! code, and parsed `audit:allow` suppressions.
//!
//! Rules run over *production* tokens only: anything under a `#[test]`
//! or `#[cfg(test)]` attribute (including `mod tests { ... }`) is
//! masked out, because the invariants the audit enforces are about
//! shipped simulation and persistence code, not about assertions inside
//! tests.

use crate::block::BlockTree;
use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};

/// An `// audit:allow(<rule>[, <rule>]) <reason>` comment.
///
/// A suppression silences matching diagnostics on its own line and on
/// the immediately following line; the reason string is mandatory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// The rule ids being allowed.
    pub rules: Vec<String>,
    /// Line the comment starts on.
    pub line: usize,
}

/// Everything the rules need to know about one source file.
pub struct FileView<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The full token stream.
    pub tokens: Vec<Token<'a>>,
    /// `is_test[i]` — token `i` belongs to a `#[test]`/`#[cfg(test)]`
    /// item.
    pub is_test: Vec<bool>,
    /// Indices into `tokens` of production code (non-comment, non-test).
    pub code: Vec<usize>,
    /// Well-formed suppressions found in production comments.
    pub suppressions: Vec<Suppression>,
    /// Diagnostics for malformed suppressions (missing reason, unknown
    /// rule id). These are not themselves suppressible.
    pub suppression_errors: Vec<Diagnostic>,
    /// Block structure over `code` (shared by every semantic rule; the
    /// file is lexed and parsed exactly once).
    pub blocks: BlockTree,
}

impl<'a> FileView<'a> {
    /// Lexes `text` and computes the masks. `known_rules` validates
    /// `audit:allow` targets.
    pub fn new(path: &str, text: &'a str, known_rules: &[&str]) -> Self {
        let tokens = lex(text);
        let is_test = test_mask(&tokens);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                !is_test[*i] && !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            })
            .map(|(i, _)| i)
            .collect();
        let blocks = BlockTree::build(&tokens, &code);
        let mut view = FileView {
            path: path.replace('\\', "/"),
            tokens,
            is_test,
            code,
            suppressions: Vec::new(),
            suppression_errors: Vec::new(),
            blocks,
        };
        view.collect_suppressions(known_rules);
        view
    }

    /// Is `diag` silenced by a suppression (same line or the line
    /// before)?
    pub fn is_suppressed(&self, diag: &Diagnostic) -> bool {
        self.suppressions.iter().any(|s| {
            (s.line == diag.line || s.line + 1 == diag.line)
                && s.rules.iter().any(|r| r == diag.rule)
        })
    }

    /// Emits a diagnostic of `rule` anchored at token `idx`.
    pub fn diag_at(&self, rule: &'static str, idx: usize, message: String) -> Diagnostic {
        let t = &self.tokens[idx];
        Diagnostic {
            rule,
            path: self.path.clone(),
            line: t.line,
            col: t.col,
            message,
        }
    }

    fn collect_suppressions(&mut self, known_rules: &[&str]) {
        let mut suppressions = Vec::new();
        let mut errors = Vec::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if self.is_test[i]
                || !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            {
                continue;
            }
            // A suppression must be a plain comment whose body *starts*
            // with the directive. Doc comments (`///`, `//!`) merely
            // document the syntax and are never suppressions.
            let body = match t.kind {
                TokenKind::LineComment => {
                    let body = t.text.trim_start_matches('/');
                    if t.text.starts_with("///") || t.text.starts_with("//!") {
                        continue;
                    }
                    body
                }
                _ => {
                    if t.text.starts_with("/**") || t.text.starts_with("/*!") {
                        continue;
                    }
                    t.text.trim_start_matches('/').trim_start_matches('*')
                }
            };
            let body = body.trim_start();
            if !body.starts_with("audit:allow") {
                continue;
            }
            let pos = t.text.find("audit:allow").unwrap_or(0);
            let mut bad = |message: String| {
                errors.push(Diagnostic {
                    rule: "suppression",
                    path: self.path.clone(),
                    line: t.line,
                    col: t.col,
                    message,
                });
            };
            let after = &t.text[pos + "audit:allow".len()..];
            let Some(args) = after.strip_prefix('(') else {
                bad("malformed suppression: expected `audit:allow(<rule>) <reason>`".to_string());
                continue;
            };
            let Some(close) = args.find(')') else {
                bad("malformed suppression: missing `)`".to_string());
                continue;
            };
            let mut reason = args[close + 1..].trim();
            if t.kind == TokenKind::BlockComment {
                reason = reason.trim_end_matches("*/").trim();
            }
            let rules: Vec<String> = args[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                bad("suppression names no rule: `audit:allow(<rule>) <reason>`".to_string());
                continue;
            }
            let mut ok = true;
            for r in &rules {
                if !known_rules.contains(&r.as_str()) {
                    bad(format!(
                        "suppression names unknown rule {r:?} (known: {})",
                        known_rules.join(", ")
                    ));
                    ok = false;
                }
            }
            if reason.is_empty() {
                bad(format!(
                    "suppression of `{}` has no justification; write \
                     `audit:allow({}) <why this is sound>`",
                    rules.join(", "),
                    rules.join(", ")
                ));
                ok = false;
            }
            if ok {
                suppressions.push(Suppression {
                    rules,
                    line: t.line,
                });
            }
        }
        self.suppressions = suppressions;
        self.suppression_errors = errors;
    }
}

/// Marks every token belonging to an item annotated `#[test]` or
/// `#[cfg(test)]` (or any attribute mentioning `test`, except
/// `cfg_attr` which typically *excludes* tests, e.g.
/// `#[cfg_attr(not(test), ...)]`).
fn test_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let is_comment = |t: &Token| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment);
    let next_code = |mut i: usize| {
        while i < tokens.len() && is_comment(&tokens[i]) {
            i += 1;
        }
        i
    };

    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens[i].kind != TokenKind::Punct {
            i += 1;
            continue;
        }
        let open = next_code(i + 1);
        // `#![...]` inner attributes configure the enclosing module, not
        // a following item — never a test marker.
        if open >= tokens.len() || tokens[open].text != "[" {
            i += 1;
            continue;
        }
        let (close, attr_is_test) = scan_attribute(tokens, open);
        if !attr_is_test {
            i = close + 1;
            continue;
        }
        // Swallow any further attributes between this one and the item.
        let mut k = next_code(close + 1);
        while k < tokens.len() && tokens[k].text == "#" {
            let o = next_code(k + 1);
            if o >= tokens.len() || tokens[o].text != "[" {
                break;
            }
            let (c, _) = scan_attribute(tokens, o);
            k = next_code(c + 1);
        }
        let end = scan_item_end(tokens, k);
        for flag in mask.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    mask
}

/// From the `[` at `open`, returns (index of the matching `]`, does the
/// attribute mark test code).
fn scan_attribute(tokens: &[Token<'_>], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_cfg_attr = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        match (t.kind, t.text) {
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            (TokenKind::Ident, "test") => saw_test = true,
            (TokenKind::Ident, "cfg_attr") => saw_cfg_attr = true,
            _ => {}
        }
        j += 1;
    }
    (j.min(tokens.len() - 1), saw_test && !saw_cfg_attr)
}

/// Finds the last token of the item starting at `start`: the first `;`
/// at bracket depth zero, or the `}` closing the item's first brace
/// block.
fn scan_item_end(tokens: &[Token<'_>], start: usize) -> usize {
    let mut depth = 0i64;
    let mut entered_brace = false;
    let mut m = start;
    while m < tokens.len() {
        let t = &tokens[m];
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    depth += 1;
                    entered_brace = true;
                }
                "}" => {
                    depth -= 1;
                    if entered_brace && depth <= 0 {
                        return m;
                    }
                }
                ";" if depth == 0 && !entered_brace => return m,
                _ => {}
            }
        }
        m += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: [&str; 2] = ["determinism", "panic-surface"];

    fn view<'a>(text: &'a str) -> FileView<'a> {
        FileView::new("crates/x/src/lib.rs", text, &RULES)
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use super::*;\n    \
                   fn helper() { x.unwrap(); }\n}\nfn after() {}\n";
        let v = view(src);
        let masked: Vec<&str> = v
            .tokens
            .iter()
            .zip(&v.is_test)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text)
            .collect();
        assert!(masked.contains(&"unwrap"));
        assert!(masked.contains(&"tests"));
        assert!(!masked.contains(&"HashMap"));
        assert!(!masked.contains(&"after"));
    }

    #[test]
    fn test_fns_and_stacked_attributes_are_masked() {
        let src = "#[test]\n#[ignore = \"slow\"]\nfn t() { a.unwrap() }\nfn keep() {}\n";
        let v = view(src);
        let kept: Vec<&str> = v.code.iter().map(|&i| v.tokens[i].text).collect();
        assert!(!kept.contains(&"unwrap"));
        assert!(kept.contains(&"keep"));
    }

    #[test]
    fn cfg_attr_not_test_is_not_masked() {
        let src = "#[cfg_attr(not(test), deny(clippy::unwrap_used))]\nfn real() { go() }\n";
        let v = view(src);
        let kept: Vec<&str> = v.code.iter().map(|&i| v.tokens[i].text).collect();
        assert!(kept.contains(&"real"));
        assert!(kept.contains(&"go"));
    }

    #[test]
    fn inner_attributes_mask_nothing() {
        let src = "#![cfg(test)]\nfn real() {}\n";
        let v = view(src);
        let kept: Vec<&str> = v.code.iter().map(|&i| v.tokens[i].text).collect();
        assert!(kept.contains(&"real"));
    }

    #[test]
    fn suppressions_parse_and_match_next_line() {
        let src = "// audit:allow(determinism) memo map is write-only\nlet m = HashMap::new();\n";
        let v = view(src);
        assert_eq!(v.suppression_errors, vec![]);
        assert_eq!(v.suppressions.len(), 1);
        let d = Diagnostic {
            rule: "determinism",
            path: v.path.clone(),
            line: 2,
            col: 9,
            message: String::new(),
        };
        assert!(v.is_suppressed(&d));
        let other = Diagnostic {
            rule: "panic-surface",
            ..d.clone()
        };
        assert!(!v.is_suppressed(&other));
        let far = Diagnostic { line: 3, ..d };
        assert!(!v.is_suppressed(&far));
    }

    #[test]
    fn reasonless_and_unknown_suppressions_are_rejected() {
        let v = view("// audit:allow(determinism)\n// audit:allow(frobnicate) because\n");
        assert_eq!(v.suppressions, vec![]);
        assert_eq!(v.suppression_errors.len(), 2);
        assert!(v.suppression_errors[0].message.contains("justification"));
        assert!(v.suppression_errors[1].message.contains("unknown rule"));
    }

    #[test]
    fn block_comment_suppression_strips_trailing_delimiter() {
        let v = view("/* audit:allow(determinism) snapshot ordering is canonicalized */\n");
        assert_eq!(v.suppression_errors, vec![]);
        assert_eq!(v.suppressions.len(), 1);
    }
}
