//! The audit rule set.
//!
//! Every rule is scoped by path: the invariants are *project-specific*
//! (which crates form the deterministic simulation core, which files
//! are on the mosaicd request path, which modules are on-disk codecs),
//! so the scope tables below are part of the rule definitions. A file
//! outside every scope produces no diagnostics no matter what it
//! contains.
//!
//! | rule | scope | forbids |
//! |---|---|---|
//! | `determinism` | simulation crates (incl. `obs`, `recommend`) + persistence modules | default-hasher `HashMap`/`HashSet`, `SystemTime`, `Instant::now`, non-seeded RNG |
//! | `panic-surface` | mosaicd request path + `obs` + `recommend` | `.unwrap()`, `.expect()`, `panic!`-family, direct slice indexing |
//! | `bit-exactness` | on-disk codec modules | lossy float format specs; floats without a bit-exact codec |
//! | `version-header` | on-disk codec modules | writers/parsers without a `# mosaic-... vN` header constant |
//! | `lock-discipline` | `service` + `obs` | guards live across fit/simulate/blocking I/O, lock-order inversions, re-acquisition |
//! | `arith-safety` | `service` + request path + codecs | truncating `as` casts; unchecked `*`/`+` on counter-named values |
//! | `wire-conformance` | cross-file (see [`crate::conformance`]) | protocol verbs missing a server arm, client method, CLI frontend, or README mention |
//! | `block-structure` | any scoped file | unbalanced delimiters the semantic rules cannot see past |
//!
//! The motivation is the paper's methodology: Mosmodel's error bounds
//! (§6) are only meaningful if `(R, H, M, C)` samples are bit-exact
//! across runs, and the persisted model store only serves identical
//! predictions if every `f64` survives its text round-trip exactly.
//! The semantic rules guard the two worst shipped bug classes: a lock
//! held across a model fit (PR 4) and a u64 overflow in the percentile
//! rank computation (PR 3) — both invisible to a flat token scan.

use crate::block::{DelimKind, Owner};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::FileView;

/// Stable ids of all scoped rules, in reporting order. (`suppression`,
/// the meta-rule for malformed `audit:allow` comments, is implicit.)
pub const RULE_IDS: [&str; 8] = [
    "determinism",
    "panic-surface",
    "bit-exactness",
    "version-header",
    "lock-discipline",
    "arith-safety",
    "wire-conformance",
    "block-structure",
];

/// The canonical lock acquisition order for the serving plane, by the
/// field name the guard is taken from. Holding a later lock while
/// acquiring an earlier one is an inversion finding. The order encodes
/// the code as audited: `pairs()` takes the CV memo before the slot
/// map; the admission `queue`, the cache `inner` mutexes, and the
/// per-fit latch `state` are leaves acquired with nothing else held.
pub const LOCK_ORDER: [&str; 5] = ["cv_errors", "entries", "queue", "inner", "state"];

/// Ceilings on *honored* `audit:allow` waivers per rule across one
/// workspace audit — the suppression-debt budget. `--deny` fails when a
/// rule's waiver count exceeds its ceiling, so debt cannot accrete
/// silently: raising a ceiling is a reviewed diff to this table.
pub const SUPPRESSION_BUDGET: [(&str, usize); 8] = [
    ("determinism", 4),
    ("panic-surface", 6),
    ("bit-exactness", 2),
    ("version-header", 2),
    ("lock-discipline", 3),
    ("arith-safety", 3),
    ("wire-conformance", 2),
    ("block-structure", 1),
];

/// Crates whose `src/` trees form the deterministic simulation core.
/// `obs` belongs here because sim-domain traces must be byte-identical
/// across runs: a wall-clock read or random iteration order inside the
/// tracer would leak into rendered spans. `recommend` belongs here
/// because two independent servers must produce byte-identical
/// recommendations for the same request: its random explorer is seeded
/// from the canonical budget string, and any entropy or clock read
/// would break that.
const SIM_CRATES: [&str; 6] = [
    "memsim",
    "machine",
    "vmcore",
    "workloads",
    "obs",
    "recommend",
];

/// Modules that write or memoize on-disk or in-memory state whose
/// iteration/eviction order must be deterministic (store/cache files,
/// the prediction cache). The battery fan-out (`parallel.rs`) belongs
/// here: its reduction order decides the byte order of the grid cache
/// TSV, so a nondeterministic collection or clock read inside it would
/// smear thread scheduling into persisted files.
const PERSIST_MODULES: [&str; 6] = [
    "crates/mosmodel/src/persist.rs",
    "crates/harness/src/experiment.rs",
    "crates/harness/src/parallel.rs",
    "crates/harness/src/sampled.rs",
    "crates/service/src/registry.rs",
    "crates/service/src/cache.rs",
];

/// Modules that define an on-disk text codec (format + parse).
const CODEC_MODULES: [&str; 2] = [
    "crates/mosmodel/src/persist.rs",
    "crates/harness/src/experiment.rs",
];

/// The mosaicd request path: code a malformed or hostile request can
/// reach. A panic here kills a worker thread. The tracer and the
/// exposition renderer run inside every request, so they are on the
/// path too (the whole `obs` crate is included via [`on_request_path`]).
/// The battery fan-out (`parallel.rs`) is included because a cold fit —
/// reachable from any predict/warm request — runs it on the worker's
/// thread: an unwrap inside the pool would turn a measurement hiccup
/// into a dead worker. The sampling gate (`sampled.rs`) is on the path
/// for the same reason: a sampled grid evaluates it during any cold
/// battery build a warm/predict request triggers.
const REQUEST_PATH: [&str; 8] = [
    "crates/service/src/server.rs",
    "crates/service/src/protocol.rs",
    "crates/service/src/registry.rs",
    "crates/service/src/cache.rs",
    "crates/service/src/trace.rs",
    "crates/service/src/prom.rs",
    "crates/harness/src/parallel.rs",
    "crates/harness/src/sampled.rs",
];

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_sim_crate(path: &str) -> bool {
    SIM_CRATES
        .iter()
        .any(|c| path.contains(&format!("crates/{c}/src/")))
}

fn is_persistence(path: &str) -> bool {
    PERSIST_MODULES.iter().any(|m| path.ends_with(m)) || is_codec(path)
}

fn is_codec(path: &str) -> bool {
    CODEC_MODULES.iter().any(|m| path.ends_with(m))
        || file_name(path).contains("persist")
        || file_name(path).contains("codec")
}

fn on_request_path(path: &str) -> bool {
    REQUEST_PATH.iter().any(|m| path.ends_with(m))
        || path.contains("crates/obs/src/")
        // The whole recommendation engine runs inside the `recommend`
        // verb's worker thread; a panic there kills the worker.
        || path.contains("crates/recommend/src/")
}

/// Where the serving plane's locks live: every guard in the workspace
/// is taken somewhere under `service` or `obs`.
fn in_lock_scope(path: &str) -> bool {
    path.contains("crates/service/src/") || path.contains("crates/obs/src/")
}

/// Integer math that request handling or a codec depends on: all of
/// `service` (including `metrics.rs`, home of the PR-3 overflow), the
/// request path (`obs`, `recommend`), and every on-disk codec.
fn in_arith_scope(path: &str) -> bool {
    path.contains("crates/service/src/") || on_request_path(path) || is_codec(path)
}

fn in_any_scope(path: &str) -> bool {
    in_sim_crate(path)
        || is_persistence(path)
        || on_request_path(path)
        || in_lock_scope(path)
        || in_arith_scope(path)
}

/// Runs every applicable rule over `view`, honors suppressions, and
/// appends suppression-misuse diagnostics.
pub fn check_file(view: &FileView<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if in_sim_crate(&view.path) || is_persistence(&view.path) {
        determinism(view, &mut diags);
    }
    if on_request_path(&view.path) {
        panic_surface(view, &mut diags);
    }
    if is_codec(&view.path) {
        bit_exactness(view, &mut diags);
        version_header(view, &mut diags);
    }
    if in_lock_scope(&view.path) {
        lock_discipline(view, &mut diags);
    }
    if in_arith_scope(&view.path) {
        arith_safety(view, &mut diags);
    }
    if in_any_scope(&view.path) {
        block_structure(view, &mut diags);
    }
    diags.retain(|d| !view.is_suppressed(d));
    diags.extend(view.suppression_errors.iter().cloned());
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    // A single string literal can repeat the same lossy spec; one
    // location gets one report.
    diags.dedup();
    diags
}

/// Does the code token at code-position `p` (with lookahead) spell out
/// `words` (comments skipped, multi-char operators split)?
fn seq(view: &FileView<'_>, p: usize, words: &[&str]) -> bool {
    words.iter().enumerate().all(|(k, w)| {
        view.code
            .get(p + k)
            .is_some_and(|&idx| view.tokens[idx].text == *w)
    })
}

/// Rule 1 — nondeterminism in the simulation core and persistence
/// paths. The simulator is the study's ground truth: a wall-clock read
/// or a randomly-seeded structure silently degrades the <3% (paper §6)
/// error bound into run-to-run grid drift.
fn determinism(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "determinism";
    for (p, &idx) in view.code.iter().enumerate() {
        let t = &view.tokens[idx];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text {
            "HashMap" | "HashSet" | "RandomState" => out.push(view.diag_at(
                RULE,
                idx,
                format!(
                    "`{}` uses a randomly-seeded hasher; iteration order changes across runs \
                     — use BTreeMap/BTreeSet or sort before iterating/serializing",
                    t.text
                ),
            )),
            "SystemTime" => out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "`SystemTime` reads the wall clock; simulation and persistence code must be \
                 a pure function of its inputs"
                        .to_string(),
                ),
            ),
            "Instant" if seq(view, p + 1, &[":", ":", "now"]) => out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "`Instant::now()` makes behaviour timing-dependent; derive timing from \
                 simulated cycle counts instead"
                        .to_string(),
                ),
            ),
            "thread_rng" | "from_entropy" => out.push(view.diag_at(
                RULE,
                idx,
                format!(
                    "`{}` draws OS entropy; use an explicitly seeded RNG (e.g. an FNV-derived \
                     workload seed) so runs are reproducible",
                    t.text
                ),
            )),
            "rand" if seq(view, p + 1, &[":", ":", "random"]) => out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "`rand::random()` draws OS entropy; use an explicitly seeded RNG so runs are \
                 reproducible"
                        .to_string(),
                ),
            ),
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [0u8; 4]`, `return [a, b]`, `match x { .. }`).
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "mut", "let", "ref", "in", "return", "match", "if", "else", "move", "as", "break", "box",
    "dyn", "const",
];

/// Rule 2 — panics on the mosaicd request path. A panic in request
/// handling kills a worker thread: enough malformed requests and the
/// pool is dead while the acceptor keeps admitting connections.
/// Errors must travel as protocol-level `err ...` responses.
fn panic_surface(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "panic-surface";
    for (p, &idx) in view.code.iter().enumerate() {
        let t = &view.tokens[idx];
        match (t.kind, t.text) {
            (TokenKind::Ident, "unwrap" | "expect")
                if p > 0 && view.tokens[view.code[p - 1]].text == "." =>
            {
                out.push(view.diag_at(
                    RULE,
                    idx,
                    format!(
                        "`.{}()` on the request path can panic a worker; return a \
                         protocol-level error response instead",
                        t.text
                    ),
                ));
            }
            (TokenKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if seq(view, p + 1, &["!"]) =>
            {
                out.push(view.diag_at(
                    RULE,
                    idx,
                    format!(
                        "`{}!` on the request path kills a worker thread; return a \
                         protocol-level error response instead",
                        t.text
                    ),
                ));
            }
            (TokenKind::Punct, "[") if p > 0 => {
                let prev = &view.tokens[view.code[p - 1]];
                let indexes_into = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexes_into {
                    out.push(
                        view.diag_at(
                            RULE,
                            idx,
                            "direct indexing on the request path panics on out-of-bounds input; \
                         use `.get(..)` and handle `None` as a protocol error"
                                .to_string(),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// The blessed bit-exact float codecs (hex-bit and shortest-roundtrip).
const FLOAT_CODECS: [&str; 6] = [
    "to_bits",
    "from_bits",
    "f64_hex",
    "parse_f64_hex",
    "fmt_f64_shortest",
    "parse_f64_shortest",
];

/// Rule 3 — lossy floats in on-disk codecs. The model store and grid
/// cache only reproduce in-memory predictions bit-for-bit if every
/// `f64` round-trips exactly; a `{:.3}`-style rendering quietly
/// truncates coefficients.
fn bit_exactness(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "bit-exactness";
    let mut mentions_float = None;
    let mut has_codec = false;
    for &idx in &view.code {
        let t = &view.tokens[idx];
        match t.kind {
            TokenKind::Ident if t.text == "f64" || t.text == "f32" => {
                mentions_float.get_or_insert(idx);
            }
            TokenKind::Ident if FLOAT_CODECS.contains(&t.text) => has_codec = true,
            TokenKind::Str => {
                for spec in lossy_specs(t.text) {
                    out.push(view.diag_at(
                        RULE,
                        idx,
                        format!(
                            "lossy float format `{{:{spec}}}` in an on-disk codec; persist \
                             floats with the hex-bit codec (`to_bits`) or the \
                             shortest-roundtrip codec (`fmt_f64_shortest`)"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    if let Some(idx) = mentions_float {
        if !has_codec {
            out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "codec module handles floating-point values but references no bit-exact \
                 codec (`to_bits`/`from_bits` or `fmt_f64_shortest`/`parse_f64_shortest`)"
                        .to_string(),
                ),
            );
        }
    }
}

/// Extracts the lossy format specs (`e`/`E` exponent or `.` precision)
/// from a format-string literal's placeholders.
fn lossy_specs(literal: &str) -> Vec<String> {
    let mut found = Vec::new();
    let chars: Vec<char> = literal.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2; // escaped `{{`
                continue;
            }
            let close = (i + 1..chars.len()).find(|&j| chars[j] == '}');
            if let Some(close) = close {
                let inner: String = chars[i + 1..close].iter().collect();
                if let Some((_, spec)) = inner.split_once(':') {
                    let lossy = spec.contains('.')
                        || spec.ends_with('e')
                        || spec.ends_with('E')
                        || spec == "e"
                        || spec == "E";
                    if lossy {
                        found.push(spec.to_string());
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    found
}

/// Rule 4 — versioned on-disk formats. Every writer/parser must
/// reference a `# mosaic-... vN` header constant so stale files are
/// re-measured instead of mis-parsed (the grid cache and model store
/// both learned this the hard way; see `# mosaic-cache v2`).
fn version_header(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "version-header";
    let mut has_header_literal = false;
    let mut has_version_const = false;
    for &idx in &view.code {
        let t = &view.tokens[idx];
        match t.kind {
            TokenKind::Str if t.text.contains("# mosaic-") => has_header_literal = true,
            TokenKind::Ident if t.text.contains("VERSION") => has_version_const = true,
            _ => {}
        }
    }
    let missing = match (has_header_literal, has_version_const) {
        (true, true) => return,
        (false, true) => "a `\"# mosaic-... v\"` header string",
        (true, false) => "a `*VERSION` constant",
        (false, false) => "a `\"# mosaic-... v\"` header string and a `*VERSION` constant",
    };
    let anchor = view.code.first().copied();
    let (line, col) = anchor.map_or((1, 1), |i| (view.tokens[i].line, view.tokens[i].col));
    out.push(Diagnostic {
        rule: RULE,
        path: view.path.clone(),
        line,
        col,
        message: format!(
            "on-disk format module must version its header: missing {missing} \
             (readers must reject versions they were not written for)"
        ),
    });
}

/// Calls that block or burn unbounded CPU while a guard is live:
/// blocking I/O method names (identifiers starting with `fit_` or
/// `simulate_` are matched by prefix instead).
const BLOCKING_CALLS: [&str; 9] = [
    "read_to_string",
    "write_all",
    "read_line",
    "read_exact",
    "fill_buf",
    "flush",
    "accept",
    "connect",
    "sleep",
];

/// One live guard, as approximated from the token stream.
struct Guard<'v> {
    /// The field the lock was taken from (`entries` in
    /// `self.entries.read()`), or `None` when the receiver is not a
    /// plain identifier.
    recv: Option<&'v str>,
    /// Code position of the acquiring method identifier.
    acq: usize,
    /// Exclusive end of the guard's live range.
    end: usize,
}

/// Rule 5 — lock discipline on the serving plane. The PR-4 outage
/// class: a guard held across a model fit serializes every request on
/// that lock. Liveness is approximated by scope nesting: a `let`-bound
/// guard lives to the end of its enclosing brace block (or an explicit
/// `drop(guard)`); an unbound temporary lives to the end of its
/// statement. Guards returned by helper functions are invisible — see
/// DESIGN §12 for what this rule cannot see.
fn lock_discipline(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "lock-discipline";
    let n = view.code.len();
    let tok = |p: usize| &view.tokens[view.code[p]];
    let text = |p: usize| view.tokens[view.code[p]].text;
    let is_kind = |p: usize, k: TokenKind| tok(p).kind == k;

    // `<recv>.lock()` / `.read()` / `.write()` with an *empty* argument
    // list — `reader.read(&mut buf)` takes arguments and is I/O, not a
    // guard acquisition.
    let acquisition = |p: usize| -> Option<Option<&str>> {
        if !is_kind(p, TokenKind::Ident) || !matches!(text(p), "lock" | "read" | "write") {
            return None;
        }
        if p < 1 || text(p - 1) != "." {
            return None;
        }
        if p + 2 >= n || text(p + 1) != "(" || text(p + 2) != ")" {
            return None;
        }
        let recv = (p >= 2 && is_kind(p - 2, TokenKind::Ident)).then(|| text(p - 2));
        Some(recv)
    };

    // Is the acquisition at `p` bound by a plain `let <name> =` in its
    // statement? Destructuring patterns (`if let Some(x) = ...`) keep
    // the guard a temporary of the scrutinee.
    let let_binding = |p: usize| -> Option<&str> {
        let lo = p.saturating_sub(64);
        let mut j = p;
        while j > lo {
            j -= 1;
            let t = tok(j);
            if t.kind == TokenKind::Punct && matches!(t.text, ";" | "{" | "}") {
                return None;
            }
            if t.kind == TokenKind::Ident && t.text == "let" {
                let mut k = j + 1;
                if k < n && text(k) == "mut" {
                    k += 1;
                }
                if k + 1 < n && is_kind(k, TokenKind::Ident) && text(k + 1) == "=" {
                    return Some(text(k));
                }
                return None;
            }
        }
        None
    };

    let mut guards: Vec<Guard<'_>> = Vec::new();
    for p in 0..n {
        let Some(recv) = acquisition(p) else { continue };
        let brace_end = view
            .blocks
            .enclosing_brace(p)
            .map_or(n, |b| view.blocks.block_end(b, n));
        let end = match let_binding(p) {
            Some(name) => {
                // Live to the end of the enclosing block, unless
                // explicitly dropped first.
                let dropped = (p + 3..brace_end).find(|&q| {
                    text(q) == "drop"
                        && q + 3 < n
                        && text(q + 1) == "("
                        && text(q + 2) == name
                        && text(q + 3) == ")"
                });
                dropped.unwrap_or(brace_end)
            }
            // A temporary guard dies with its statement (approximated
            // as the next `;`; an `if let` scrutinee's temporary really
            // does live through the consequent block).
            None => (p + 3..brace_end)
                .find(|&q| text(q) == ";")
                .unwrap_or(brace_end),
        };
        guards.push(Guard { recv, acq: p, end });
    }

    let order_of = |recv: Option<&str>| recv.and_then(|r| LOCK_ORDER.iter().position(|&o| o == r));
    for g in &guards {
        let held = g.recv.unwrap_or("_");
        for q in g.acq + 3..g.end {
            if is_kind(q, TokenKind::Ident)
                && q + 1 < n
                && text(q + 1) == "("
                && (q == 0 || text(q - 1) != "fn")
                && (text(q).starts_with("fit_")
                    || text(q).starts_with("simulate_")
                    || BLOCKING_CALLS.contains(&text(q)))
            {
                out.push(view.diag_at(
                    RULE,
                    view.code[q],
                    format!(
                        "`{}()` runs while the `{held}` guard (acquired line {}) is live; \
                         fits, simulations and blocking I/O must not run under a lock — \
                         scope the guard or `drop` it first",
                        text(q),
                        tok(g.acq).line,
                    ),
                ));
            }
            if let Some(other) = acquisition(q) {
                if other.is_some() && other == g.recv {
                    out.push(view.diag_at(
                        RULE,
                        view.code[q],
                        format!(
                            "re-acquiring lock `{held}` while its guard (line {}) is still \
                             live self-deadlocks a std mutex; drop the first guard before \
                             taking the lock again",
                            tok(g.acq).line,
                        ),
                    ));
                } else if let (Some(h), Some(a)) = (order_of(g.recv), order_of(other)) {
                    if a < h {
                        out.push(view.diag_at(
                            RULE,
                            view.code[q],
                            format!(
                                "acquiring lock `{}` while `{held}` (line {}) is held inverts \
                                 the canonical order [{}]; release `{held}` first or reorder \
                                 the acquisitions",
                                other.unwrap_or("_"),
                                tok(g.acq).line,
                                LOCK_ORDER.join(" < "),
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Narrowing integer cast targets: casting *to* one of these silently
/// truncates.
const NARROW_INT_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Does this identifier name a counter-, length-, byte- or
/// microsecond-like quantity (the values whose overflow actually
/// corrupts measurements — the PR-3 bug class)?
fn counter_like(name: &str) -> bool {
    name.split('_').any(|w| {
        matches!(
            w,
            "count"
                | "counts"
                | "counter"
                | "counters"
                | "len"
                | "bytes"
                | "us"
                | "micros"
                | "cycles"
                | "total"
                | "totals"
                | "hits"
                | "misses"
                | "depth"
                | "rank"
                | "requests"
                | "drops"
                | "dropped"
                | "seen"
                | "sum"
                | "sums"
        )
    })
}

/// Does the statement around code position `p` widen or check its
/// arithmetic (`u128::from`, `checked_mul`, floats, ...)?
fn stmt_has_arith_escape(view: &FileView<'_>, p: usize) -> bool {
    let n = view.code.len();
    let text = |q: usize| view.tokens[view.code[q]].text;
    let is_boundary = |q: usize| {
        view.tokens[view.code[q]].kind == TokenKind::Punct && { matches!(text(q), ";" | "{" | "}") }
    };
    let escape = |q: usize| {
        let t = text(q);
        matches!(t, "u128" | "i128" | "f64" | "f32" | "from" | "try_from")
            || t.starts_with("checked_")
            || t.starts_with("saturating_")
            || t.starts_with("wrapping_")
    };
    let lo = p.saturating_sub(64);
    let mut j = p;
    while j > lo && !is_boundary(j - 1) {
        j -= 1;
        if escape(j) {
            return true;
        }
    }
    let hi = (p + 64).min(n);
    let mut k = p;
    while k + 1 < hi && !is_boundary(k + 1) {
        k += 1;
        if escape(k) {
            return true;
        }
    }
    false
}

/// Rule 6 — arithmetic safety on the request path and in codecs. The
/// PR-3 bug class: `total * q` overflowed u64 once the histogram had
/// seen enough samples. Flags narrowing `as` casts and unchecked
/// `*`/`+` where an operand is counter-named, unless the statement
/// widens (`u128::from`) or checks (`checked_`/`saturating_`) the math.
fn arith_safety(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "arith-safety";
    let n = view.code.len();
    let tok = |p: usize| &view.tokens[view.code[p]];
    let text = |p: usize| view.tokens[view.code[p]].text;
    for p in 0..n {
        let t = tok(p);
        // `<expr> as u32` — a silent truncation.
        if t.kind == TokenKind::Ident && t.text == "as" && p > 0 && p + 1 < n {
            let prev = tok(p - 1);
            let casts_value = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text),
                TokenKind::Number => true,
                TokenKind::Punct => matches!(prev.text, ")" | "]"),
                _ => false,
            };
            if casts_value && NARROW_INT_TARGETS.contains(&text(p + 1)) {
                out.push(view.diag_at(
                    RULE,
                    view.code[p],
                    format!(
                        "`as {}` silently truncates; use `{}::try_from(..)` and handle the \
                         error, or keep the wide type",
                        text(p + 1),
                        text(p + 1),
                    ),
                ));
            }
        }
        // `counter * x` / `x + counter` without widening or checking.
        if t.kind == TokenKind::Punct && matches!(t.text, "*" | "+") && p > 0 && p + 1 < n {
            let prev = tok(p - 1);
            let next = tok(p + 1);
            let binary = matches!(prev.kind, TokenKind::Ident | TokenKind::Number)
                && !NON_INDEX_KEYWORDS.contains(&prev.text)
                || (prev.kind == TokenKind::Punct && matches!(prev.text, ")" | "]"));
            let has_operand = matches!(next.kind, TokenKind::Ident | TokenKind::Number)
                || (next.kind == TokenKind::Punct && next.text == "(");
            if !(binary && has_operand) {
                continue;
            }
            let named = (prev.kind == TokenKind::Ident && counter_like(prev.text))
                || (next.kind == TokenKind::Ident && counter_like(next.text));
            if named && !stmt_has_arith_escape(view, p) {
                out.push(view.diag_at(
                    RULE,
                    view.code[p],
                    format!(
                        "unchecked `{}` on a counter-like value can overflow (the percentile \
                         rank did, at u64::MAX/100 samples); widen via `u128::from(..)` or use \
                         `checked_{}`/`saturating_{}`",
                        t.text,
                        if t.text == "*" { "mul" } else { "add" },
                        if t.text == "*" { "mul" } else { "add" },
                    ),
                ));
            }
        }
    }
}

/// Rule 8 — unbalanced delimiters in a scoped file. The semantic rules
/// approximate liveness by scope nesting; past an unmatched delimiter
/// that approximation is meaningless, so the imbalance itself is the
/// finding (and arbitrary bytes stay a diagnostic, never a crash).
fn block_structure(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "block-structure";
    for &p in &view.blocks.unbalanced {
        if let Some(&idx) = view.code.get(p) {
            out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "unmatched delimiter: block structure is unresolved from here, so the \
                 semantic rules (lock-discipline, arith-safety, wire-conformance) cannot \
                 see past it"
                        .to_string(),
                ),
            );
        }
    }
}

/// Re-exported so the conformance pass can anchor findings: is `p` the
/// body block of `fn <name>`? Used by [`crate::conformance`].
pub(crate) fn fn_body_named(view: &FileView<'_>, name: &str) -> Option<(usize, usize)> {
    let n = view.code.len();
    for (i, b) in view.blocks.blocks.iter().enumerate() {
        if b.kind != DelimKind::Brace || b.owner != Owner::Fn {
            continue;
        }
        let Some(name_p) = b.owner_name else { continue };
        if view.tokens[view.code[name_p]].text == name {
            return Some((b.open + 1, view.blocks.block_end(i, n)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let view = FileView::new(path, src, &RULE_IDS);
        check_file(&view)
    }

    fn rules_hit(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn determinism_flags_only_in_scope() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let hits = run("crates/memsim/src/tlb.rs", src);
        assert_eq!(rules_hit(&hits), vec!["determinism", "determinism"]);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
        // Same source outside the scope: clean.
        assert_eq!(run("crates/service/src/metrics.rs", src), vec![]);
    }

    #[test]
    fn determinism_allows_instant_type_without_now() {
        let src = "fn f(deadline: Instant) -> Instant { deadline }\n";
        assert_eq!(run("crates/machine/src/engine.rs", src), vec![]);
    }

    #[test]
    fn panic_surface_flags_the_family() {
        let src = "fn f(v: &[u8]) -> u8 {\n    let x = v.get(0).unwrap();\n    \
                   if v.is_empty() { panic!(\"no\") }\n    v[1]\n}\n";
        let hits = run("crates/service/src/server.rs", src);
        assert_eq!(
            rules_hit(&hits),
            vec!["panic-surface", "panic-surface", "panic-surface"]
        );
        // Array literals and `unwrap_or` are fine.
        let ok = "fn g() -> u64 { u64::try_from(1i64).unwrap_or(0) }\n\
                  fn h() { let _ = &mut [0u8; 4]; }\n";
        assert_eq!(run("crates/service/src/server.rs", ok), vec![]);
        // Out of scope: anything goes.
        assert_eq!(run("crates/service/src/metrics.rs", src), vec![]);
    }

    #[test]
    fn bit_exactness_needs_a_codec_and_no_lossy_specs() {
        let lossy = "const FORMAT_VERSION: u32 = 1;\nconst MAGIC: &str = \"# mosaic-m v\";\n\
                     fn save(v: f64) -> String { format!(\"{v:.3}\") }\n";
        let hits = run("crates/mosmodel/src/persist.rs", lossy);
        assert_eq!(rules_hit(&hits), vec!["bit-exactness", "bit-exactness"]);
        let exact = "fn save(v: f64) -> String { format!(\"{:016x}\", v.to_bits()) }\n\
                     const V: &str = \"# mosaic-x v1\";\nconst FORMAT_VERSION: u32 = 1;\n";
        assert_eq!(run("crates/mosmodel/src/persist.rs", exact), vec![]);
    }

    #[test]
    fn lossy_spec_extraction() {
        assert_eq!(
            lossy_specs("\"{:.3e} {:e} {} {:016x} {{:.9}} {:?}\""),
            vec![".3e", "e"]
        );
        assert_eq!(lossy_specs("\"{cv:.2}\""), vec![".2"]);
        assert_eq!(lossy_specs("\"plain {} and {:>8}\""), Vec::<String>::new());
    }

    #[test]
    fn version_header_requires_both_halves() {
        let missing = "fn render(x: u64) -> String { format!(\"{x}\") }\n";
        let hits = run("crates/harness/src/experiment.rs", missing);
        assert_eq!(rules_hit(&hits), vec!["version-header"]);
        let versioned = "const CACHE_VERSION: u32 = 2;\n\
                         fn render(x: u64) -> String { format!(\"# mosaic-cache v{CACHE_VERSION}\\n{x}\") }\n";
        assert_eq!(run("crates/harness/src/experiment.rs", versioned), vec![]);
    }

    #[test]
    fn suppressions_silence_and_misuse_reports() {
        let src = "// audit:allow(determinism) probe map never iterated or serialized\n\
                   use std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let hits = run("crates/vmcore/src/lib.rs", src);
        // Line 2 suppressed, line 3 not.
        assert_eq!(rules_hit(&hits), vec!["determinism"]);
        assert_eq!(hits[0].line, 3);

        // A reasonless suppression is itself an error AND does not
        // silence anything.
        let bad = "// audit:allow(determinism)\nuse std::collections::HashMap;\n";
        let hits = run("crates/vmcore/src/lib.rs", bad);
        assert_eq!(rules_hit(&hits), vec!["suppression", "determinism"]);
    }

    #[test]
    fn obs_crate_is_in_both_determinism_and_panic_surface_scope() {
        // The tracer feeds byte-identical sim-domain traces, so clock
        // reads are nondeterminism there...
        let clocky = "fn stamp() -> Instant { Instant::now() }\n";
        assert_eq!(
            rules_hit(&run("crates/obs/src/lib.rs", clocky)),
            vec!["determinism"]
        );
        // ...and it runs inside every mosaicd request, so panics there
        // kill a worker thread.
        let panicky = "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n";
        assert_eq!(
            rules_hit(&run("crates/obs/src/lib.rs", panicky)),
            vec!["panic-surface"]
        );
        // Neither rule leaks to an out-of-scope crate.
        assert_eq!(run("crates/layouts/src/lib.rs", clocky), vec![]);
        assert_eq!(run("crates/layouts/src/lib.rs", panicky), vec![]);
    }

    #[test]
    fn battery_fan_out_is_in_both_determinism_and_panic_surface_scope() {
        // The fan-out's reduction order decides the grid cache's byte
        // order, so nondeterministic collections are persistence bugs
        // there...
        let hashy = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_hit(&run("crates/harness/src/parallel.rs", hashy)),
            vec!["determinism"]
        );
        // ...and cold fits run it on mosaicd worker threads, so an
        // unwrap inside the pool kills a worker.
        let panicky = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert_eq!(
            rules_hit(&run("crates/harness/src/parallel.rs", panicky)),
            vec!["panic-surface"]
        );
        // Neither scope leaks to the rest of the harness crate.
        assert_eq!(run("crates/harness/src/report.rs", hashy), vec![]);
        assert_eq!(run("crates/harness/src/report.rs", panicky), vec![]);
    }

    #[test]
    fn sampling_gate_is_in_both_determinism_and_panic_surface_scope() {
        // Gate verdicts are persisted in the grid cache's v4 header, so
        // nondeterministic iteration inside the gate would smear into
        // cache bytes...
        let hashy = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_hit(&run("crates/harness/src/sampled.rs", hashy)),
            vec!["determinism"]
        );
        // ...and a sampled grid evaluates the gate during any cold
        // battery build a warm/predict request triggers, so an unwrap
        // there kills a worker.
        let panicky = "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n";
        assert_eq!(
            rules_hit(&run("crates/harness/src/sampled.rs", panicky)),
            vec!["panic-surface"]
        );
    }

    #[test]
    fn recommend_crate_is_in_both_determinism_and_panic_surface_scope() {
        // Two servers must return byte-identical recommendations, so
        // entropy draws are nondeterminism inside the engine...
        let entropic = "fn seed() -> u64 { thread_rng() }\n";
        assert_eq!(
            rules_hit(&run("crates/recommend/src/explore.rs", entropic)),
            vec!["determinism"]
        );
        // ...and the engine runs inside the `recommend` verb's worker
        // thread, so panics there kill a worker.
        let panicky = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert_eq!(
            rules_hit(&run("crates/recommend/src/engine.rs", panicky)),
            vec!["panic-surface"]
        );
    }

    #[test]
    fn tracer_and_exposition_modules_are_on_the_request_path() {
        let panicky = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        for path in ["crates/service/src/trace.rs", "crates/service/src/prom.rs"] {
            assert_eq!(
                rules_hit(&run(path, panicky)),
                vec!["panic-surface"],
                "{path}"
            );
        }
        // The request path is panic-scoped, not determinism-scoped: the
        // wall-clock domain legitimately reads `Instant::now()` there.
        let clocky = "fn stamp() -> Instant { Instant::now() }\n";
        assert_eq!(run("crates/service/src/trace.rs", clocky), vec![]);
    }

    #[test]
    fn test_code_is_exempt_everywhere() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
                   #[test]\n    fn t() { x.unwrap(); v[0]; }\n}\n";
        assert_eq!(run("crates/memsim/src/lib.rs", src), vec![]);
        assert_eq!(run("crates/service/src/server.rs", src), vec![]);
    }
}
