//! The audit rule set.
//!
//! Every rule is scoped by path: the invariants are *project-specific*
//! (which crates form the deterministic simulation core, which files
//! are on the mosaicd request path, which modules are on-disk codecs),
//! so the scope tables below are part of the rule definitions. A file
//! outside every scope produces no diagnostics no matter what it
//! contains.
//!
//! | rule | scope | forbids |
//! |---|---|---|
//! | `determinism` | simulation crates (incl. `obs`, `recommend`) + persistence modules | default-hasher `HashMap`/`HashSet`, `SystemTime`, `Instant::now`, non-seeded RNG |
//! | `panic-surface` | mosaicd request path + `obs` + `recommend` | `.unwrap()`, `.expect()`, `panic!`-family, direct slice indexing |
//! | `bit-exactness` | on-disk codec modules | lossy float format specs; floats without a bit-exact codec |
//! | `version-header` | on-disk codec modules | writers/parsers without a `# mosaic-... vN` header constant |
//!
//! The motivation is the paper's methodology: Mosmodel's error bounds
//! (§6) are only meaningful if `(R, H, M, C)` samples are bit-exact
//! across runs, and the persisted model store only serves identical
//! predictions if every `f64` survives its text round-trip exactly.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::FileView;

/// Stable ids of all scoped rules, in reporting order. (`suppression`,
/// the meta-rule for malformed `audit:allow` comments, is implicit.)
pub const RULE_IDS: [&str; 4] = [
    "determinism",
    "panic-surface",
    "bit-exactness",
    "version-header",
];

/// Crates whose `src/` trees form the deterministic simulation core.
/// `obs` belongs here because sim-domain traces must be byte-identical
/// across runs: a wall-clock read or random iteration order inside the
/// tracer would leak into rendered spans. `recommend` belongs here
/// because two independent servers must produce byte-identical
/// recommendations for the same request: its random explorer is seeded
/// from the canonical budget string, and any entropy or clock read
/// would break that.
const SIM_CRATES: [&str; 6] = [
    "memsim",
    "machine",
    "vmcore",
    "workloads",
    "obs",
    "recommend",
];

/// Modules that write or memoize on-disk or in-memory state whose
/// iteration/eviction order must be deterministic (store/cache files,
/// the prediction cache).
const PERSIST_MODULES: [&str; 4] = [
    "crates/mosmodel/src/persist.rs",
    "crates/harness/src/experiment.rs",
    "crates/service/src/registry.rs",
    "crates/service/src/cache.rs",
];

/// Modules that define an on-disk text codec (format + parse).
const CODEC_MODULES: [&str; 2] = [
    "crates/mosmodel/src/persist.rs",
    "crates/harness/src/experiment.rs",
];

/// The mosaicd request path: code a malformed or hostile request can
/// reach. A panic here kills a worker thread. The tracer and the
/// exposition renderer run inside every request, so they are on the
/// path too (the whole `obs` crate is included via [`on_request_path`]).
const REQUEST_PATH: [&str; 6] = [
    "crates/service/src/server.rs",
    "crates/service/src/protocol.rs",
    "crates/service/src/registry.rs",
    "crates/service/src/cache.rs",
    "crates/service/src/trace.rs",
    "crates/service/src/prom.rs",
];

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_sim_crate(path: &str) -> bool {
    SIM_CRATES
        .iter()
        .any(|c| path.contains(&format!("crates/{c}/src/")))
}

fn is_persistence(path: &str) -> bool {
    PERSIST_MODULES.iter().any(|m| path.ends_with(m)) || is_codec(path)
}

fn is_codec(path: &str) -> bool {
    CODEC_MODULES.iter().any(|m| path.ends_with(m))
        || file_name(path).contains("persist")
        || file_name(path).contains("codec")
}

fn on_request_path(path: &str) -> bool {
    REQUEST_PATH.iter().any(|m| path.ends_with(m))
        || path.contains("crates/obs/src/")
        // The whole recommendation engine runs inside the `recommend`
        // verb's worker thread; a panic there kills the worker.
        || path.contains("crates/recommend/src/")
}

/// Runs every applicable rule over `view`, honors suppressions, and
/// appends suppression-misuse diagnostics.
pub fn check_file(view: &FileView<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if in_sim_crate(&view.path) || is_persistence(&view.path) {
        determinism(view, &mut diags);
    }
    if on_request_path(&view.path) {
        panic_surface(view, &mut diags);
    }
    if is_codec(&view.path) {
        bit_exactness(view, &mut diags);
        version_header(view, &mut diags);
    }
    diags.retain(|d| !view.is_suppressed(d));
    diags.extend(view.suppression_errors.iter().cloned());
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    // A single string literal can repeat the same lossy spec; one
    // location gets one report.
    diags.dedup();
    diags
}

/// Does the code token at code-position `p` (with lookahead) spell out
/// `words` (comments skipped, multi-char operators split)?
fn seq(view: &FileView<'_>, p: usize, words: &[&str]) -> bool {
    words.iter().enumerate().all(|(k, w)| {
        view.code
            .get(p + k)
            .is_some_and(|&idx| view.tokens[idx].text == *w)
    })
}

/// Rule 1 — nondeterminism in the simulation core and persistence
/// paths. The simulator is the study's ground truth: a wall-clock read
/// or a randomly-seeded structure silently degrades the <3% (paper §6)
/// error bound into run-to-run grid drift.
fn determinism(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "determinism";
    for (p, &idx) in view.code.iter().enumerate() {
        let t = &view.tokens[idx];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text {
            "HashMap" | "HashSet" | "RandomState" => out.push(view.diag_at(
                RULE,
                idx,
                format!(
                    "`{}` uses a randomly-seeded hasher; iteration order changes across runs \
                     — use BTreeMap/BTreeSet or sort before iterating/serializing",
                    t.text
                ),
            )),
            "SystemTime" => out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "`SystemTime` reads the wall clock; simulation and persistence code must be \
                 a pure function of its inputs"
                        .to_string(),
                ),
            ),
            "Instant" if seq(view, p + 1, &[":", ":", "now"]) => out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "`Instant::now()` makes behaviour timing-dependent; derive timing from \
                 simulated cycle counts instead"
                        .to_string(),
                ),
            ),
            "thread_rng" | "from_entropy" => out.push(view.diag_at(
                RULE,
                idx,
                format!(
                    "`{}` draws OS entropy; use an explicitly seeded RNG (e.g. an FNV-derived \
                     workload seed) so runs are reproducible",
                    t.text
                ),
            )),
            "rand" if seq(view, p + 1, &[":", ":", "random"]) => out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "`rand::random()` draws OS entropy; use an explicitly seeded RNG so runs are \
                 reproducible"
                        .to_string(),
                ),
            ),
            _ => {}
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [0u8; 4]`, `return [a, b]`, `match x { .. }`).
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "mut", "let", "ref", "in", "return", "match", "if", "else", "move", "as", "break", "box",
    "dyn", "const",
];

/// Rule 2 — panics on the mosaicd request path. A panic in request
/// handling kills a worker thread: enough malformed requests and the
/// pool is dead while the acceptor keeps admitting connections.
/// Errors must travel as protocol-level `err ...` responses.
fn panic_surface(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "panic-surface";
    for (p, &idx) in view.code.iter().enumerate() {
        let t = &view.tokens[idx];
        match (t.kind, t.text) {
            (TokenKind::Ident, "unwrap" | "expect")
                if p > 0 && view.tokens[view.code[p - 1]].text == "." =>
            {
                out.push(view.diag_at(
                    RULE,
                    idx,
                    format!(
                        "`.{}()` on the request path can panic a worker; return a \
                         protocol-level error response instead",
                        t.text
                    ),
                ));
            }
            (TokenKind::Ident, "panic" | "unreachable" | "todo" | "unimplemented")
                if seq(view, p + 1, &["!"]) =>
            {
                out.push(view.diag_at(
                    RULE,
                    idx,
                    format!(
                        "`{}!` on the request path kills a worker thread; return a \
                         protocol-level error response instead",
                        t.text
                    ),
                ));
            }
            (TokenKind::Punct, "[") if p > 0 => {
                let prev = &view.tokens[view.code[p - 1]];
                let indexes_into = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexes_into {
                    out.push(
                        view.diag_at(
                            RULE,
                            idx,
                            "direct indexing on the request path panics on out-of-bounds input; \
                         use `.get(..)` and handle `None` as a protocol error"
                                .to_string(),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// The blessed bit-exact float codecs (hex-bit and shortest-roundtrip).
const FLOAT_CODECS: [&str; 6] = [
    "to_bits",
    "from_bits",
    "f64_hex",
    "parse_f64_hex",
    "fmt_f64_shortest",
    "parse_f64_shortest",
];

/// Rule 3 — lossy floats in on-disk codecs. The model store and grid
/// cache only reproduce in-memory predictions bit-for-bit if every
/// `f64` round-trips exactly; a `{:.3}`-style rendering quietly
/// truncates coefficients.
fn bit_exactness(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "bit-exactness";
    let mut mentions_float = None;
    let mut has_codec = false;
    for &idx in &view.code {
        let t = &view.tokens[idx];
        match t.kind {
            TokenKind::Ident if t.text == "f64" || t.text == "f32" => {
                mentions_float.get_or_insert(idx);
            }
            TokenKind::Ident if FLOAT_CODECS.contains(&t.text) => has_codec = true,
            TokenKind::Str => {
                for spec in lossy_specs(t.text) {
                    out.push(view.diag_at(
                        RULE,
                        idx,
                        format!(
                            "lossy float format `{{:{spec}}}` in an on-disk codec; persist \
                             floats with the hex-bit codec (`to_bits`) or the \
                             shortest-roundtrip codec (`fmt_f64_shortest`)"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    if let Some(idx) = mentions_float {
        if !has_codec {
            out.push(
                view.diag_at(
                    RULE,
                    idx,
                    "codec module handles floating-point values but references no bit-exact \
                 codec (`to_bits`/`from_bits` or `fmt_f64_shortest`/`parse_f64_shortest`)"
                        .to_string(),
                ),
            );
        }
    }
}

/// Extracts the lossy format specs (`e`/`E` exponent or `.` precision)
/// from a format-string literal's placeholders.
fn lossy_specs(literal: &str) -> Vec<String> {
    let mut found = Vec::new();
    let chars: Vec<char> = literal.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2; // escaped `{{`
                continue;
            }
            let close = (i + 1..chars.len()).find(|&j| chars[j] == '}');
            if let Some(close) = close {
                let inner: String = chars[i + 1..close].iter().collect();
                if let Some((_, spec)) = inner.split_once(':') {
                    let lossy = spec.contains('.')
                        || spec.ends_with('e')
                        || spec.ends_with('E')
                        || spec == "e"
                        || spec == "E";
                    if lossy {
                        found.push(spec.to_string());
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    found
}

/// Rule 4 — versioned on-disk formats. Every writer/parser must
/// reference a `# mosaic-... vN` header constant so stale files are
/// re-measured instead of mis-parsed (the grid cache and model store
/// both learned this the hard way; see `# mosaic-cache v2`).
fn version_header(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "version-header";
    let mut has_header_literal = false;
    let mut has_version_const = false;
    for &idx in &view.code {
        let t = &view.tokens[idx];
        match t.kind {
            TokenKind::Str if t.text.contains("# mosaic-") => has_header_literal = true,
            TokenKind::Ident if t.text.contains("VERSION") => has_version_const = true,
            _ => {}
        }
    }
    let missing = match (has_header_literal, has_version_const) {
        (true, true) => return,
        (false, true) => "a `\"# mosaic-... v\"` header string",
        (true, false) => "a `*VERSION` constant",
        (false, false) => "a `\"# mosaic-... v\"` header string and a `*VERSION` constant",
    };
    let anchor = view.code.first().copied();
    let (line, col) = anchor.map_or((1, 1), |i| (view.tokens[i].line, view.tokens[i].col));
    out.push(Diagnostic {
        rule: RULE,
        path: view.path.clone(),
        line,
        col,
        message: format!(
            "on-disk format module must version its header: missing {missing} \
             (readers must reject versions they were not written for)"
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let view = FileView::new(path, src, &RULE_IDS);
        check_file(&view)
    }

    fn rules_hit(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn determinism_flags_only_in_scope() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let hits = run("crates/memsim/src/tlb.rs", src);
        assert_eq!(rules_hit(&hits), vec!["determinism", "determinism"]);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
        // Same source outside the scope: clean.
        assert_eq!(run("crates/service/src/metrics.rs", src), vec![]);
    }

    #[test]
    fn determinism_allows_instant_type_without_now() {
        let src = "fn f(deadline: Instant) -> Instant { deadline }\n";
        assert_eq!(run("crates/machine/src/engine.rs", src), vec![]);
    }

    #[test]
    fn panic_surface_flags_the_family() {
        let src = "fn f(v: &[u8]) -> u8 {\n    let x = v.get(0).unwrap();\n    \
                   if v.is_empty() { panic!(\"no\") }\n    v[1]\n}\n";
        let hits = run("crates/service/src/server.rs", src);
        assert_eq!(
            rules_hit(&hits),
            vec!["panic-surface", "panic-surface", "panic-surface"]
        );
        // Array literals and `unwrap_or` are fine.
        let ok = "fn g() -> u64 { u64::try_from(1i64).unwrap_or(0) }\n\
                  fn h() { let _ = &mut [0u8; 4]; }\n";
        assert_eq!(run("crates/service/src/server.rs", ok), vec![]);
        // Out of scope: anything goes.
        assert_eq!(run("crates/service/src/metrics.rs", src), vec![]);
    }

    #[test]
    fn bit_exactness_needs_a_codec_and_no_lossy_specs() {
        let lossy = "const FORMAT_VERSION: u32 = 1;\nconst MAGIC: &str = \"# mosaic-m v\";\n\
                     fn save(v: f64) -> String { format!(\"{v:.3}\") }\n";
        let hits = run("crates/mosmodel/src/persist.rs", lossy);
        assert_eq!(rules_hit(&hits), vec!["bit-exactness", "bit-exactness"]);
        let exact = "fn save(v: f64) -> String { format!(\"{:016x}\", v.to_bits()) }\n\
                     const V: &str = \"# mosaic-x v1\";\nconst FORMAT_VERSION: u32 = 1;\n";
        assert_eq!(run("crates/mosmodel/src/persist.rs", exact), vec![]);
    }

    #[test]
    fn lossy_spec_extraction() {
        assert_eq!(
            lossy_specs("\"{:.3e} {:e} {} {:016x} {{:.9}} {:?}\""),
            vec![".3e", "e"]
        );
        assert_eq!(lossy_specs("\"{cv:.2}\""), vec![".2"]);
        assert_eq!(lossy_specs("\"plain {} and {:>8}\""), Vec::<String>::new());
    }

    #[test]
    fn version_header_requires_both_halves() {
        let missing = "fn render(x: u64) -> String { format!(\"{x}\") }\n";
        let hits = run("crates/harness/src/experiment.rs", missing);
        assert_eq!(rules_hit(&hits), vec!["version-header"]);
        let versioned = "const CACHE_VERSION: u32 = 2;\n\
                         fn render(x: u64) -> String { format!(\"# mosaic-cache v{CACHE_VERSION}\\n{x}\") }\n";
        assert_eq!(run("crates/harness/src/experiment.rs", versioned), vec![]);
    }

    #[test]
    fn suppressions_silence_and_misuse_reports() {
        let src = "// audit:allow(determinism) probe map never iterated or serialized\n\
                   use std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let hits = run("crates/vmcore/src/lib.rs", src);
        // Line 2 suppressed, line 3 not.
        assert_eq!(rules_hit(&hits), vec!["determinism"]);
        assert_eq!(hits[0].line, 3);

        // A reasonless suppression is itself an error AND does not
        // silence anything.
        let bad = "// audit:allow(determinism)\nuse std::collections::HashMap;\n";
        let hits = run("crates/vmcore/src/lib.rs", bad);
        assert_eq!(rules_hit(&hits), vec!["suppression", "determinism"]);
    }

    #[test]
    fn obs_crate_is_in_both_determinism_and_panic_surface_scope() {
        // The tracer feeds byte-identical sim-domain traces, so clock
        // reads are nondeterminism there...
        let clocky = "fn stamp() -> Instant { Instant::now() }\n";
        assert_eq!(
            rules_hit(&run("crates/obs/src/lib.rs", clocky)),
            vec!["determinism"]
        );
        // ...and it runs inside every mosaicd request, so panics there
        // kill a worker thread.
        let panicky = "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n";
        assert_eq!(
            rules_hit(&run("crates/obs/src/lib.rs", panicky)),
            vec!["panic-surface"]
        );
        // Neither rule leaks to an out-of-scope crate.
        assert_eq!(run("crates/layouts/src/lib.rs", clocky), vec![]);
        assert_eq!(run("crates/layouts/src/lib.rs", panicky), vec![]);
    }

    #[test]
    fn recommend_crate_is_in_both_determinism_and_panic_surface_scope() {
        // Two servers must return byte-identical recommendations, so
        // entropy draws are nondeterminism inside the engine...
        let entropic = "fn seed() -> u64 { thread_rng() }\n";
        assert_eq!(
            rules_hit(&run("crates/recommend/src/explore.rs", entropic)),
            vec!["determinism"]
        );
        // ...and the engine runs inside the `recommend` verb's worker
        // thread, so panics there kill a worker.
        let panicky = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert_eq!(
            rules_hit(&run("crates/recommend/src/engine.rs", panicky)),
            vec!["panic-surface"]
        );
    }

    #[test]
    fn tracer_and_exposition_modules_are_on_the_request_path() {
        let panicky = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        for path in ["crates/service/src/trace.rs", "crates/service/src/prom.rs"] {
            assert_eq!(
                rules_hit(&run(path, panicky)),
                vec!["panic-surface"],
                "{path}"
            );
        }
        // The request path is panic-scoped, not determinism-scoped: the
        // wall-clock domain legitimately reads `Instant::now()` there.
        let clocky = "fn stamp() -> Instant { Instant::now() }\n";
        assert_eq!(run("crates/service/src/trace.rs", clocky), vec![]);
    }

    #[test]
    fn test_code_is_exempt_everywhere() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    \
                   #[test]\n    fn t() { x.unwrap(); v[0]; }\n}\n";
        assert_eq!(run("crates/memsim/src/lib.rs", src), vec![]);
        assert_eq!(run("crates/service/src/server.rs", src), vec![]);
    }
}
