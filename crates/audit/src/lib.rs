//! **mosaic-audit** — workspace static analysis for the reproduction's
//! non-negotiables: determinism, panic-freedom, and bit-exactness.
//!
//! The study's ground truth is a deterministic simulator: Mosmodel's
//! error bounds (paper §6) only mean anything if the `(R, H, M, C)`
//! samples are bit-exact across runs, and the persisted model store
//! only serves correct answers if every `f64` survives its text
//! round-trip. Nothing in the type system stops a contributor from
//! introducing a randomly-seeded `HashMap` iteration, a wall-clock
//! read, or a `{:.3}` float rendering into those paths — such a change
//! compiles, passes most tests, and surfaces weeks later as mysterious
//! grid drift. This crate closes that gap mechanically.
//!
//! Beyond the lexical rules, two shipped bug classes motivated semantic
//! analysis: a lock guard held across a model fit serialized every
//! request on one mutex (PR 4), and an unchecked `total * q` overflowed
//! u64 in the percentile rank (PR 3). Neither is visible to a flat
//! token scan — both need to know where blocks begin and end.
//!
//! # How it works
//!
//! A lightweight [lexer](lexer) tokenizes each source file (no rustc
//! dependency, no syn — std only, and it must never panic on arbitrary
//! input); each file is lexed **exactly once** per audit. A [block
//! parser](block) builds a brace/paren/bracket tree with `fn`/`impl`/
//! `mod` scope attribution over the same token stream — not a Rust
//! grammar, just enough structure for guard-liveness and scope
//! reasoning, and like the lexer it is total on arbitrary bytes. A
//! [rule set](rules) scoped by path runs over the production tokens
//! (test code is exempt), a [cross-file conformance pass](conformance)
//! proves every wire verb is fully shipped, and everything emits
//! rustc-style `file:line:col: error[rule]: message` diagnostics, with
//! JSON and SARIF 2.1.0 modes for machine consumption and a nonzero
//! exit for CI gating via `mosaic audit --deny` (which also enforces
//! the per-rule suppression budgets in
//! [`rules::SUPPRESSION_BUDGET`]).
//!
//! # Suppressions
//!
//! A finding can be silenced for its own line or the following line
//! with a justified inline comment:
//!
//! ```text
//! // audit:allow(determinism) probe map is never iterated or serialized
//! let mut probes: HashMap<u64, u32> = HashMap::new();
//! ```
//!
//! The justification string is mandatory — a bare `audit:allow(rule)`
//! is itself reported (rule id `suppression`), as is an unknown rule
//! name. Suppressions are part of the audit trail: `--json` output and
//! the text report both come from the same diagnostic stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod conformance;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{render_json, render_sarif, Diagnostic};
pub use rules::{LOCK_ORDER, RULE_IDS, SUPPRESSION_BUDGET};
pub use workspace::{audit_file, audit_files, audit_workspace, AuditReport};
