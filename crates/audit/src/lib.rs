//! **mosaic-audit** — workspace static analysis for the reproduction's
//! non-negotiables: determinism, panic-freedom, and bit-exactness.
//!
//! The study's ground truth is a deterministic simulator: Mosmodel's
//! error bounds (paper §6) only mean anything if the `(R, H, M, C)`
//! samples are bit-exact across runs, and the persisted model store
//! only serves correct answers if every `f64` survives its text
//! round-trip. Nothing in the type system stops a contributor from
//! introducing a randomly-seeded `HashMap` iteration, a wall-clock
//! read, or a `{:.3}` float rendering into those paths — such a change
//! compiles, passes most tests, and surfaces weeks later as mysterious
//! grid drift. This crate closes that gap mechanically.
//!
//! # How it works
//!
//! A lightweight [lexer](lexer) tokenizes each source file (no rustc
//! dependency, no syn — std only, and it must never panic on arbitrary
//! input). A [rule set](rules) scoped by path runs over the production
//! tokens (test code is exempt) and emits rustc-style
//! `file:line:col: error[rule]: message` diagnostics, with a JSON mode
//! for machine consumption and a nonzero exit for CI gating via
//! `mosaic audit --deny`.
//!
//! # Suppressions
//!
//! A finding can be silenced for its own line or the following line
//! with a justified inline comment:
//!
//! ```text
//! // audit:allow(determinism) probe map is never iterated or serialized
//! let mut probes: HashMap<u64, u32> = HashMap::new();
//! ```
//!
//! The justification string is mandatory — a bare `audit:allow(rule)`
//! is itself reported (rule id `suppression`), as is an unknown rule
//! name. Suppressions are part of the audit trail: `--json` output and
//! the text report both come from the same diagnostic stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{render_json, Diagnostic};
pub use rules::RULE_IDS;
pub use workspace::{audit_file, audit_workspace};
