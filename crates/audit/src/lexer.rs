//! A lightweight Rust lexer: just enough token structure for lexical
//! lint rules, with line/column spans and total panic-freedom.
//!
//! The lexer does **not** aim to be a conforming Rust tokenizer. It
//! distinguishes the categories the audit rules care about — comments,
//! string-ish literals, identifiers, numbers, punctuation — and it must
//! accept *any* input without panicking (unterminated strings and
//! comments simply run to end of input). A proptest in the fixture
//! suite feeds it arbitrary byte strings to hold it to that contract.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (integer or float, any base).
    Number,
    /// String-ish literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`,
    /// `'c'` — the text includes the delimiters.
    Str,
    /// `// ...` line comment (text includes the `//`).
    LineComment,
    /// `/* ... */` block comment, nesting handled.
    BlockComment,
    /// A single punctuation character (`.`, `[`, `!`, `::` is two).
    Punct,
}

/// One lexeme with its location (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token's category.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

thread_local! {
    /// How many times [`lex`] has run on this thread. The whole engine
    /// is budgeted at exactly one lex per file per audit — the block
    /// parser and every rule (including the cross-file wire-conformance
    /// pass) share the one token stream — and a workspace test counts
    /// invocations against this to pin that. Thread-local so parallel
    /// test threads cannot race the count.
    static LEX_INVOCATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// This thread's lifetime count of [`lex`] calls.
pub fn lex_invocations() -> u64 {
    LEX_INVOCATIONS.with(std::cell::Cell::get)
}

/// Tokenizes `source`. Never panics; malformed input degrades to
/// best-effort tokens (an unterminated string becomes one `Str` token
/// running to end of input).
pub fn lex(source: &str) -> Vec<Token<'_>> {
    LEX_INVOCATIONS.with(|c| c.set(c.get().wrapping_add(1)));
    Lexer {
        source,
        rest: source.char_indices().peekable(),
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'a> {
    source: &'a str,
    rest: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut tokens = Vec::new();
        while let Some(&(start, c)) = self.rest.peek() {
            let (line, col) = (self.line, self.col);
            let kind = match c {
                c if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                '/' if self.starts_with(start, "//") => self.line_comment(),
                '/' if self.starts_with(start, "/*") => self.block_comment(),
                '"' => self.string('"'),
                'r' | 'b' if self.raw_or_byte_string(start) => self.raw_string(start),
                'b' if self.starts_with(start, "b'") => {
                    self.bump(); // 'b'
                    self.bump(); // opening quote
                    self.char_literal()
                }
                'b' if self.starts_with(start, "b\"") => {
                    self.bump();
                    self.string('"')
                }
                '\'' => self.lifetime_or_char(start),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    self.bump();
                    TokenKind::Punct
                }
            };
            let end = self.position();
            tokens.push(Token {
                kind,
                text: &self.source[start..end],
                line,
                col,
            });
        }
        tokens
    }

    /// Byte offset of the next unconsumed character (or end of input).
    fn position(&mut self) -> usize {
        self.rest
            .peek()
            .map_or(self.source.len(), |&(offset, _)| offset)
    }

    fn starts_with(&self, start: usize, prefix: &str) -> bool {
        self.source[start..].starts_with(prefix)
    }

    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.rest.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, keep: impl Fn(char) -> bool) {
        while let Some(&(_, c)) = self.rest.peek() {
            if !keep(c) {
                break;
            }
            self.bump();
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        self.bump_while(|c| c != '\n');
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            let start = self.position();
            if self.starts_with(start, "/*") {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.starts_with(start, "*/") {
                self.bump();
                self.bump();
                depth -= 1;
            } else if self.bump().is_none() {
                break; // unterminated: run to end of input
            }
        }
        TokenKind::BlockComment
    }

    fn string(&mut self, delim: char) -> TokenKind {
        self.bump(); // opening delimiter
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // escaped character (may be the delimiter)
            } else if c == delim {
                break;
            }
        }
        TokenKind::Str
    }

    /// Is the char at `start` the head of `r"`, `r#`, `br"`, or `br#`?
    fn raw_or_byte_string(&self, start: usize) -> bool {
        let tail = &self.source[start..];
        let after = tail
            .strip_prefix("br")
            .or_else(|| tail.strip_prefix("rb"))
            .or_else(|| tail.strip_prefix('r'));
        after.is_some_and(|rest| {
            let rest = rest.trim_start_matches('#');
            rest.starts_with('"') && !rest.is_empty()
        })
    }

    fn raw_string(&mut self, start: usize) -> TokenKind {
        // Consume the r/br prefix and count the hashes.
        self.bump_while(|c| c == 'r' || c == 'b');
        let mut hashes = 0usize;
        while self.rest.peek().is_some_and(|&(_, c)| c == '#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let closer: String = std::iter::once('"')
            .chain("#".repeat(hashes).chars())
            .collect();
        loop {
            let here = self.position();
            if here >= self.source.len() {
                break; // unterminated
            }
            if self.starts_with(here, &closer) {
                for _ in 0..closer.chars().count() {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        let _ = start;
        TokenKind::Str
    }

    fn lifetime_or_char(&mut self, start: usize) -> TokenKind {
        // `'a` / `'static` are lifetimes (no closing quote right after
        // the identifier); `'x'`, `'\n'`, `'\u{1F600}'` are char
        // literals.
        let tail: Vec<char> = self.source[start..].chars().take(3).collect();
        let is_lifetime = matches!(
            (tail.get(1), tail.get(2)),
            (Some(c), next) if (c.is_alphabetic() || *c == '_') && next != Some(&'\'')
        );
        self.bump(); // the quote
        if is_lifetime {
            self.bump_while(|c| c.is_alphanumeric() || c == '_');
            TokenKind::Lifetime
        } else {
            self.char_literal()
        }
    }

    /// Consumes the rest of a char literal; the opening `'` (and `b`
    /// prefix, if any) must already be consumed.
    fn char_literal(&mut self) -> TokenKind {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // escaped char (possibly `'` or `\`)
            } else if c == '\'' || c == '\n' {
                break; // newline: give up, it was malformed
            }
        }
        TokenKind::Str
    }

    fn ident(&mut self) -> TokenKind {
        self.bump();
        self.bump_while(|c| c.is_alphanumeric() || c == '_');
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        self.bump();
        // Good enough for lint purposes: digits, radix/exponent letters,
        // underscores, and `.` only when followed by a digit (so method
        // calls like `1.max(2)` keep their `.` as punctuation).
        loop {
            let here = self.position();
            let mut chars = self.source[here..].chars();
            match (chars.next(), chars.next()) {
                (Some('.'), Some(next)) if next.is_ascii_digit() => {
                    self.bump();
                    self.bump();
                }
                (Some(c), _) if c.is_alphanumeric() || c == '_' => {
                    self.bump();
                }
                _ => break,
            }
        }
        TokenKind::Number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_categories() {
        assert_eq!(
            kinds("let x = 1.5e3; // hi"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Number, "1.5e3"),
                (TokenKind::Punct, ";"),
                (TokenKind::LineComment, "// hi"),
            ]
        );
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        assert_eq!(
            kinds(r#"f("a\"b", 'c', '\n', 'x: &'static str)"#)
                .iter()
                .filter(|(k, _)| *k == TokenKind::Str)
                .count(),
            3
        );
        let toks = kinds("&'a str 'label: loop");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'label")));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let toks = kinds(r##"r#"embedded " quote"# after"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, r##"r#"embedded " quote"#"##);
        assert_eq!(toks[1], (TokenKind::Ident, "after"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::BlockComment, "/* x /* y */ z */"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = kinds(r"s.split('\'').count() b'\'' next");
        assert!(toks.contains(&(TokenKind::Str, r"'\''")));
        assert!(toks.contains(&(TokenKind::Str, r"b'\''")));
        assert!(toks.contains(&(TokenKind::Ident, "next")));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'", "b'", "'\\"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn format_string_stays_one_token() {
        let toks = kinds(r#"format!("{:.3e}", v)"#);
        assert!(toks.contains(&(TokenKind::Str, r#""{:.3e}""#)));
    }
}
