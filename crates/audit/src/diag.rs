//! Diagnostics: rustc-style text rendering and hand-rolled (std-only)
//! JSON and SARIF 2.1.0 output modes for machine consumption in CI.

use std::fmt;

/// One finding: a rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`determinism`, `panic-surface`, ...).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Renders the full report as a JSON document:
/// `{"count": N, "diagnostics": [{"rule": ..., "path": ..., ...}]}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"count\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_string(d.rule),
            json_string(&d.path),
            d.line,
            d.col,
            json_string(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the report as a SARIF 2.1.0 document (one run, tool
/// `mosaic-audit`), the interchange format CI dashboards ingest. The
/// output is deterministic — same diagnostics, byte-identical document —
/// so it can be diffed and archived as a build artifact. `rules` is the
/// full rule table to advertise in `tool.driver.rules` (findings may
/// reference a subset).
pub fn render_sarif(diags: &[Diagnostic], rules: &[&str]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"mosaic-audit\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/mosaic/mosaic\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n            {{\"id\": {}}}", json_string(rule)));
    }
    if !rules.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": {},\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": {}}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}\n          ]\n        }}",
            json_string(d.rule),
            json_string(&d.message),
            json_string(&d.path),
            d.line,
            d.col,
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_is_rustc_style() {
        let d = Diagnostic {
            rule: "determinism",
            path: "crates/memsim/src/tlb.rs".into(),
            line: 12,
            col: 9,
            message: "HashMap iteration order is nondeterministic".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/memsim/src/tlb.rs:12:9: error[determinism]: \
             HashMap iteration order is nondeterministic"
        );
    }

    #[test]
    fn sarif_is_valid_deterministic_and_complete() {
        let diags = vec![
            Diagnostic {
                rule: "lock-discipline",
                path: "crates/service/src/registry.rs".into(),
                line: 7,
                col: 13,
                message: "guard held across fit".into(),
            },
            Diagnostic {
                rule: "arith-safety",
                path: "crates/service/src/metrics.rs".into(),
                line: 3,
                col: 9,
                message: "unchecked `*` can overflow".into(),
            },
        ];
        let sarif = render_sarif(&diags, &["lock-discipline", "arith-safety"]);
        assert!(sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"mosaic-audit\""));
        assert!(sarif.contains("{\"id\": \"lock-discipline\"}"));
        assert!(sarif.contains("\"ruleId\": \"lock-discipline\""));
        assert!(sarif.contains("\"startLine\": 7, \"startColumn\": 13"));
        assert!(sarif.contains("\"uri\": \"crates/service/src/registry.rs\""));
        // Deterministic: a second render is byte-identical.
        assert_eq!(
            sarif,
            render_sarif(&diags, &["lock-discipline", "arith-safety"])
        );
        // Empty report still carries the rule table and an empty results
        // array.
        let empty = render_sarif(&[], &["determinism"]);
        assert!(empty.contains("\"results\": []"));
        assert!(empty.contains("{\"id\": \"determinism\"}"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic {
            rule: "panic-surface",
            path: "a/b.rs".into(),
            line: 1,
            col: 2,
            message: "say \"no\"\nto panics\t\u{1}".into(),
        }];
        let json = render_json(&diags);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains(r#"say \"no\"\nto panics\t\u0001"#));
        assert!(render_json(&[]).contains("\"count\": 0"));
    }
}
