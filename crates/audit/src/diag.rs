//! Diagnostics: rustc-style text rendering and a hand-rolled (std-only)
//! JSON output mode for machine consumption in CI.

use std::fmt;

/// One finding: a rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`determinism`, `panic-surface`, ...).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Renders the full report as a JSON document:
/// `{"count": N, "diagnostics": [{"rule": ..., "path": ..., ...}]}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"count\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_string(d.rule),
            json_string(&d.path),
            d.line,
            d.col,
            json_string(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_is_rustc_style() {
        let d = Diagnostic {
            rule: "determinism",
            path: "crates/memsim/src/tlb.rs".into(),
            line: 12,
            col: 9,
            message: "HashMap iteration order is nondeterministic".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/memsim/src/tlb.rs:12:9: error[determinism]: \
             HashMap iteration order is nondeterministic"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic {
            rule: "panic-surface",
            path: "a/b.rs".into(),
            line: 1,
            col: 2,
            message: "say \"no\"\nto panics\t\u{1}".into(),
        }];
        let json = render_json(&diags);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains(r#"say \"no\"\nto panics\t\u0001"#));
        assert!(render_json(&[]).contains("\"count\": 0"));
    }
}
