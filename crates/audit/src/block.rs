//! A lightweight block-structure parser layered on the token stream.
//!
//! This is deliberately **not** a Rust grammar. It recovers just enough
//! structure for semantic lint rules: a tree of `{}`/`()`/`[]` delimiter
//! groups over the production tokens, with brace blocks attributed to
//! the item that introduces them (`fn name`, `impl`, `mod name`,
//! `trait name`) by a bounded backward scan. Everything else — match
//! arms, closures, struct literals — is an anonymous block.
//!
//! Like the lexer, the builder is total: arbitrary bytes (and therefore
//! arbitrary token soup) must never panic it. Unbalanced delimiters are
//! recorded in [`BlockTree::unbalanced`] so a rule can turn them into a
//! diagnostic instead of a crash; the tree that *was* recoverable stays
//! usable so the semantic rules degrade gracefully rather than going
//! blind. A proptest in the fixture suite holds it to that contract and
//! checks that every delimiter token ends up accounted for exactly once
//! (as an open, a close, or an unbalanced entry).

use crate::lexer::{Token, TokenKind};

/// Which delimiter pair a [`Block`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelimKind {
    /// `{ ... }`
    Brace,
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
}

/// What item introduces a brace block (best-effort attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Owner {
    /// A `fn` body; the name token index is in [`Block::owner_name`].
    Fn,
    /// An `impl` block.
    Impl,
    /// A `mod` body.
    Mod,
    /// A `trait` body.
    Trait,
    /// Anything else: match arms, closures, struct literals, plain
    /// blocks, and all paren/bracket groups.
    Other,
}

/// One delimiter group. Positions (`open`, `close`, `owner_name`) are
/// indices into the *code-position list* the tree was built from (the
/// same indexing `FileView::code` uses), not raw token indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Delimiter pair.
    pub kind: DelimKind,
    /// Item attribution (brace blocks only; delimiters are `Other`).
    pub owner: Owner,
    /// Code position of the `fn`/`mod`/`trait` name identifier, if any.
    pub owner_name: Option<usize>,
    /// Code position of the opening delimiter.
    pub open: usize,
    /// Code position of the matching closer; `None` if unterminated.
    pub close: Option<usize>,
    /// Index (into [`BlockTree::blocks`]) of the enclosing block.
    pub parent: Option<usize>,
}

/// The block structure of one file's production token stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockTree {
    /// All blocks in opening order (preorder).
    pub blocks: Vec<Block>,
    /// `enclosing[p]` — the innermost block containing code position
    /// `p` (openers belong to their parent; closers to the block they
    /// close).
    pub enclosing: Vec<Option<usize>>,
    /// Code positions of unmatched delimiters: stray closers, and the
    /// openers of blocks that never close. Sorted ascending.
    pub unbalanced: Vec<usize>,
}

/// How far backwards the owner scan looks before giving up; bounds the
/// cost on adversarial input. Real signatures fit comfortably.
const OWNER_SCAN_WINDOW: usize = 128;

impl BlockTree {
    /// Builds the tree over `code` (indices into `tokens`, comments and
    /// test code already filtered out). Total: never panics, whatever
    /// the input.
    pub fn build(tokens: &[Token<'_>], code: &[usize]) -> BlockTree {
        let mut blocks: Vec<Block> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut enclosing = vec![None; code.len()];
        let mut unbalanced = Vec::new();
        for (p, &idx) in code.iter().enumerate() {
            enclosing[p] = stack.last().copied();
            let t = &tokens[idx];
            if t.kind != TokenKind::Punct {
                continue;
            }
            let open_kind = match t.text {
                "{" => Some(DelimKind::Brace),
                "(" => Some(DelimKind::Paren),
                "[" => Some(DelimKind::Bracket),
                _ => None,
            };
            if let Some(kind) = open_kind {
                let (owner, owner_name) = if kind == DelimKind::Brace {
                    scan_owner(tokens, code, p)
                } else {
                    (Owner::Other, None)
                };
                blocks.push(Block {
                    kind,
                    owner,
                    owner_name,
                    open: p,
                    close: None,
                    parent: stack.last().copied(),
                });
                stack.push(blocks.len() - 1);
                continue;
            }
            let close_kind = match t.text {
                "}" => Some(DelimKind::Brace),
                ")" => Some(DelimKind::Paren),
                "]" => Some(DelimKind::Bracket),
                _ => None,
            };
            if let Some(kind) = close_kind {
                // Close the nearest open block of the same kind,
                // declaring anything stacked above it unterminated —
                // `fn f( {` recovers instead of corrupting the rest.
                match stack.iter().rposition(|&b| blocks[b].kind == kind) {
                    Some(pos) => {
                        for &orphan in &stack[pos + 1..] {
                            unbalanced.push(blocks[orphan].open);
                        }
                        stack.truncate(pos + 1);
                        if let Some(b) = stack.pop() {
                            blocks[b].close = Some(p);
                        }
                    }
                    None => unbalanced.push(p),
                }
            }
        }
        for &b in &stack {
            unbalanced.push(blocks[b].open);
        }
        unbalanced.sort_unstable();
        unbalanced.dedup();
        BlockTree {
            blocks,
            enclosing,
            unbalanced,
        }
    }

    /// The innermost *brace* block containing code position `p`.
    pub fn enclosing_brace(&self, p: usize) -> Option<usize> {
        let mut b = self.enclosing.get(p).copied().flatten();
        while let Some(i) = b {
            if self.blocks[i].kind == DelimKind::Brace {
                return Some(i);
            }
            b = self.blocks[i].parent;
        }
        None
    }

    /// The innermost enclosing `fn`-body block for code position `p`.
    pub fn fn_scope(&self, p: usize) -> Option<usize> {
        let mut b = self.enclosing.get(p).copied().flatten();
        while let Some(i) = b {
            let block = &self.blocks[i];
            if block.kind == DelimKind::Brace && block.owner == Owner::Fn {
                return Some(i);
            }
            b = block.parent;
        }
        None
    }

    /// Exclusive end position of block `b`: its closer, or `code_len`
    /// when the block never closes (unbalanced input).
    pub fn block_end(&self, b: usize, code_len: usize) -> usize {
        self.blocks
            .get(b)
            .and_then(|bl| bl.close)
            .unwrap_or(code_len)
    }
}

/// Attributes the brace opening at code position `open_p` to its item
/// by scanning backwards to the previous statement/block boundary.
fn scan_owner(tokens: &[Token<'_>], code: &[usize], open_p: usize) -> (Owner, Option<usize>) {
    let ident_at = |k: usize| -> Option<usize> {
        code.get(k)
            .filter(|&&i| tokens[i].kind == TokenKind::Ident)
            .map(|_| k)
    };
    let lo = open_p.saturating_sub(OWNER_SCAN_WINDOW);
    let mut j = open_p;
    while j > lo {
        j -= 1;
        let t = &tokens[code[j]];
        if t.kind == TokenKind::Punct && matches!(t.text, ";" | "{" | "}") {
            break;
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text {
            // A `fn` immediately followed by a name is the item header;
            // a bare `fn` is the function-pointer *type* (`fn(u64) ->
            // u64`) — keep scanning past it for the real header.
            "fn" => {
                if let Some(name) = ident_at(j + 1) {
                    return (Owner::Fn, Some(name));
                }
            }
            "mod" => {
                if let Some(name) = ident_at(j + 1) {
                    return (Owner::Mod, Some(name));
                }
            }
            "trait" => {
                if let Some(name) = ident_at(j + 1) {
                    return (Owner::Trait, Some(name));
                }
            }
            "impl" => return (Owner::Impl, None),
            _ => {}
        }
    }
    (Owner::Other, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> (Vec<usize>, BlockTree) {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let t = BlockTree::build(&tokens, &code);
        (code, t)
    }

    #[test]
    fn fn_impl_mod_owners_are_attributed() {
        let src =
            "mod api {\n    impl Registry {\n        pub fn entry(&self) -> u64 { 1 }\n    }\n}\n";
        let (_, t) = tree(src);
        assert!(t.unbalanced.is_empty());
        let owners: Vec<Owner> = t
            .blocks
            .iter()
            .filter(|b| b.kind == DelimKind::Brace)
            .map(|b| b.owner)
            .collect();
        assert_eq!(owners, vec![Owner::Mod, Owner::Impl, Owner::Fn]);
    }

    #[test]
    fn match_arms_and_struct_literals_are_anonymous() {
        let src = "fn f(x: u8) -> P {\n    match x {\n        0 => { zero() }\n        _ => P { v: x },\n    }\n}\n";
        let (_, t) = tree(src);
        assert!(t.unbalanced.is_empty());
        let braces: Vec<Owner> = t
            .blocks
            .iter()
            .filter(|b| b.kind == DelimKind::Brace)
            .map(|b| b.owner)
            .collect();
        assert_eq!(
            braces,
            vec![Owner::Fn, Owner::Other, Owner::Other, Owner::Other]
        );
    }

    #[test]
    fn fn_pointer_types_do_not_steal_ownership() {
        let src = "pub fn apply(f: fn(u64) -> u64, x: u64) -> u64 { f(x) }\n";
        let (code, t) = tree(src);
        let body = t
            .blocks
            .iter()
            .find(|b| b.kind == DelimKind::Brace)
            .expect("body");
        assert_eq!(body.owner, Owner::Fn);
        let name = body.owner_name.expect("name");
        let tokens = lex(src);
        assert_eq!(tokens[code[name]].text, "apply");
        let _ = tokens;
    }

    #[test]
    fn fn_scope_walks_out_of_nested_blocks() {
        let src = "fn outer() {\n    if x {\n        inner();\n    }\n}\n";
        let (code, t) = tree(src);
        let tokens = lex(src);
        let inner_pos = (0..code.len())
            .find(|&p| tokens[code[p]].text == "inner")
            .expect("inner");
        let scope = t.fn_scope(inner_pos).expect("fn scope");
        assert_eq!(t.blocks[scope].owner, Owner::Fn);
        assert_eq!(
            t.blocks[scope].owner_name.map(|n| tokens[code[n]].text),
            Some("outer")
        );
    }

    #[test]
    fn unbalanced_input_is_recorded_not_fatal() {
        let (_, t) = tree("fn f() { let x = 1;\n"); // unterminated brace
        assert_eq!(t.unbalanced.len(), 1);
        let (_, t) = tree("}\n"); // stray closer
        assert_eq!(t.unbalanced.len(), 1);
        // Mismatched nesting recovers: the paren never closes, the
        // brace still matches.
        let (_, t) = tree("fn f( { }\n");
        assert_eq!(t.unbalanced.len(), 1);
        assert!(t
            .blocks
            .iter()
            .any(|b| b.kind == DelimKind::Brace && b.close.is_some()));
    }

    #[test]
    fn every_delimiter_is_accounted_for_exactly_once() {
        let src = "fn f() { g([1, 2], (3)); }\nimpl T { }\n} (\n";
        let (code, t) = tree(src);
        let tokens = lex(src);
        let mut seen = std::collections::BTreeSet::new();
        for b in &t.blocks {
            assert!(seen.insert(b.open));
            if let Some(c) = b.close {
                assert!(seen.insert(c));
            }
        }
        // Every unbalanced entry is either an unterminated opener
        // (already a block's `open`) or a stray closer (new position).
        for &u in &t.unbalanced {
            let is_unterminated_open = t.blocks.iter().any(|b| b.open == u && b.close.is_none());
            assert!(seen.insert(u) != is_unterminated_open);
        }
        let delims: Vec<usize> = (0..code.len())
            .filter(|&p| {
                tokens[code[p]].kind == TokenKind::Punct
                    && matches!(tokens[code[p]].text, "{" | "}" | "(" | ")" | "[" | "]")
            })
            .collect();
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), delims);
    }
}
