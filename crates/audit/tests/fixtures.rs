//! Fixture suite: known-bad sources must produce exactly the expected
//! `(path, rule, line)` findings, known-good sources (including every
//! rule's justified `audit:allow` waiver) must audit clean, and the
//! engine must never panic on arbitrary input.
//!
//! The fixture trees mirror real workspace paths (`crates/memsim/src/…`)
//! because the rules are path-scoped: auditing a fixture under its
//! mirrored relative path exercises the same scope tables production
//! runs use. Each tree also carries a `README.md` and the protocol/
//! server/client/CLI files, so the trees are audited as whole
//! workspaces ([`audit::audit_files`]) and the cross-file
//! wire-conformance matrix runs over them too.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use audit::block::DelimKind;
use audit::source::FileView;
use audit::{audit_file, audit_files, RULE_IDS};
use proptest::prelude::*;

fn fixture_root(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(tree)
}

/// All `.rs` files under the tree as `(mirrored-relative-path, text)`.
fn fixture_files(tree: &str) -> Vec<(String, String)> {
    let root = fixture_root(tree);
    let mut stack = vec![root.clone()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("fixture tree readable") {
            let path = entry.expect("fixture entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(&root)
                    .expect("under fixture root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let text = fs::read_to_string(&path).expect("fixture readable");
                files.push((rel, text));
            }
        }
    }
    files.sort();
    files
}

fn fixture_readme(tree: &str) -> Option<String> {
    fs::read_to_string(fixture_root(tree).join("README.md")).ok()
}

/// Audits the tree as one workspace (per-file rules + wire conformance).
fn findings(tree: &str) -> BTreeSet<(String, &'static str, usize)> {
    let files = fixture_files(tree);
    let readme = fixture_readme(tree);
    audit_files(&files, readme.as_deref())
        .diagnostics
        .into_iter()
        .map(|d| (d.path, d.rule, d.line))
        .collect()
}

#[test]
fn bad_fixtures_produce_exactly_the_expected_findings() {
    let expected: BTreeSet<(String, &'static str, usize)> = [
        // Nondeterminism in a simulation crate.
        ("crates/memsim/src/clock.rs", "determinism", 3),
        ("crates/memsim/src/clock.rs", "determinism", 4),
        ("crates/memsim/src/clock.rs", "determinism", 7),
        ("crates/memsim/src/clock.rs", "determinism", 8),
        ("crates/memsim/src/clock.rs", "determinism", 9),
        // An unterminated block: the semantic rules cannot reason past
        // it, so the imbalance itself is the finding.
        ("crates/memsim/src/broken.rs", "block-structure", 3),
        // Panics on the request path.
        ("crates/service/src/server.rs", "panic-surface", 4),
        ("crates/service/src/server.rs", "panic-surface", 5),
        ("crates/service/src/server.rs", "panic-surface", 6),
        // A guard live across a model fit, a lock-order inversion, and a
        // same-lock re-acquisition.
        ("crates/service/src/registry.rs", "lock-discipline", 5),
        ("crates/service/src/registry.rs", "lock-discipline", 6),
        ("crates/service/src/registry.rs", "lock-discipline", 12),
        // Unchecked counter math and truncating casts (two findings on
        // line 6: the `+` and the `as u32`).
        ("crates/service/src/metrics.rs", "arith-safety", 4),
        ("crates/service/src/metrics.rs", "arith-safety", 5),
        ("crates/service/src/metrics.rs", "arith-safety", 6),
        // The `frob` verb parses but shipped nowhere: four missing
        // matrix cells, all anchored at its parser arm.
        ("crates/service/src/protocol.rs", "wire-conformance", 7),
        // Entropy then an indexing panic inside the recommendation
        // engine, which sits in both the determinism and panic-surface
        // scopes.
        ("crates/recommend/src/explore.rs", "determinism", 4),
        ("crates/recommend/src/explore.rs", "panic-surface", 5),
        // Lossy floats in a codec module: the module-level "no bit-exact
        // codec referenced" finding plus the `{v:.6}` format spec.
        ("crates/mosmodel/src/persist.rs", "bit-exactness", 6),
        ("crates/mosmodel/src/persist.rs", "bit-exactness", 7),
        // Unversioned on-disk format.
        ("crates/harness/src/experiment.rs", "version-header", 3),
        // Suppression misuse: no reason, unknown rule — and neither
        // malformed waiver silences its line's real finding.
        ("crates/vmcore/src/lib.rs", "suppression", 1),
        ("crates/vmcore/src/lib.rs", "determinism", 2),
        ("crates/vmcore/src/lib.rs", "suppression", 3),
        ("crates/vmcore/src/lib.rs", "determinism", 4),
    ]
    .into_iter()
    .map(|(p, r, l)| (p.to_string(), r, l))
    .collect();

    let got = findings("bad");
    assert_eq!(
        got,
        expected,
        "bad-fixture findings diverged\nmissing: {:?}\nunexpected: {:?}",
        expected.difference(&got).collect::<Vec<_>>(),
        got.difference(&expected).collect::<Vec<_>>(),
    );

    // Every scoped rule is demonstrated by at least one caught violation.
    let rules_caught: BTreeSet<&str> = got.iter().map(|(_, r, _)| *r).collect();
    for rule in RULE_IDS {
        assert!(rules_caught.contains(rule), "no bad fixture catches {rule}");
    }
}

/// The exact workspace-level finding count for the bad tree. CI runs
/// `mosaic audit --root crates/audit/tests/fixtures/bad --deny` and
/// greps the report footer for this number, so the two must move
/// together.
const BAD_TREE_TOTAL: usize = 29;

#[test]
fn bad_tree_workspace_audit_reports_the_pinned_total() {
    let root = fixture_root("bad");
    let report = audit::audit_workspace(&root).expect("bad tree readable");
    assert_eq!(
        report.diagnostics.len(),
        BAD_TREE_TOTAL,
        "bad-tree total drifted (update BAD_TREE_TOTAL and the CI grep): {:#?}",
        report.diagnostics
    );
}

#[test]
fn good_fixtures_audit_clean_and_exercise_every_suppression() {
    let files = fixture_files("good");
    assert!(!files.is_empty(), "good fixture tree is missing");

    for (rel, text) in &files {
        let diags = audit_file(rel, text);
        assert!(
            diags.is_empty(),
            "good fixture {rel} is not clean: {diags:?}"
        );
    }

    // The whole tree is also clean as a workspace — the cross-file
    // wire-conformance pass included (its `selftest` waiver is honored).
    let readme = fixture_readme("good");
    let report = audit_files(&files, readme.as_deref());
    assert_eq!(
        report.diagnostics,
        vec![],
        "good tree is not clean at workspace level"
    );

    // The clean runs above must be *earned*: each scoped rule has a good
    // fixture whose `audit:allow(<rule>)` waiver is what silences it.
    let all_text: String = files.iter().map(|(_, t)| t.as_str()).collect();
    for rule in RULE_IDS {
        assert!(
            all_text.contains(&format!("audit:allow({rule})")),
            "no good fixture demonstrates an honored audit:allow({rule})"
        );
        assert!(
            report.suppressions.get(rule).copied().unwrap_or(0) >= 1,
            "workspace report does not count the {rule} waiver"
        );
    }
}

#[test]
fn stripping_the_waivers_makes_the_good_fixtures_fail() {
    // The good fixtures really do contain violations — removing the
    // justified waivers must resurface each rule's finding, including
    // the cross-file wire-conformance one.
    let stripped: Vec<(String, String)> = fixture_files("good")
        .into_iter()
        .map(|(rel, text)| {
            let text: String = text
                .lines()
                .map(|l| {
                    if l.contains("audit:allow(") {
                        "// waiver removed\n".to_string()
                    } else {
                        format!("{l}\n")
                    }
                })
                .collect();
            (rel, text)
        })
        .collect();
    let readme = fixture_readme("good");
    let resurfaced: BTreeSet<&str> = audit_files(&stripped, readme.as_deref())
        .diagnostics
        .into_iter()
        .map(|d| d.rule)
        .collect();
    for rule in RULE_IDS {
        assert!(
            resurfaced.contains(rule),
            "stripping waivers did not resurface {rule}"
        );
    }
}

/// The acceptance test for wire conformance on the *real* workspace:
/// deleting a `Client::` method (or a CLI arm) for a shipped verb must
/// make the audit fail.
#[test]
fn deleting_a_client_method_or_cli_arm_breaks_real_wire_conformance() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let read = |p: &str| {
        (
            p.to_string(),
            fs::read_to_string(ws.join(p)).unwrap_or_else(|e| panic!("{p}: {e}")),
        )
    };
    let files = vec![
        read("crates/service/src/protocol.rs"),
        read("crates/service/src/server.rs"),
        read("crates/service/src/client.rs"),
        read("src/main.rs"),
    ];
    let readme = fs::read_to_string(ws.join("README.md")).expect("workspace README");

    let wire = |files: &[(String, String)]| -> Vec<String> {
        audit_files(files, Some(&readme))
            .diagnostics
            .into_iter()
            .filter(|d| d.rule == "wire-conformance")
            .map(|d| d.message)
            .collect()
    };

    // The shipped tree conforms.
    assert_eq!(wire(&files), Vec::<String>::new());

    // Excise every `recommend` mention from the client: the verb still
    // parses, so the matrix must report the missing client method.
    let mut no_client = files.clone();
    no_client[2].1 = no_client[2].1.replace("recommend", "redacted");
    let msgs = wire(&no_client);
    assert!(
        msgs.iter()
            .any(|m| m.contains("`recommend`") && m.contains("client")),
        "missing Client::recommend not reported: {msgs:?}"
    );

    // Excise every `warm` mention from the CLI frontend likewise.
    let mut no_cli = files.clone();
    no_cli[3].1 = no_cli[3].1.replace("warm", "w_a_r_m");
    let msgs = wire(&no_cli);
    assert!(
        msgs.iter()
            .any(|m| m.contains("`warm`") && m.contains("main.rs")),
        "missing warm CLI frontend not reported: {msgs:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer accepts arbitrary bytes (lossily decoded, as the
    /// workspace walker does for non-UTF-8 files) without panicking.
    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = audit::lexer::lex(&text);
    }

    /// The full per-file pipeline — lexing, block parsing, test-masking,
    /// suppression parsing, every scoped rule — never panics on
    /// arbitrary input, whatever path scope it lands in.
    #[test]
    fn audit_file_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        which in 0usize..6,
    ) {
        let paths = [
            "crates/memsim/src/tlb.rs",
            "crates/service/src/server.rs",
            "crates/mosmodel/src/persist.rs",
            "crates/harness/src/experiment.rs",
            "crates/recommend/src/engine.rs",
            "crates/elsewhere/src/lib.rs",
        ];
        let text = String::from_utf8_lossy(&bytes);
        let _ = audit_file(paths[which], &text);
    }

    /// The block parser is total on arbitrary bytes, and its tree
    /// round-trips to the original token spans: every block's open (and
    /// close, when matched) points at the right delimiter character,
    /// children nest strictly inside their parents, and unbalanced
    /// input surfaces as a `block-structure` diagnostic — never a crash.
    #[test]
    fn block_tree_round_trips_spans_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let path = "crates/memsim/src/fuzz.rs";
        let view = FileView::new(path, &text, &RULE_IDS);
        let tree = &view.blocks;
        prop_assert_eq!(tree.enclosing.len(), view.code.len());
        let delims = |k: DelimKind| match k {
            DelimKind::Brace => ("{", "}"),
            DelimKind::Paren => ("(", ")"),
            DelimKind::Bracket => ("[", "]"),
        };
        for (i, b) in tree.blocks.iter().enumerate() {
            let (open, close) = delims(b.kind);
            prop_assert_eq!(view.tokens[view.code[b.open]].text, open);
            if let Some(c) = b.close {
                prop_assert!(c > b.open);
                prop_assert_eq!(view.tokens[view.code[c]].text, close);
            }
            if let Some(p) = b.parent {
                prop_assert!(p < i);
                let parent = &tree.blocks[p];
                prop_assert!(parent.open < b.open);
                if let (Some(pc), Some(bc)) = (parent.close, b.close) {
                    prop_assert!(pc > bc);
                }
            }
        }
        for &u in &tree.unbalanced {
            prop_assert!(u < view.code.len());
        }
        // Unbalanced input in a scoped file is a diagnostic, not a
        // crash (unless the random bytes happened to spell a waiver).
        if !tree.unbalanced.is_empty() && view.suppressions.is_empty() {
            let diags = audit_file(path, &text);
            prop_assert!(diags.iter().any(|d| d.rule == "block-structure"));
        }
    }
}
