//! Fixture suite: known-bad sources must produce exactly the expected
//! `(path, rule, line)` findings, known-good sources (including every
//! rule's justified `audit:allow` waiver) must audit clean, and the
//! engine must never panic on arbitrary input.
//!
//! The fixture trees mirror real workspace paths (`crates/memsim/src/…`)
//! because the rules are path-scoped: auditing a fixture under its
//! mirrored relative path exercises the same scope tables production
//! runs use.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use audit::{audit_file, RULE_IDS};
use proptest::prelude::*;

fn fixture_root(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(tree)
}

/// All `.rs` files under the tree as `(mirrored-relative-path, text)`.
fn fixture_files(tree: &str) -> Vec<(String, String)> {
    let root = fixture_root(tree);
    let mut stack = vec![root.clone()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("fixture tree readable") {
            let path = entry.expect("fixture entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(&root)
                    .expect("under fixture root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let text = fs::read_to_string(&path).expect("fixture readable");
                files.push((rel, text));
            }
        }
    }
    files.sort();
    files
}

fn findings(tree: &str) -> BTreeSet<(String, &'static str, usize)> {
    fixture_files(tree)
        .iter()
        .flat_map(|(rel, text)| {
            audit_file(rel, text)
                .into_iter()
                .map(|d| (d.path, d.rule, d.line))
        })
        .collect()
}

#[test]
fn bad_fixtures_produce_exactly_the_expected_findings() {
    let expected: BTreeSet<(String, &'static str, usize)> = [
        // Nondeterminism in a simulation crate.
        ("crates/memsim/src/clock.rs", "determinism", 3),
        ("crates/memsim/src/clock.rs", "determinism", 4),
        ("crates/memsim/src/clock.rs", "determinism", 7),
        ("crates/memsim/src/clock.rs", "determinism", 8),
        ("crates/memsim/src/clock.rs", "determinism", 9),
        // Panics on the request path.
        ("crates/service/src/server.rs", "panic-surface", 4),
        ("crates/service/src/server.rs", "panic-surface", 5),
        ("crates/service/src/server.rs", "panic-surface", 6),
        // Entropy then an indexing panic inside the recommendation
        // engine, which sits in both the determinism and panic-surface
        // scopes.
        ("crates/recommend/src/explore.rs", "determinism", 4),
        ("crates/recommend/src/explore.rs", "panic-surface", 5),
        // Lossy floats in a codec module: the module-level "no bit-exact
        // codec referenced" finding plus the `{v:.6}` format spec.
        ("crates/mosmodel/src/persist.rs", "bit-exactness", 6),
        ("crates/mosmodel/src/persist.rs", "bit-exactness", 7),
        // Unversioned on-disk format.
        ("crates/harness/src/experiment.rs", "version-header", 3),
        // Suppression misuse: no reason, unknown rule — and neither
        // malformed waiver silences its line's real finding.
        ("crates/vmcore/src/lib.rs", "suppression", 1),
        ("crates/vmcore/src/lib.rs", "determinism", 2),
        ("crates/vmcore/src/lib.rs", "suppression", 3),
        ("crates/vmcore/src/lib.rs", "determinism", 4),
    ]
    .into_iter()
    .map(|(p, r, l)| (p.to_string(), r, l))
    .collect();

    let got = findings("bad");
    assert_eq!(
        got,
        expected,
        "bad-fixture findings diverged\nmissing: {:?}\nunexpected: {:?}",
        expected.difference(&got).collect::<Vec<_>>(),
        got.difference(&expected).collect::<Vec<_>>(),
    );

    // Every scoped rule is demonstrated by at least one caught violation.
    let rules_caught: BTreeSet<&str> = got.iter().map(|(_, r, _)| *r).collect();
    for rule in RULE_IDS {
        assert!(rules_caught.contains(rule), "no bad fixture catches {rule}");
    }
}

#[test]
fn good_fixtures_audit_clean_and_exercise_every_suppression() {
    let files = fixture_files("good");
    assert!(!files.is_empty(), "good fixture tree is missing");

    for (rel, text) in &files {
        let diags = audit_file(rel, text);
        assert!(
            diags.is_empty(),
            "good fixture {rel} is not clean: {diags:?}"
        );
    }

    // The clean runs above must be *earned*: each scoped rule has a good
    // fixture whose `audit:allow(<rule>)` waiver is what silences it.
    let all_text: String = files.iter().map(|(_, t)| t.as_str()).collect();
    for rule in RULE_IDS {
        assert!(
            all_text.contains(&format!("audit:allow({rule})")),
            "no good fixture demonstrates an honored audit:allow({rule})"
        );
    }
}

#[test]
fn stripping_the_waivers_makes_the_good_fixtures_fail() {
    // The good fixtures really do contain violations — removing the
    // justified waiver must resurface each rule's finding.
    let mut resurfaced = BTreeSet::new();
    for (rel, text) in fixture_files("good") {
        let stripped: String = text
            .lines()
            .map(|l| {
                if l.contains("audit:allow(") {
                    "// waiver removed\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        for d in audit_file(&rel, &stripped) {
            resurfaced.insert(d.rule);
        }
    }
    for rule in RULE_IDS {
        assert!(
            resurfaced.contains(rule),
            "stripping waivers did not resurface {rule}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer accepts arbitrary bytes (lossily decoded, as the
    /// workspace walker does for non-UTF-8 files) without panicking.
    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = audit::lexer::lex(&text);
    }

    /// The full per-file pipeline — lexing, test-masking, suppression
    /// parsing, every scoped rule — never panics on arbitrary input,
    /// whatever path scope it lands in.
    #[test]
    fn audit_file_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        which in 0usize..6,
    ) {
        let paths = [
            "crates/memsim/src/tlb.rs",
            "crates/service/src/server.rs",
            "crates/mosmodel/src/persist.rs",
            "crates/harness/src/experiment.rs",
            "crates/recommend/src/engine.rs",
            "crates/elsewhere/src/lib.rs",
        ];
        let text = String::from_utf8_lossy(&bytes);
        let _ = audit_file(paths[which], &text);
    }
}
