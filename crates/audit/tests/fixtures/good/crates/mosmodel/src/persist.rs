//! Fixture: a bit-exact codec with one justified lossy rendering.

pub const FORMAT_VERSION: u32 = 1;
pub const MAGIC: &str = "# mosaic-good v";

pub fn encode(v: f64) -> String {
    // audit:allow(bit-exactness) the {:.2} column is a human-facing comment; parsers read the hex field
    format!("{:016x}\t# {:.2}", v.to_bits(), v)
}
