//! Fixture: a justified determinism waiver.

// audit:allow(determinism) scratch map: keyed lookups only, never iterated or persisted
pub type ProbeMap = std::collections::HashMap<u64, u64>;

pub fn lookup(map: &ProbeMap, key: u64) -> Option<u64> {
    map.get(&key).copied()
}
