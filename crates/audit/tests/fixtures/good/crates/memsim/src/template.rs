//! Fixture: an unclosed scope kept as a generator template, waived.

// audit:allow(block-structure) template fragment; the matching brace is emitted by the generator
pub fn open_scope() {
