//! Fixture: a justified guard held across a fit.

pub fn refit_locked(reg: &Registry, key: &str) -> f64 {
    let entries = reg.entries.write();
    // audit:allow(lock-discipline) startup-only warm path; no concurrent requests exist yet
    let model = fit_mosmodel(key);
    entries.score(model)
}

pub fn scoped(reg: &Registry, key: &str) -> f64 {
    let prior = {
        let entries = reg.entries.read();
        entries.prior(key)
    };
    let model = fit_mosmodel(key);
    prior + model.score()
}
