//! Fixture: widened counter math, with one justified narrow exception.

pub fn rank(total_count: u64, q: u64) -> u64 {
    let wide = u128::from(total_count) * u128::from(q);
    (wide / 100) as u64
}

pub fn fast_rank(total_count: u32, q: u32) -> u32 {
    // audit:allow(arith-safety) callers bound total_count below 2^16, so the product fits u32
    total_count * q / 100
}
