//! Fixture: one shipped verb, one justified debug-only verb.

pub fn parse_request(line: &str) -> Result<u32, String> {
    match line.split_ascii_whitespace().next() {
        Some("predict") => Ok(1),
        // audit:allow(wire-conformance) `selftest` is a localhost-only debug verb; intentionally absent from the client, CLI and docs
        Some("selftest") => Ok(2),
        _ => Err("err unknown verb".to_string()),
    }
}
