//! Fixture: a panic-free request path with one justified waiver.

pub fn reply(parts: &[&str]) -> String {
    match parts.first() {
        Some(verb) => {
            // audit:allow(panic-surface) index 0 is the verb just matched; cannot be out of bounds
            parts[0].len().to_string() + verb
        }
        None => "err empty".to_string(),
    }
}

pub fn dispatch(req: &str) -> bool {
    req == "predict"
}
