//! Fixture: a legacy headerless reader, waived during migration.

// audit:allow(version-header) import-only reader for pre-v1 files; anything it loads is rewritten versioned on first save
pub fn parse(text: &str) -> Vec<u64> {
    text.lines().filter_map(|l| l.trim().parse().ok()).collect()
}
