//! Fixture: deterministic exploration — the RNG seed is a pure
//! function of the canonical budget string, so two servers exploring
//! the same budget draw the same candidates.

pub fn seed_from(budget: &str) -> u64 {
    budget.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

pub fn best(scores: &[(usize, u64)]) -> Option<usize> {
    let mut winner: Option<(usize, u64)> = None;
    for &(idx, score) in scores {
        match winner {
            Some((_, low)) if low <= score => {}
            _ => winner = Some((idx, score)),
        }
    }
    winner.map(|(idx, _)| idx)
}
