//! Fixture: the CLI frontend of the shipped verb.

fn main() {
    let _ = run("predict");
}
