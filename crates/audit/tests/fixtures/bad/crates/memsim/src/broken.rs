//! Fixture: an unterminated block the semantic rules cannot see past.

pub fn simulate(steps: u64) -> u64 {
    let mut total = 0;
    for _ in 0..steps {
        total = total.saturating_add(1);
    total
}
