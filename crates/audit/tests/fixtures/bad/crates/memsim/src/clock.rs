//! Fixture: nondeterminism in a simulation crate (every line below
//! line 2 is a deliberate violation).
use std::collections::HashMap;
use std::time::SystemTime;

pub fn jitter() -> u64 {
    let t = Instant::now();
    let mut rng = thread_rng();
    rand::random()
}
