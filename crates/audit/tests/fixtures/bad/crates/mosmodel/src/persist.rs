//! Fixture: lossy float persistence in an on-disk codec.

pub const FORMAT_VERSION: u32 = 9;
pub const MAGIC: &str = "# mosaic-fixture v";

pub fn encode(v: f64) -> String {
    format!("{v:.6}")
}
