//! Fixture: entropy and panics inside the recommendation engine.

pub fn pick(order: &[usize]) -> usize {
    let roll = thread_rng();
    order[roll]
}
