// audit:allow(determinism)
use std::collections::HashMap;
// audit:allow(frobnicate) rule does not exist
use std::collections::HashSet;
