//! Fixture: an on-disk format with no version header at all.

pub fn render(rows: &[u64]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&r.to_string());
    }
    out
}
