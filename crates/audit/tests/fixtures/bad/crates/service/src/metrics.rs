//! Fixture: unchecked counter math and truncating casts.

pub fn percentile(total_count: u64, q: u64, latency_us: u64) -> u32 {
    let rank = total_count * q / 100;
    let trimmed = latency_us as u32;
    trimmed + rank as u32
}
