//! Fixture: a parser arm whose verb never shipped.

pub fn parse_request(line: &str) -> Result<Req, String> {
    let mut words = line.split_ascii_whitespace();
    match words.next() {
        Some("predict") => Ok(Req::Predict),
        Some("frob") => Ok(Req::Frob),
        _ => Err("err unknown verb".to_string()),
    }
}
