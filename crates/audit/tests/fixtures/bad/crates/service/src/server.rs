//! Fixture: panics on the mosaicd request path.

pub fn handle(line: &str, parts: &[&str]) -> String {
    let first = parts.first().unwrap();
    if line.is_empty() { panic!("empty") }
    parts[1].to_string()
}

pub fn dispatch(req: &str) -> bool {
    req == "predict"
}
