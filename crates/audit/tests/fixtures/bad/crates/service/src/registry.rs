//! Fixture: guards live across a model fit and an inverted acquisition.

pub fn refit(reg: &Registry, key: &str) -> f64 {
    let entries = reg.entries.write();
    let model = fit_mosmodel(key);
    let memo = reg.cv_errors.read();
    entries.score(model) + memo.size()
}

pub fn double_lock(reg: &Registry) -> u64 {
    let a = reg.state.lock();
    let b = reg.state.lock();
    a.value() + b.value()
}
