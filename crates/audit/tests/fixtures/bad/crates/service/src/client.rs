//! Fixture: the client covers only the shipped verb.

impl Client {
    pub fn predict(&mut self) -> Result<String, String> {
        self.send("predict")
    }
}
