//! Fixture: the CLI fronts only the shipped verb.

fn main() {
    let _ = run("predict");
}
