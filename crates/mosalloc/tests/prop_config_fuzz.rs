//! Fuzz-style robustness tests for the configuration parser: arbitrary
//! input must never panic, and valid input must round-trip.

use mosalloc::config::{MosallocConfig, PoolSpec};
use proptest::prelude::*;
use vmcore::PageSize;

proptest! {
    /// The parser is total: any string yields Ok or Err, never a panic.
    #[test]
    fn pool_spec_parser_never_panics(s in ".{0,120}") {
        let _ = s.parse::<PoolSpec>();
    }

    /// Same for the full config grammar.
    #[test]
    fn config_parser_never_panics(s in ".{0,200}") {
        let _ = s.parse::<MosallocConfig>();
    }

    /// Near-miss grammar (structured garbage) never panics either and
    /// is usually rejected.
    #[test]
    fn structured_garbage_never_panics(
        pool in "(brk|anon|file|heap|stack|)",
        size in "(size=|sz=|)",
        num in "[0-9]{0,12}",
        suffix in "(K|M|G|KB|MB|GB|T|)",
        win in "(,2MB=0..4M|,1GB=1G..2G|,4KB=0..1M|,2MB=4M..0|,|)",
    ) {
        let spec = format!("{pool}:{size}{num}{suffix}{win}");
        let _ = spec.parse::<MosallocConfig>();
    }

    /// Every syntactically valid generated spec round-trips through its
    /// textual form exactly.
    #[test]
    fn valid_specs_roundtrip(
        size_mb in 1u64..2048,
        windows in prop::collection::vec((0u64..32, 1u64..8, any::<bool>()), 0..4),
    ) {
        let mut spec = PoolSpec::plain(size_mb.max(512) << 20);
        let mut cursor = 0u64;
        for (gap, len, huge1g) in windows {
            let page = if huge1g { PageSize::Huge1G } else { PageSize::Huge2M };
            let align = page.bytes();
            let start = (cursor + gap * (2 << 20)).next_multiple_of(align);
            let end = start + len * align;
            if end > spec.size {
                break;
            }
            spec = spec.with_window(start, end, page);
            cursor = end;
        }
        let text = spec.to_string();
        let parsed: PoolSpec = text.parse().expect("own rendering parses");
        prop_assert_eq!(&spec, &parsed);

        // And through the full-config grammar too.
        let cfg = MosallocConfig {
            brk: spec,
            anon: PoolSpec::plain(64 << 20),
            file: PoolSpec::plain(64 << 20),
        };
        let parsed: MosallocConfig = cfg.to_string().parse().expect("config parses");
        prop_assert_eq!(cfg, parsed);
    }
}
