//! Property-based tests for Mosalloc's allocation invariants.

use mosalloc::{FirstFit, Mosalloc, MosallocConfig, PoolSpec};
use proptest::prelude::*;
use vmcore::{PageSize, Region, VirtAddr, MIB};

/// A random sequence of allocator operations.
#[derive(Clone, Debug)]
enum Op {
    Alloc(u64),
    FreeNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..128 * 1024).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::FreeNth),
    ]
}

proptest! {
    /// Live allocations never overlap, are always in-bounds, and byte
    /// accounting (live + holes <= high water <= capacity) holds after
    /// every operation.
    #[test]
    fn first_fit_invariants(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let capacity = 4 * MIB;
        let mut ff = FirstFit::new(capacity);
        let mut live: Vec<(u64, u64)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Some(start) = ff.alloc(len, 8) {
                        prop_assert_eq!(start % 8, 0);
                        prop_assert!(start + len <= capacity);
                        for &(s, l) in &live {
                            prop_assert!(start + len <= s || s + l <= start,
                                "allocation [{},{}) overlaps [{},{})", start, start+len, s, s+l);
                        }
                        live.push((start, len));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (s, l) = live.remove(n % live.len());
                        prop_assert!(ff.free(s, l).is_ok());
                    }
                }
            }
            let live_bytes: u64 = live.iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(ff.live_bytes(), live_bytes);
            prop_assert!(ff.live_bytes() + ff.hole_bytes() <= ff.high_water());
            prop_assert!(ff.high_water() <= capacity);
        }

        // Draining everything retracts the top completely.
        for (s, l) in live.drain(..) {
            prop_assert!(ff.free(s, l).is_ok());
        }
        prop_assert_eq!(ff.high_water(), 0);
        prop_assert_eq!(ff.hole_bytes(), 0);
    }

    /// The page-size resolver is total and consistent with the configured
    /// windows: 2MB addresses fall inside some window, 4KB addresses in none.
    #[test]
    fn resolver_matches_windows(
        win_start_mb in 0u64..30,
        win_len_mb in 1u64..16,
        probe in 0u64..(64 << 20),
    ) {
        let start = win_start_mb * 2 * MIB;
        let end = (win_start_mb + win_len_mb).min(32) * 2 * MIB;
        let spec = PoolSpec::plain(64 * MIB).with_window(start, end, PageSize::Huge2M);
        let cfg = MosallocConfig { brk: spec, anon: PoolSpec::plain(MIB), file: PoolSpec::plain(MIB) };
        let m = Mosalloc::new(cfg).unwrap();
        let base = m.heap().region().start();
        let addr = base + probe;
        let size = m.page_size_at(addr);
        let in_window = probe >= start && probe < end;
        prop_assert_eq!(size == PageSize::Huge2M, in_window,
            "probe {:#x} window [{:#x},{:#x}) got {:?}", probe, start, end, size);
    }

    /// Config specs round-trip through their textual form.
    #[test]
    fn config_spec_roundtrip(
        brk_mb in 1u64..64,
        windows in prop::collection::vec((0u64..16, 1u64..8), 0..3),
    ) {
        let mut spec = PoolSpec::plain(brk_mb.max(40) * MIB);
        let mut cursor = 0;
        for (gap, len) in windows {
            let start = cursor + gap * 2 * MIB;
            let end = start + len * 2 * MIB;
            if end > spec.size { break; }
            spec = spec.with_window(start, end, PageSize::Huge2M);
            cursor = end;
        }
        let text = spec.to_string();
        let parsed: PoolSpec = text.parse().unwrap();
        prop_assert_eq!(spec, parsed);
    }

    /// mmap/munmap in any interleaving keeps the anonymous pool consistent:
    /// mapped regions are disjoint, page-aligned, inside the pool.
    #[test]
    fn mosalloc_anon_consistency(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let cfg: MosallocConfig = "brk:size=4M;anon:size=8M;file:size=1M".parse().unwrap();
        let mut m = Mosalloc::new(cfg).unwrap();
        let mut mappings: Vec<Region> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Ok(r) = m.mmap_anon(len) {
                        prop_assert!(r.start().is_aligned(PageSize::Base4K));
                        prop_assert!(m.anon().region().contains_region(&r));
                        for other in &mappings {
                            prop_assert!(!r.overlaps(other));
                        }
                        mappings.push(r);
                    }
                }
                Op::FreeNth(n) => {
                    if !mappings.is_empty() {
                        let r = mappings.remove(n % mappings.len());
                        prop_assert!(m.munmap(r).is_ok());
                    }
                }
            }
        }
        // Every live mapping resolves to the pool's backing size (4KB here).
        for r in &mappings {
            prop_assert_eq!(m.page_size_at(r.start()), PageSize::Base4K);
        }
    }

    /// sbrk grow/shrink sequences keep the break inside the pool and
    /// return values consistent with the break trajectory.
    #[test]
    fn heap_brk_trajectory(deltas in prop::collection::vec(-512i64..512, 1..100)) {
        let cfg: MosallocConfig = "brk:size=1M;anon:size=1M;file:size=1M".parse().unwrap();
        let mut m = Mosalloc::new(cfg).unwrap();
        let base = m.heap().region().start();
        let end = m.heap().region().end();
        let mut expected = base;
        for d in deltas {
            let before = expected;
            match m.sbrk(d * 64) {
                Ok(old) => {
                    let raw = before.raw() as i64 + d * 64;
                    prop_assert_eq!(old, before);
                    prop_assert_eq!(m.heap().brk_now(), VirtAddr::new(raw as u64));
                }
                Err(_) => {
                    // Failed calls must not move the break.
                    prop_assert_eq!(m.heap().brk_now(), before);
                }
            }
            expected = m.heap().brk_now();
            prop_assert!(expected >= base && expected <= end);
        }
    }
}
