//! A Transparent Huge Pages (THP) baseline.
//!
//! The paper positions Mosalloc against Linux THP (§V-A): THP promotes
//! 2MB regions *dynamically* once they look worthwhile, which means
//! (1) the user cannot control hugepage placement, (2) only 2MB pages are
//! used (never 1GB), and (3) promotion itself costs work (khugepaged
//! copies the region). [`Thp`] models exactly that policy so experiments
//! can compare explicit Mosalloc mosaics against transparent promotion —
//! see `examples/thp_comparison.rs`.

use std::collections::{HashMap, HashSet};

use vmcore::{PageSize, Region, VirtAddr};

/// Cycles charged per 2MB promotion: copying 2MB at a cache line (64B)
/// per ~4 cycles, plus TLB shootdown overhead.
pub const PROMOTION_CYCLES: u64 = (2 << 20) / 64 * 4 + 20_000;

/// A khugepaged-style promotion policy over one eligible region.
///
/// Call [`observe`](Self::observe) for every memory access (it doubles
/// as the page-size resolver for the execution engine); once a 2MB
/// region has been touched `threshold` times it is promoted and all
/// subsequent accesses to it resolve as 2MB-backed.
///
/// # Example
///
/// ```
/// use mosalloc::thp::Thp;
/// use vmcore::{PageSize, Region, VirtAddr};
///
/// let heap = Region::new(VirtAddr::new(0), 64 << 20);
/// let mut thp = Thp::new(heap, 3);
/// let va = VirtAddr::new(0x1234);
/// assert_eq!(thp.observe(va), PageSize::Base4K);
/// assert_eq!(thp.observe(va), PageSize::Base4K);
/// assert_eq!(thp.observe(va), PageSize::Huge2M); // third touch promotes
/// assert_eq!(thp.promotions(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Thp {
    region: Region,
    threshold: u32,
    touches: HashMap<u64, u32>,
    promoted: HashSet<u64>,
}

impl Thp {
    /// Creates the policy for `region` with a promotion `threshold`
    /// (touches of a 2MB chunk before it is promoted).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (promotion-on-first-touch is spelled
    /// `threshold = 1`).
    pub fn new(region: Region, threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        Thp {
            region,
            threshold,
            touches: HashMap::new(),
            promoted: HashSet::new(),
        }
    }

    /// The eligible region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Records an access and returns the page size currently backing it.
    /// Addresses outside the eligible region are always 4KB.
    pub fn observe(&mut self, va: VirtAddr) -> PageSize {
        if !self.region.contains(va) {
            return PageSize::Base4K;
        }
        let chunk = va.page_number(PageSize::Huge2M);
        if self.promoted.contains(&chunk) {
            return PageSize::Huge2M;
        }
        let count = self.touches.entry(chunk).or_insert(0);
        *count += 1;
        if *count >= self.threshold {
            self.promoted.insert(chunk);
            self.touches.remove(&chunk);
            PageSize::Huge2M
        } else {
            PageSize::Base4K
        }
    }

    /// Number of regions promoted so far.
    pub fn promotions(&self) -> u64 {
        self.promoted.len() as u64
    }

    /// Total cycles spent promoting (to be added to a measured runtime —
    /// the engine does not know about khugepaged).
    pub fn promotion_cost_cycles(&self) -> u64 {
        self.promotions() * PROMOTION_CYCLES
    }

    /// Fraction of the eligible region currently 2MB-backed.
    pub fn promoted_fraction(&self) -> f64 {
        let chunks = self.region.len().div_ceil(PageSize::Huge2M.bytes());
        if chunks == 0 {
            0.0
        } else {
            self.promotions() as f64 / chunks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Region {
        Region::new(VirtAddr::new(0x4000_0000), 16 << 20)
    }

    #[test]
    fn promotion_after_threshold_touches() {
        let mut thp = Thp::new(heap(), 5);
        let va = VirtAddr::new(0x4000_1000);
        for _ in 0..4 {
            assert_eq!(thp.observe(va), PageSize::Base4K);
        }
        assert_eq!(thp.observe(va), PageSize::Huge2M, "fifth touch promotes");
        assert_eq!(thp.promotions(), 1);
    }

    #[test]
    fn touches_accumulate_across_the_whole_chunk() {
        let mut thp = Thp::new(heap(), 3);
        let base = VirtAddr::new(0x4000_0000);
        thp.observe(base);
        thp.observe(base + 4096);
        assert_eq!(
            thp.observe(base + 8192),
            PageSize::Huge2M,
            "chunk-level counting"
        );
    }

    #[test]
    fn distinct_chunks_promote_independently() {
        let mut thp = Thp::new(heap(), 2);
        let a = VirtAddr::new(0x4000_0000);
        let b = VirtAddr::new(0x4020_0000);
        thp.observe(a);
        thp.observe(b);
        assert_eq!(thp.observe(a), PageSize::Huge2M);
        assert_eq!(thp.promotions(), 1, "b not yet promoted");
        assert_eq!(thp.observe(b), PageSize::Huge2M);
        assert_eq!(thp.promotions(), 2);
    }

    #[test]
    fn outside_region_is_never_promoted() {
        let mut thp = Thp::new(heap(), 1);
        let foreign = VirtAddr::new(0x9000_0000);
        assert_eq!(thp.observe(foreign), PageSize::Base4K);
        assert_eq!(thp.observe(foreign), PageSize::Base4K);
        assert_eq!(thp.promotions(), 0);
    }

    #[test]
    fn promotion_cost_scales_with_promotions() {
        let mut thp = Thp::new(heap(), 1);
        for i in 0..4u64 {
            thp.observe(VirtAddr::new(0x4000_0000 + i * (2 << 20)));
        }
        assert_eq!(thp.promotions(), 4);
        assert_eq!(thp.promotion_cost_cycles(), 4 * PROMOTION_CYCLES);
        assert!(
            (thp.promoted_fraction() - 0.5).abs() < 1e-12,
            "4 of 8 chunks"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        Thp::new(heap(), 0);
    }
}
