//! Allocation statistics, used to validate the paper's <1% extra memory
//! consumption claim for the top-only release policy.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters describing an allocator's activity so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Number of `brk`/`sbrk` calls served.
    pub brk_calls: u64,
    /// Number of anonymous `mmap` calls served.
    pub anon_mmap_calls: u64,
    /// Number of file-backed `mmap` calls served.
    pub file_mmap_calls: u64,
    /// Number of `munmap` calls served.
    pub munmap_calls: u64,
    /// Total bytes requested by the program.
    pub bytes_requested: u64,
    /// Total bytes actually reserved (after rounding).
    pub bytes_reserved: u64,
    /// Peak simultaneous live bytes across all pools.
    pub peak_live_bytes: u64,
}

impl AllocStats {
    /// Overhead of reservation rounding plus fragmentation, as a fraction
    /// of the bytes requested. The paper measures this below 1% for its
    /// workloads.
    pub fn overhead_ratio(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            (self.bytes_reserved as f64 - self.bytes_requested as f64) / self.bytes_requested as f64
        }
    }

    /// Records a served request.
    pub(crate) fn record(&mut self, requested: u64, reserved: u64) {
        self.bytes_requested += requested;
        self.bytes_reserved += reserved;
    }

    /// Updates the live-byte peak.
    pub(crate) fn observe_live(&mut self, live: u64) {
        self.peak_live_bytes = self.peak_live_bytes.max(live);
    }
}

impl fmt::Display for AllocStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "brk={} anon={} file={} munmap={} requested={}B reserved={}B peak={}B ({:.2}% overhead)",
            self.brk_calls,
            self.anon_mmap_calls,
            self.file_mmap_calls,
            self.munmap_calls,
            self.bytes_requested,
            self.bytes_reserved,
            self.peak_live_bytes,
            100.0 * self.overhead_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ratio_handles_zero() {
        assert_eq!(AllocStats::default().overhead_ratio(), 0.0);
    }

    #[test]
    fn overhead_ratio_counts_rounding() {
        let mut s = AllocStats::default();
        s.record(100, 4096);
        assert!((s.overhead_ratio() - 39.96).abs() < 0.01);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut s = AllocStats::default();
        s.observe_live(10);
        s.observe_live(5);
        s.observe_live(20);
        s.observe_live(1);
        assert_eq!(s.peak_live_bytes, 20);
    }

    #[test]
    fn display_is_complete() {
        let s = AllocStats {
            brk_calls: 1,
            ..Default::default()
        };
        assert!(s.to_string().contains("brk=1"));
    }
}
