//! The Mosalloc façade: routes memory requests to the three pools and
//! answers page-size queries for the simulator.

use vmcore::{PageSize, Region, VirtAddr};

use crate::{
    AllocError, AllocStats, AnonPool, FilePool, HeapPool, MosallocConfig, ANON_POOL_BASE,
    FILE_POOL_BASE, HEAP_POOL_BASE,
};

/// The Mosaic Memory Allocator.
///
/// Dispatches the three kinds of Linux memory requests to their pools
/// (paper Figure 4) and exposes the resulting page-size mosaic to the
/// memory-subsystem simulator through [`page_size_at`](Self::page_size_at).
///
/// # Example
///
/// ```
/// use mosalloc::{Mosalloc, MosallocConfig};
/// use vmcore::{PageSize, MIB};
///
/// # fn main() -> Result<(), mosalloc::AllocError> {
/// let cfg: MosallocConfig = "brk:size=64M,2MB=0..64M;anon:size=64M"
///     .parse().map_err(mosalloc::AllocError::from)?;
/// let mut m = Mosalloc::new(cfg)?;
/// let heap_block = m.sbrk(MIB as i64)?;
/// assert_eq!(m.page_size_at(heap_block), PageSize::Huge2M);
/// // Code/stack addresses outside any pool are 4KB-backed.
/// assert_eq!(m.page_size_at(vmcore::VirtAddr::new(0x40_0000)), PageSize::Base4K);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Mosalloc {
    heap: HeapPool,
    anon: AnonPool,
    file: FilePool,
    stats: AllocStats,
}

impl Mosalloc {
    /// Creates an allocator from a configuration, placing pools at the
    /// crate's default bases.
    ///
    /// # Errors
    ///
    /// Propagates pool-layout validation failures.
    pub fn new(config: MosallocConfig) -> Result<Self, AllocError> {
        Self::with_bases(
            config,
            VirtAddr::new(HEAP_POOL_BASE),
            VirtAddr::new(ANON_POOL_BASE),
            VirtAddr::new(FILE_POOL_BASE),
        )
    }

    /// Creates an allocator with explicit pool base addresses.
    ///
    /// # Errors
    ///
    /// Propagates pool-layout validation failures. The bases must be far
    /// enough apart that pools cannot overlap; this is asserted.
    ///
    /// # Panics
    ///
    /// Panics if the pools would overlap.
    pub fn with_bases(
        config: MosallocConfig,
        heap_base: VirtAddr,
        anon_base: VirtAddr,
        file_base: VirtAddr,
    ) -> Result<Self, AllocError> {
        config.validate()?;
        let heap = HeapPool::new(&config.brk, heap_base)?;
        let anon = AnonPool::new(&config.anon, anon_base)?;
        let file = FilePool::new(&config.file, file_base)?;
        let regions = [heap.region(), anon.region(), file.region()];
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                assert!(!regions[i].overlaps(&regions[j]), "pool regions overlap");
            }
        }
        Ok(Mosalloc {
            heap,
            anon,
            file,
            stats: AllocStats::default(),
        })
    }

    /// The heap (brk) pool.
    pub fn heap(&self) -> &HeapPool {
        &self.heap
    }

    /// The anonymous-mapping pool.
    pub fn anon(&self) -> &AnonPool {
        &self.anon
    }

    /// The file-mapping pool.
    pub fn file(&self) -> &FilePool {
        &self.file
    }

    /// Activity statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// `sbrk(2)`: moves the program break, returning its previous value.
    /// This is also the `morecore` path glibc malloc takes.
    ///
    /// # Errors
    ///
    /// See [`HeapPool::sbrk`].
    pub fn sbrk(&mut self, delta: i64) -> Result<VirtAddr, AllocError> {
        let old = self.heap.sbrk(delta)?;
        self.stats.brk_calls += 1;
        if delta > 0 {
            self.stats.record(delta as u64, delta as u64);
        }
        self.observe_live();
        Ok(old)
    }

    /// glibc's `morecore` hook: extends the heap by `increment` bytes
    /// and returns the start of the new block — the path malloc takes
    /// when it needs more memory (paper §V: "Mosalloc intercepts malloc
    /// requests by hooking the morecore function").
    ///
    /// # Errors
    ///
    /// See [`HeapPool::sbrk`].
    pub fn morecore(&mut self, increment: u64) -> Result<VirtAddr, AllocError> {
        self.sbrk(increment as i64)
    }

    /// `brk(2)`: sets the program break.
    ///
    /// # Errors
    ///
    /// See [`HeapPool::brk`].
    pub fn brk(&mut self, target: VirtAddr) -> Result<(), AllocError> {
        let before = self.heap.used();
        self.heap.brk(target)?;
        self.stats.brk_calls += 1;
        let after = self.heap.used();
        if after > before {
            self.stats.record(after - before, after - before);
        }
        self.observe_live();
        Ok(())
    }

    /// Anonymous `mmap(2)`: maps `len` bytes from the anonymous pool.
    ///
    /// # Errors
    ///
    /// See [`AnonPool::mmap`].
    pub fn mmap_anon(&mut self, len: u64) -> Result<Region, AllocError> {
        let mapping = self.anon.mmap(len)?;
        self.stats.anon_mmap_calls += 1;
        self.stats.record(len, mapping.len());
        self.observe_live();
        Ok(mapping)
    }

    /// File-backed `mmap(2)`: maps `len` bytes from the file pool
    /// (4KB pages only).
    ///
    /// # Errors
    ///
    /// See [`FilePool::mmap`].
    pub fn mmap_file(&mut self, len: u64) -> Result<Region, AllocError> {
        let mapping = self.file.mmap(len)?;
        self.stats.file_mmap_calls += 1;
        self.stats.record(len, mapping.len());
        self.observe_live();
        Ok(mapping)
    }

    /// `munmap(2)`: releases a mapping from whichever pool owns it.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] if no pool owns the mapping.
    pub fn munmap(&mut self, mapping: Region) -> Result<(), AllocError> {
        let result = if self.anon.region().contains_region(&mapping) {
            self.anon.munmap(mapping)
        } else if self.file.region().contains_region(&mapping) {
            self.file.munmap(mapping)
        } else {
            Err(AllocError::BadFree(mapping))
        };
        if result.is_ok() {
            self.stats.munmap_calls += 1;
        }
        result
    }

    /// The page size backing `addr` under the current configuration.
    ///
    /// This is the single question the memory-subsystem simulator asks
    /// Mosalloc for every translation. Addresses outside all pools (code,
    /// stack, file mappings) are 4KB-backed.
    pub fn page_size_at(&self, addr: VirtAddr) -> PageSize {
        if self.heap.region().contains(addr) {
            self.heap.layout().page_size_at(addr)
        } else if self.anon.region().contains(addr) {
            self.anon.layout().page_size_at(addr)
        } else {
            PageSize::Base4K
        }
    }

    fn observe_live(&mut self) {
        let live = self.heap.used() + self.anon.used();
        self.stats.observe_live(live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::MIB;

    fn config(s: &str) -> MosallocConfig {
        s.parse().unwrap()
    }

    #[test]
    fn dispatch_across_pools() {
        let mut m = Mosalloc::new(config("brk:size=64M;anon:size=64M;file:size=64M")).unwrap();
        let heap = m.sbrk(MIB as i64).unwrap();
        let anon = m.mmap_anon(MIB).unwrap();
        let file = m.mmap_file(MIB).unwrap();
        assert!(m.heap().region().contains(heap));
        assert!(m.anon().region().contains(anon.start()));
        assert!(m.file().region().contains(file.start()));
        m.munmap(anon).unwrap();
        m.munmap(file).unwrap();
        let s = m.stats();
        assert_eq!(s.brk_calls, 1);
        assert_eq!(s.anon_mmap_calls, 1);
        assert_eq!(s.file_mmap_calls, 1);
        assert_eq!(s.munmap_calls, 2);
    }

    #[test]
    fn morecore_is_the_malloc_growth_path() {
        let mut m = Mosalloc::new(config("brk:size=16M;anon:size=16M")).unwrap();
        let block1 = m.morecore(4096).unwrap();
        let block2 = m.morecore(8192).unwrap();
        assert_eq!(block2 - block1, 4096, "blocks are contiguous heap growth");
        assert_eq!(m.heap().used(), 12288);
    }

    #[test]
    fn page_size_mosaic_spans_pools() {
        let mut m = Mosalloc::new(config(
            "brk:size=64M,2MB=0..4M;anon:size=64M,2MB=2M..6M;file:size=16M",
        ))
        .unwrap();
        let heap_start = m.sbrk(8 * MIB as i64).unwrap();
        assert_eq!(m.page_size_at(heap_start), PageSize::Huge2M);
        assert_eq!(m.page_size_at(heap_start + 5 * MIB), PageSize::Base4K);

        let anon_base = m.anon().region().start();
        assert_eq!(m.page_size_at(anon_base), PageSize::Base4K);
        assert_eq!(m.page_size_at(anon_base + 3 * MIB), PageSize::Huge2M);

        // File mappings and foreign addresses are always 4KB.
        let file = m.mmap_file(MIB).unwrap();
        assert_eq!(m.page_size_at(file.start()), PageSize::Base4K);
        assert_eq!(m.page_size_at(VirtAddr::new(0x1234)), PageSize::Base4K);
    }

    #[test]
    fn munmap_of_unknown_region_fails() {
        let mut m = Mosalloc::new(config("brk:size=16M;anon:size=16M")).unwrap();
        let err = m
            .munmap(Region::new(VirtAddr::new(0x9999_0000), 4096))
            .unwrap_err();
        assert!(matches!(err, AllocError::BadFree(_)));
        assert_eq!(m.stats().munmap_calls, 0, "failed unmaps are not counted");
    }

    #[test]
    fn peak_live_bytes_tracked() {
        let mut m = Mosalloc::new(config("brk:size=16M;anon:size=16M")).unwrap();
        let a = m.mmap_anon(8 * MIB).unwrap();
        m.munmap(a).unwrap();
        let _b = m.mmap_anon(MIB).unwrap();
        assert_eq!(m.stats().peak_live_bytes, 8 * MIB);
    }

    #[test]
    fn overhead_stays_tiny_for_page_multiple_requests() {
        let mut m = Mosalloc::new(config("brk:size=64M;anon:size=64M")).unwrap();
        for _ in 0..32 {
            m.mmap_anon(MIB).unwrap();
        }
        assert!(
            m.stats().overhead_ratio() < 0.01,
            "paper reports <1% overhead"
        );
    }

    #[test]
    #[should_panic(expected = "pool regions overlap")]
    fn overlapping_bases_panic() {
        let _ = Mosalloc::with_bases(
            config("brk:size=64M;anon:size=64M"),
            VirtAddr::new(0x1000_0000),
            VirtAddr::new(0x1000_0000),
            VirtAddr::new(0x9000_0000),
        );
    }
}
