//! Pool configuration: the environment-variable layout specification.
//!
//! Real Mosalloc is configured through environment variables read at
//! `LD_PRELOAD` time (paper §V). This module defines the textual format and
//! its parser; the same strings drive both the simulated allocator and the
//! `mosalloc-preload` shared object.
//!
//! # Format
//!
//! A full configuration names up to three pools separated by `;`:
//!
//! ```text
//! brk:size=512M,2MB=0M..64M,1GB=1G..2G;anon:size=256M;file:size=64M
//! ```
//!
//! Each pool spec is a comma-separated list whose first item is
//! `size=<bytes>`; the remaining items are hugepage windows
//! `<pagesize>=<start>..<end>` with pool-relative bounds. Byte values accept
//! `K`/`M`/`G` suffixes (optionally with `B`, case-insensitive) or plain
//! decimal/hex (`0x...`) byte counts.
//!
//! The canonical environment variable names are
//! [`ENV_CONFIG`] for the whole configuration, or [`ENV_BRK_POOL`] /
//! [`ENV_ANON_POOL`] / [`ENV_FILE_POOL`] for per-pool specs.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use vmcore::{LayoutError, MemoryLayout, PageSize, Region, VirtAddr};

/// Environment variable holding a complete [`MosallocConfig`] spec.
pub const ENV_CONFIG: &str = "MOSALLOC_CONFIG";
/// Environment variable holding the heap (brk) pool spec.
pub const ENV_BRK_POOL: &str = "MOSALLOC_BRK_POOL";
/// Environment variable holding the anonymous-mapping pool spec.
pub const ENV_ANON_POOL: &str = "MOSALLOC_ANON_POOL";
/// Environment variable holding the file-mapping pool spec.
pub const ENV_FILE_POOL: &str = "MOSALLOC_FILE_POOL";

/// A hugepage window inside a pool, with pool-relative bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window start offset within the pool.
    pub start: u64,
    /// Window end offset (exclusive) within the pool.
    pub end: u64,
    /// Page size backing the window.
    pub size: PageSize,
}

/// Specification of one pool: capacity plus hugepage windows.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Pool capacity in bytes.
    pub size: u64,
    /// Hugepage windows (pool-relative).
    pub windows: Vec<WindowSpec>,
}

impl PoolSpec {
    /// A pool of `size` bytes backed entirely by 4KB pages.
    pub fn plain(size: u64) -> Self {
        PoolSpec {
            size,
            windows: Vec::new(),
        }
    }

    /// A pool of `size` bytes backed entirely by `page` pages.
    pub fn uniform(size: u64, page: PageSize) -> Self {
        if page == PageSize::Base4K {
            return PoolSpec::plain(size);
        }
        PoolSpec {
            size,
            windows: vec![WindowSpec {
                start: 0,
                end: size,
                size: page,
            }],
        }
    }

    /// Adds a window; builder style.
    pub fn with_window(mut self, start: u64, end: u64, size: PageSize) -> Self {
        self.windows.push(WindowSpec { start, end, size });
        self
    }

    /// Materializes the spec as a [`MemoryLayout`] rooted at `base`.
    ///
    /// Window bounds are aligned *outward* to their page size first —
    /// requesting `2MB=0..3M` backs `[0, 4M)` with 2MB pages, the way a
    /// hugetlbfs mapping would round a partial page.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] when windows fall outside the pool or
    /// overlap after alignment.
    pub fn to_layout(&self, base: VirtAddr) -> Result<MemoryLayout, LayoutError> {
        let pool = Region::new(base, self.size);
        let mut builder = MemoryLayout::builder(pool);
        for w in &self.windows {
            let raw = Region::from_bounds(base + w.start, base + w.end);
            let aligned = raw.align_outward(w.size);
            builder = builder.window(aligned, w.size)?;
        }
        builder.build()
    }
}

impl fmt::Display for PoolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "size={}", format_bytes(self.size))?;
        for w in &self.windows {
            write!(
                f,
                ",{}={}..{}",
                w.size,
                format_bytes(w.start),
                format_bytes(w.end)
            )?;
        }
        Ok(())
    }
}

impl FromStr for PoolSpec {
    type Err = LayoutError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut items = s.split(',').map(str::trim).filter(|p| !p.is_empty());
        let first = items
            .next()
            .ok_or_else(|| LayoutError::BadSpec(s.to_string()))?;
        let size = first
            .strip_prefix("size=")
            .ok_or_else(|| LayoutError::BadSpec(format!("pool spec must start with size=: {s}")))
            .and_then(parse_bytes)?;
        let mut windows = Vec::new();
        for item in items {
            let (page, range) = item
                .split_once('=')
                .ok_or_else(|| LayoutError::BadSpec(format!("bad window {item:?}")))?;
            let page: PageSize = page.trim().parse()?;
            if page == PageSize::Base4K {
                return Err(LayoutError::BadSpec(format!(
                    "windows must use hugepages; 4KB is the default backing: {item:?}"
                )));
            }
            let (lo, hi) = range
                .split_once("..")
                .ok_or_else(|| LayoutError::BadSpec(format!("bad window range {range:?}")))?;
            let start = parse_bytes(lo.trim())?;
            let end = parse_bytes(hi.trim())?;
            if end <= start {
                return Err(LayoutError::BadSpec(format!("empty window {item:?}")));
            }
            windows.push(WindowSpec {
                start,
                end,
                size: page,
            });
        }
        Ok(PoolSpec { size, windows })
    }
}

/// Complete Mosalloc configuration: the three pools.
///
/// # Example
///
/// ```
/// use mosalloc::MosallocConfig;
///
/// let cfg: MosallocConfig = "brk:size=1G,2MB=0..512M;anon:size=256M".parse()?;
/// assert_eq!(cfg.brk.size, 1 << 30);
/// // Round-trips through Display.
/// let again: MosallocConfig = cfg.to_string().parse()?;
/// assert_eq!(cfg, again);
/// # Ok::<(), vmcore::LayoutError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MosallocConfig {
    /// Heap (brk) pool spec.
    pub brk: PoolSpec,
    /// Anonymous-mapping pool spec.
    pub anon: PoolSpec,
    /// File-mapping pool spec (always 4KB-backed; windows rejected).
    pub file: PoolSpec,
}

impl MosallocConfig {
    /// Default pool sizes used when a pool is omitted from the spec.
    pub const DEFAULT_POOL_SIZE: u64 = 1 << 30;

    /// A configuration with all pools 4KB-backed at default sizes.
    pub fn plain() -> Self {
        MosallocConfig {
            brk: PoolSpec::plain(Self::DEFAULT_POOL_SIZE),
            anon: PoolSpec::plain(Self::DEFAULT_POOL_SIZE),
            file: PoolSpec::plain(Self::DEFAULT_POOL_SIZE),
        }
    }

    /// Builds the configuration from the process environment
    /// ([`ENV_CONFIG`] first, then per-pool variables overriding).
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] when any present variable fails to parse.
    pub fn from_env() -> Result<Self, LayoutError> {
        let mut cfg = match std::env::var(ENV_CONFIG) {
            Ok(s) => s.parse()?,
            Err(_) => MosallocConfig::plain(),
        };
        if let Ok(s) = std::env::var(ENV_BRK_POOL) {
            cfg.brk = s.parse()?;
        }
        if let Ok(s) = std::env::var(ENV_ANON_POOL) {
            cfg.anon = s.parse()?;
        }
        if let Ok(s) = std::env::var(ENV_FILE_POOL) {
            cfg.file = s.parse()?;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks cross-pool invariants (file pool must be 4KB-only).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BadSpec`] if the file pool requests hugepage
    /// windows.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if !self.file.windows.is_empty() {
            return Err(LayoutError::BadSpec(
                "file pool is served from the page cache and supports only 4KB pages".into(),
            ));
        }
        Ok(())
    }
}

impl fmt::Display for MosallocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "brk:{};anon:{};file:{}", self.brk, self.anon, self.file)
    }
}

impl FromStr for MosallocConfig {
    type Err = LayoutError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cfg = MosallocConfig::plain();
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (pool, spec) = part
                .split_once(':')
                .ok_or_else(|| LayoutError::BadSpec(format!("missing pool name in {part:?}")))?;
            let spec: PoolSpec = spec.parse()?;
            match pool.trim() {
                "brk" | "heap" => cfg.brk = spec,
                "anon" | "mmap" => cfg.anon = spec,
                "file" => cfg.file = spec,
                other => {
                    return Err(LayoutError::BadSpec(format!("unknown pool {other:?}")));
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Parses a byte count with optional `K`/`M`/`G` (or `KB`/`MB`/`GB`) suffix
/// or `0x` hex prefix.
fn parse_bytes(s: &str) -> Result<u64, LayoutError> {
    let s = s.trim();
    let err = || LayoutError::BadSpec(format!("bad byte count {s:?}"));
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).map_err(|_| err());
    }
    let upper = s.to_ascii_uppercase();
    let (digits, mult) =
        if let Some(d) = upper.strip_suffix("KB").or_else(|| upper.strip_suffix('K')) {
            (d.to_string(), 1u64 << 10)
        } else if let Some(d) = upper.strip_suffix("MB").or_else(|| upper.strip_suffix('M')) {
            (d.to_string(), 1 << 20)
        } else if let Some(d) = upper.strip_suffix("GB").or_else(|| upper.strip_suffix('G')) {
            (d.to_string(), 1 << 30)
        } else {
            (upper, 1)
        };
    let value: u64 = digits.trim().parse().map_err(|_| err())?;
    value.checked_mul(mult).ok_or_else(err)
}

/// Formats a byte count with the largest exact binary suffix.
fn format_bytes(v: u64) -> String {
    const G: u64 = 1 << 30;
    const M: u64 = 1 << 20;
    const K: u64 = 1 << 10;
    if v >= G && v.is_multiple_of(G) {
        format!("{}G", v / G)
    } else if v >= M && v.is_multiple_of(M) {
        format!("{}M", v / M)
    } else if v >= K && v.is_multiple_of(K) {
        format!("{}K", v / K)
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{GIB, MIB};

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("123").unwrap(), 123);
        assert_eq!(parse_bytes("4K").unwrap(), 4096);
        assert_eq!(parse_bytes("4kb").unwrap(), 4096);
        assert_eq!(parse_bytes("2M").unwrap(), 2 * MIB);
        assert_eq!(parse_bytes("1G").unwrap(), GIB);
        assert_eq!(parse_bytes("0x1000").unwrap(), 0x1000);
        assert!(parse_bytes("12Q").is_err());
        assert!(parse_bytes("").is_err());
    }

    #[test]
    fn format_bytes_exact_suffixes() {
        assert_eq!(format_bytes(123), "123");
        assert_eq!(format_bytes(4096), "4K");
        assert_eq!(format_bytes(2 * MIB), "2M");
        assert_eq!(format_bytes(3 * GIB), "3G");
        assert_eq!(format_bytes(GIB + 1), (GIB + 1).to_string());
    }

    #[test]
    fn pool_spec_parse_and_display_roundtrip() {
        let spec: PoolSpec = "size=1G,2MB=0..64M,1GB=1G..2G".parse().unwrap();
        assert_eq!(spec.size, GIB);
        assert_eq!(spec.windows.len(), 2);
        assert_eq!(spec.windows[0].size, PageSize::Huge2M);
        assert_eq!(spec.windows[1].start, GIB);
        let roundtrip: PoolSpec = spec.to_string().parse().unwrap();
        assert_eq!(spec, roundtrip);
    }

    #[test]
    fn pool_spec_rejects_malformed() {
        assert!("".parse::<PoolSpec>().is_err());
        assert!("2MB=0..4M".parse::<PoolSpec>().is_err(), "missing size=");
        assert!(
            "size=1G,4KB=0..4M".parse::<PoolSpec>().is_err(),
            "4KB window"
        );
        assert!(
            "size=1G,2MB=4M..4M".parse::<PoolSpec>().is_err(),
            "empty window"
        );
        assert!(
            "size=1G,2MB=8M..4M".parse::<PoolSpec>().is_err(),
            "inverted window"
        );
        assert!("size=1G,2MB".parse::<PoolSpec>().is_err(), "no range");
    }

    #[test]
    fn config_roundtrip_and_defaults() {
        let cfg: MosallocConfig = "brk:size=1G,2MB=0..512M;anon:size=256M".parse().unwrap();
        assert_eq!(cfg.brk.size, GIB);
        assert_eq!(cfg.anon.size, 256 * MIB);
        assert_eq!(cfg.file.size, MosallocConfig::DEFAULT_POOL_SIZE);
        let again: MosallocConfig = cfg.to_string().parse().unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn config_rejects_file_hugepages_and_unknown_pools() {
        assert!("file:size=1G,2MB=0..4M".parse::<MosallocConfig>().is_err());
        assert!("stack:size=1G".parse::<MosallocConfig>().is_err());
        assert!(
            "size=1G".parse::<MosallocConfig>().is_err(),
            "missing pool name"
        );
    }

    #[test]
    fn to_layout_aligns_windows_outward() {
        let spec: PoolSpec = "size=64M,2MB=0..3M".parse().unwrap();
        let layout = spec.to_layout(VirtAddr::new(0)).unwrap();
        // 3M window rounds out to 4M of 2MB pages.
        assert_eq!(layout.bytes_backed_by(PageSize::Huge2M), 4 * MIB);
        assert_eq!(
            layout.page_size_at(VirtAddr::new(3 * MIB + 1)),
            PageSize::Huge2M
        );
        assert_eq!(
            layout.page_size_at(VirtAddr::new(4 * MIB)),
            PageSize::Base4K
        );
    }

    #[test]
    fn to_layout_detects_overlap_after_alignment() {
        // Two windows that only collide once rounded outward.
        let spec: PoolSpec = "size=64M,2MB=0..3M,2MB=3M..6M".parse().unwrap();
        assert!(spec.to_layout(VirtAddr::new(0)).is_err());
    }

    #[test]
    fn uniform_and_plain_constructors() {
        let plain = PoolSpec::plain(GIB);
        assert!(plain.windows.is_empty());
        let huge = PoolSpec::uniform(GIB, PageSize::Huge1G);
        assert_eq!(huge.windows.len(), 1);
        assert_eq!(huge.windows[0].end, GIB);
        let base = PoolSpec::uniform(GIB, PageSize::Base4K);
        assert!(base.windows.is_empty());
    }

    #[test]
    fn from_env_parses_and_overrides() {
        // Serialize access to the process environment within this test.
        std::env::set_var(ENV_CONFIG, "brk:size=128M");
        std::env::set_var(ENV_ANON_POOL, "size=64M,2MB=0..2M");
        let cfg = MosallocConfig::from_env().unwrap();
        assert_eq!(cfg.brk.size, 128 * MIB);
        assert_eq!(cfg.anon.size, 64 * MIB);
        assert_eq!(cfg.anon.windows.len(), 1);
        std::env::remove_var(ENV_CONFIG);
        std::env::remove_var(ENV_ANON_POOL);
    }
}
