//! Mosalloc — the **Mosaic Memory Allocator** (paper §V).
//!
//! Mosalloc backs the virtual memory of an application with an arbitrary,
//! user-controlled mixture of 4KB, 2MB and 1GB pages — a *mosaic* of pages.
//! It manages three pools, mirroring the three kinds of memory requests a
//! Linux process makes:
//!
//! * the **heap pool** serves `brk`/`sbrk` (and glibc `morecore`) requests,
//! * the **anonymous pool** serves `MAP_ANONYMOUS` `mmap` requests with a
//!   first-fit policy,
//! * the **file pool** serves file-backed `mmap` requests and is always
//!   backed by 4KB pages (Linux's page cache does not use hugepages).
//!
//! The heap and anonymous pools each carry a [`vmcore::MemoryLayout`]
//! describing which sub-ranges are hugepage-backed; the user supplies these
//! through the environment-variable style specification implemented in
//! [`config`].
//!
//! In this workspace Mosalloc plays the same role it plays in the paper: it
//! decides, for every virtual address a workload touches, *which page size
//! backs it*. The decision feeds the memory-subsystem simulator
//! (`memsim`/`machine`), which stands in for the real Intel machines. A
//! separate crate, `mosalloc-preload`, wires the same pool logic into a real
//! `LD_PRELOAD` shared object.
//!
//! # Example
//!
//! ```
//! use mosalloc::{Mosalloc, MosallocConfig};
//! use vmcore::{PageSize, MIB};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config: MosallocConfig =
//!     "brk:size=64M,2MB=0M..8M;anon:size=64M;file:size=16M".parse()?;
//! let mut mosalloc = Mosalloc::new(config)?;
//!
//! // A malloc-style heap extension lands in the 2MB window.
//! let block = mosalloc.sbrk(4 * MIB as i64)?;
//! assert_eq!(mosalloc.page_size_at(block), PageSize::Huge2M);
//!
//! // An anonymous mapping comes from the (4KB-backed) anonymous pool.
//! let mapping = mosalloc.mmap_anon(MIB)?;
//! assert_eq!(mosalloc.page_size_at(mapping.start()), PageSize::Base4K);
//! mosalloc.munmap(mapping)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
pub mod config;
mod error;
mod freelist;
mod pool;
mod stats;
pub mod thp;

pub use alloc::Mosalloc;
pub use config::{MosallocConfig, PoolSpec};
pub use error::AllocError;
pub use freelist::{FirstFit, FitPolicy};
pub use pool::{AnonPool, FilePool, HeapPool};
pub use stats::AllocStats;

/// Default base virtual address of the heap (brk) pool.
///
/// The bases are 1GB-aligned so that any hugepage window the user requests
/// is satisfiable, and far apart so pools can grow without colliding.
pub const HEAP_POOL_BASE: u64 = 0x1000_0000_0000;
/// Default base virtual address of the anonymous-mapping pool.
pub const ANON_POOL_BASE: u64 = 0x2000_0000_0000;
/// Default base virtual address of the file-mapping pool.
pub const FILE_POOL_BASE: u64 = 0x3000_0000_0000;
