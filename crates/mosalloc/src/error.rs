//! Allocator error type.

use std::error::Error;
use std::fmt;

use vmcore::{LayoutError, Region, VirtAddr};

/// Errors returned by Mosalloc pool operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// The pool has no room left for the request.
    OutOfPool {
        /// Which pool failed ("heap", "anon", "file").
        pool: &'static str,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A free/unmap of a range that was never handed out (or was already
    /// released).
    BadFree(Region),
    /// A `brk` target outside the heap pool.
    BrkOutOfRange {
        /// The requested program break.
        target: VirtAddr,
        /// The valid heap pool.
        pool: Region,
    },
    /// An `sbrk` decrement below the initial program break.
    SbrkUnderflow,
    /// A zero-length request, which POSIX `mmap` rejects.
    ZeroLength,
    /// The pool layout was invalid.
    Layout(LayoutError),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfPool {
                pool,
                requested,
                available,
            } => write!(
                f,
                "{pool} pool exhausted: requested {requested} bytes, {available} available"
            ),
            AllocError::BadFree(region) => {
                write!(f, "free of range {region} that is not currently allocated")
            }
            AllocError::BrkOutOfRange { target, pool } => {
                write!(f, "brk target {target} outside heap pool {pool}")
            }
            AllocError::SbrkUnderflow => {
                write!(f, "sbrk decrement below the initial program break")
            }
            AllocError::ZeroLength => write!(f, "zero-length mapping request"),
            AllocError::Layout(e) => write!(f, "invalid pool layout: {e}"),
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for AllocError {
    fn from(e: LayoutError) -> Self {
        AllocError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_trait_and_source() {
        let e = AllocError::Layout(LayoutError::BadPageSize("9K".into()));
        assert!(std::error::Error::source(&e).is_some());
        let e = AllocError::ZeroLength;
        assert!(std::error::Error::source(&e).is_none());
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AllocError>();
    }

    #[test]
    fn messages_are_informative() {
        let e = AllocError::OutOfPool {
            pool: "anon",
            requested: 10,
            available: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("anon") && msg.contains("10") && msg.contains('5'));
    }
}
