//! First-fit allocation over a fixed-capacity pool.
//!
//! The paper (§V) serves anonymous-pool allocations with the *first fit*
//! algorithm and releases backing memory only from the *top* of the pool.
//! [`FirstFit`] implements exactly that split:
//!
//! * `alloc` scans the holes left by earlier frees in address order and
//!   takes the first one large enough, falling back to bumping the
//!   high-water mark (`top`);
//! * `free` coalesces the range into the hole list and, when a hole reaches
//!   the top, retracts the top — mirroring how Mosalloc only returns memory
//!   to the OS from the top of the pool.

use std::collections::BTreeMap;

/// Hole-selection policy for pool allocation.
///
/// The paper serves its anonymous pool first-fit, citing better runtime
/// complexity and utilization than best/worst fit (§V), and leaves
/// "better, more efficient memory management algorithms" as future work
/// — all three classical policies are implemented here so the claim can
/// be measured (see the `ablation_fit_policy` bench).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FitPolicy {
    /// Lowest-addressed hole that fits (the paper's choice).
    #[default]
    FirstFit,
    /// Smallest hole that fits (minimizes leftover fragments).
    BestFit,
    /// Largest hole (keeps leftovers usable).
    WorstFit,
}

/// A free-list allocator over the offset range `[0, capacity)`,
/// first-fit by default (see [`FitPolicy`] for the alternatives).
///
/// Offsets are pool-relative; the owning pool adds its base address.
///
/// # Example
///
/// ```
/// use mosalloc::FirstFit;
///
/// let mut ff = FirstFit::new(1024);
/// let a = ff.alloc(100, 1).unwrap();
/// let b = ff.alloc(200, 1).unwrap();
/// ff.free(a, 100).unwrap();
/// // First-fit reuses the hole left by `a`.
/// assert_eq!(ff.alloc(50, 1).unwrap(), a);
/// # let _ = b;
/// ```
#[derive(Clone, Debug)]
pub struct FirstFit {
    policy: FitPolicy,
    capacity: u64,
    /// High-water mark: no byte at or above `top` has ever been handed out
    /// (or all such bytes have been retracted).
    top: u64,
    /// Holes below `top`, keyed by start offset. Invariants: disjoint,
    /// non-adjacent (always coalesced), all below `top`.
    holes: BTreeMap<u64, u64>,
    /// Live allocations, keyed by start offset, for free validation.
    live: BTreeMap<u64, u64>,
}

impl FirstFit {
    /// Creates an empty first-fit allocator managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self::with_policy(capacity, FitPolicy::FirstFit)
    }

    /// Creates an allocator with an explicit hole-selection policy.
    pub fn with_policy(capacity: u64, policy: FitPolicy) -> Self {
        FirstFit {
            policy,
            capacity,
            top: 0,
            holes: BTreeMap::new(),
            live: BTreeMap::new(),
        }
    }

    /// The active hole-selection policy.
    pub fn policy(&self) -> FitPolicy {
        self.policy
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current high-water mark.
    pub fn high_water(&self) -> u64 {
        self.top
    }

    /// Bytes currently handed out.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// Bytes lost to holes below the high-water mark (internal
    /// fragmentation of the top-release policy).
    pub fn hole_bytes(&self) -> u64 {
        self.holes.values().sum()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates `len` bytes aligned to `align` (a power of two), returning
    /// the start offset.
    ///
    /// Scans existing holes and picks one according to the configured
    /// [`FitPolicy`]; if no hole fits, extends the high-water mark.
    ///
    /// Returns `None` if the pool cannot satisfy the request.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `align` is not a power of two; the pool
    /// façade validates requests before calling.
    pub fn alloc(&mut self, len: u64, align: u64) -> Option<u64> {
        assert!(len > 0, "zero-length allocation");
        assert!(align.is_power_of_two(), "alignment must be a power of two");

        // Select a hole according to the policy.
        let mut found: Option<(u64, u64, u64)> = None; // (hole_start, hole_len, alloc_start)
        for (&start, &hlen) in &self.holes {
            let alloc_start = align_up(start, align);
            let pad = alloc_start - start;
            if hlen < pad + len {
                continue;
            }
            let candidate = (start, hlen, alloc_start);
            match self.policy {
                FitPolicy::FirstFit => {
                    found = Some(candidate);
                    break;
                }
                FitPolicy::BestFit => {
                    if found.is_none_or(|(_, best, _)| hlen < best) {
                        found = Some(candidate);
                    }
                }
                FitPolicy::WorstFit => {
                    if found.is_none_or(|(_, worst, _)| hlen > worst) {
                        found = Some(candidate);
                    }
                }
            }
        }
        if let Some((start, hlen, alloc_start)) = found {
            self.holes.remove(&start);
            let pad = alloc_start - start;
            if pad > 0 {
                self.holes.insert(start, pad);
            }
            let tail = hlen - pad - len;
            if tail > 0 {
                self.holes.insert(alloc_start + len, tail);
            }
            self.live.insert(alloc_start, len);
            return Some(alloc_start);
        }

        // Bump the top.
        let alloc_start = align_up(self.top, align);
        let end = alloc_start.checked_add(len)?;
        if end > self.capacity {
            return None;
        }
        if alloc_start > self.top {
            // Alignment gap becomes a hole (reusable by smaller requests).
            self.insert_hole(self.top, alloc_start - self.top);
        }
        self.top = end;
        self.live.insert(alloc_start, len);
        Some(alloc_start)
    }

    /// Frees the allocation starting at `start` with length `len`.
    ///
    /// The exact `(start, len)` pair of a previous [`alloc`](Self::alloc)
    /// must be passed (POSIX `munmap` of sub-ranges is not modelled; the
    /// paper's pools release whole blocks).
    ///
    /// Returns `Err(())` when the range is not a live allocation.
    #[allow(clippy::result_unit_err)]
    pub fn free(&mut self, start: u64, len: u64) -> Result<(), ()> {
        match self.live.get(&start) {
            Some(&l) if l == len => {}
            _ => return Err(()),
        }
        self.live.remove(&start);
        self.insert_hole(start, len);
        self.retract_top();
        Ok(())
    }

    /// Inserts a hole and coalesces with neighbours.
    fn insert_hole(&mut self, start: u64, len: u64) {
        let mut start = start;
        let mut len = len;
        // Coalesce with predecessor.
        if let Some((&ps, &pl)) = self.holes.range(..start).next_back() {
            if ps + pl == start {
                self.holes.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        // Coalesce with successor.
        if let Some(&sl) = self.holes.get(&(start + len)) {
            self.holes.remove(&(start + len));
            len += sl;
        }
        self.holes.insert(start, len);
    }

    /// Retracts the high-water mark across any hole touching it.
    fn retract_top(&mut self) {
        while let Some((&hs, &hl)) = self.holes.iter().next_back() {
            if hs + hl == self.top {
                self.holes.remove(&hs);
                self.top = hs;
            } else {
                break;
            }
        }
    }

    /// Iterates over live allocations as `(start, len)` pairs in address
    /// order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.live.iter().map(|(&s, &l)| (s, l))
    }

    /// Whether `offset` lies inside a live allocation.
    pub fn is_live(&self, offset: u64) -> bool {
        self.live
            .range(..=offset)
            .next_back()
            .is_some_and(|(&s, &l)| offset >= s && offset < s + l)
    }
}

fn align_up(value: u64, align: u64) -> u64 {
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut ff = FirstFit::new(1000);
        assert_eq!(ff.alloc(100, 1), Some(0));
        assert_eq!(ff.alloc(100, 1), Some(100));
        assert_eq!(ff.high_water(), 200);
        assert_eq!(ff.live_bytes(), 200);
    }

    #[test]
    fn first_fit_prefers_lowest_hole() {
        let mut ff = FirstFit::new(1000);
        let a = ff.alloc(100, 1).unwrap();
        let _b = ff.alloc(100, 1).unwrap();
        let c = ff.alloc(100, 1).unwrap();
        let _d = ff.alloc(100, 1).unwrap();
        ff.free(a, 100).unwrap();
        ff.free(c, 100).unwrap();
        // Both holes fit; first-fit takes the lower one (a's).
        assert_eq!(ff.alloc(80, 1), Some(a));
        // Next allocation of 100 does not fit a's 20-byte remainder; takes c's.
        assert_eq!(ff.alloc(100, 1), Some(c));
    }

    #[test]
    fn top_release_retracts_high_water() {
        let mut ff = FirstFit::new(1000);
        let a = ff.alloc(100, 1).unwrap();
        let b = ff.alloc(100, 1).unwrap();
        assert_eq!(ff.high_water(), 200);
        // Freeing the middle does not retract the top...
        ff.free(a, 100).unwrap();
        assert_eq!(ff.high_water(), 200);
        assert_eq!(ff.hole_bytes(), 100);
        // ...freeing the top block coalesces through and retracts fully.
        ff.free(b, 100).unwrap();
        assert_eq!(ff.high_water(), 0);
        assert_eq!(ff.hole_bytes(), 0);
    }

    #[test]
    fn alignment_is_respected_and_gap_reusable() {
        let mut ff = FirstFit::new(4096);
        let a = ff.alloc(10, 1).unwrap();
        let b = ff.alloc(100, 256).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 256);
        assert_eq!(b % 256, 0);
        // The 246-byte alignment gap is a hole and reusable.
        assert_eq!(ff.alloc(200, 1), Some(10));
    }

    #[test]
    fn double_free_and_bad_free_rejected() {
        let mut ff = FirstFit::new(1000);
        let a = ff.alloc(100, 1).unwrap();
        assert!(ff.free(a, 100).is_ok());
        assert!(ff.free(a, 100).is_err(), "double free");
        let b = ff.alloc(100, 1).unwrap();
        assert!(ff.free(b, 50).is_err(), "partial free");
        assert!(ff.free(777, 1).is_err(), "never allocated");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut ff = FirstFit::new(100);
        assert!(ff.alloc(101, 1).is_none());
        assert_eq!(ff.alloc(100, 1), Some(0));
        assert!(ff.alloc(1, 1).is_none());
    }

    #[test]
    fn is_live_boundaries() {
        let mut ff = FirstFit::new(1000);
        let a = ff.alloc(100, 1).unwrap();
        assert!(ff.is_live(a));
        assert!(ff.is_live(a + 99));
        assert!(!ff.is_live(a + 100));
        ff.free(a, 100).unwrap();
        assert!(!ff.is_live(a));
    }

    #[test]
    fn holes_coalesce_both_directions() {
        let mut ff = FirstFit::new(1000);
        let a = ff.alloc(100, 1).unwrap();
        let b = ff.alloc(100, 1).unwrap();
        let c = ff.alloc(100, 1).unwrap();
        let _guard = ff.alloc(100, 1).unwrap();
        ff.free(a, 100).unwrap();
        ff.free(c, 100).unwrap();
        ff.free(b, 100).unwrap();
        // One coalesced hole of 300 bytes.
        assert_eq!(ff.holes.len(), 1);
        assert_eq!(ff.hole_bytes(), 300);
        // Fits a 300-byte request exactly.
        assert_eq!(ff.alloc(300, 1), Some(0));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_len_panics() {
        FirstFit::new(10).alloc(0, 1);
    }

    /// Sets up holes of sizes 100 and 300 (at offsets 0 and 200).
    fn two_holes(policy: FitPolicy) -> FirstFit {
        let mut ff = FirstFit::with_policy(1000, policy);
        let a = ff.alloc(100, 1).unwrap(); // [0,100)
        let _b = ff.alloc(100, 1).unwrap(); // [100,200)
        let c = ff.alloc(300, 1).unwrap(); // [200,500)
        let _d = ff.alloc(100, 1).unwrap(); // [500,600)
        ff.free(a, 100).unwrap();
        ff.free(c, 300).unwrap();
        ff
    }

    #[test]
    fn best_fit_takes_the_tightest_hole() {
        let mut ff = two_holes(FitPolicy::BestFit);
        // 80 bytes fit both holes; best fit picks the 100-byte one.
        assert_eq!(ff.alloc(80, 1), Some(0));
        // Next 80 bytes only fit the 300-byte hole.
        assert_eq!(ff.alloc(250, 1), Some(200));
    }

    #[test]
    fn worst_fit_takes_the_largest_hole() {
        let mut ff = two_holes(FitPolicy::WorstFit);
        assert_eq!(
            ff.alloc(80, 1),
            Some(200),
            "worst fit picks the 300-byte hole"
        );
    }

    #[test]
    fn first_fit_takes_the_lowest_hole() {
        let mut ff = two_holes(FitPolicy::FirstFit);
        assert_eq!(ff.alloc(80, 1), Some(0));
        assert_eq!(ff.policy(), FitPolicy::FirstFit);
        assert_eq!(FirstFit::new(8).policy(), FitPolicy::FirstFit);
    }

    #[test]
    fn policies_agree_when_one_hole_fits() {
        for policy in [FitPolicy::FirstFit, FitPolicy::BestFit, FitPolicy::WorstFit] {
            let mut ff = two_holes(policy);
            assert_eq!(ff.alloc(250, 1), Some(200), "{policy:?}");
        }
    }
}
