//! The three Mosalloc memory pools (paper §V, Figure 4).

use vmcore::{MemoryLayout, PageSize, Region, VirtAddr};

use crate::{AllocError, FirstFit, PoolSpec};

/// The heap pool: replaces the OS heap, serving `brk`/`sbrk`/`morecore`.
///
/// glibc discovers the heap location by calling `sbrk(0)` at load time;
/// Mosalloc answers with the pool base, after which all program-break
/// motion happens inside the pool (paper §V "The Heap Pool").
///
/// # Example
///
/// ```
/// use mosalloc::{HeapPool, PoolSpec};
/// use vmcore::VirtAddr;
///
/// let mut heap = HeapPool::new(&PoolSpec::plain(1 << 20), VirtAddr::new(0x1000_0000))?;
/// let old = heap.sbrk(4096)?;           // extend by one page
/// assert_eq!(old, VirtAddr::new(0x1000_0000));
/// assert_eq!(heap.brk_now(), VirtAddr::new(0x1000_1000));
/// heap.sbrk(-4096)?;                    // shrink back
/// assert_eq!(heap.brk_now(), old);
/// # Ok::<(), mosalloc::AllocError>(())
/// ```
#[derive(Clone, Debug)]
pub struct HeapPool {
    region: Region,
    layout: MemoryLayout,
    brk: VirtAddr,
}

impl HeapPool {
    /// Creates the pool from its spec at `base`.
    ///
    /// # Errors
    ///
    /// Propagates layout validation failures.
    pub fn new(spec: &PoolSpec, base: VirtAddr) -> Result<Self, AllocError> {
        let layout = spec.to_layout(base)?;
        let region = Region::new(base, spec.size);
        Ok(HeapPool {
            region,
            layout,
            brk: base,
        })
    }

    /// The pool's virtual address range.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The page-size mosaic backing the pool.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Current program break (`sbrk(0)`).
    pub fn brk_now(&self) -> VirtAddr {
        self.brk
    }

    /// Bytes currently claimed by the program.
    pub fn used(&self) -> u64 {
        self.brk - self.region.start()
    }

    /// Sets the program break to `target` (the `brk(2)` system call).
    ///
    /// # Errors
    ///
    /// [`AllocError::BrkOutOfRange`] if `target` leaves the pool.
    pub fn brk(&mut self, target: VirtAddr) -> Result<(), AllocError> {
        if target < self.region.start() || target > self.region.end() {
            return Err(AllocError::BrkOutOfRange {
                target,
                pool: self.region,
            });
        }
        self.brk = target;
        Ok(())
    }

    /// Moves the break by `delta` bytes, returning the *previous* break
    /// (the `sbrk(2)` convention; `sbrk(0)` queries).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfPool`] when growing past the pool,
    /// [`AllocError::SbrkUnderflow`] when shrinking below the pool base.
    pub fn sbrk(&mut self, delta: i64) -> Result<VirtAddr, AllocError> {
        let old = self.brk;
        if delta >= 0 {
            let grow = delta as u64;
            let avail = self.region.end() - self.brk;
            if grow > avail {
                return Err(AllocError::OutOfPool {
                    pool: "heap",
                    requested: grow,
                    available: avail,
                });
            }
            self.brk += grow;
        } else {
            let shrink = delta.unsigned_abs();
            if shrink > self.used() {
                return Err(AllocError::SbrkUnderflow);
            }
            self.brk = VirtAddr::new(self.brk.raw() - shrink);
        }
        Ok(old)
    }
}

/// The anonymous-mapping pool: serves `MAP_ANONYMOUS` `mmap`s first-fit.
#[derive(Clone, Debug)]
pub struct AnonPool {
    region: Region,
    layout: MemoryLayout,
    alloc: FirstFit,
}

impl AnonPool {
    /// Allocation granularity: POSIX mmap returns page-aligned mappings.
    pub const GRANULARITY: u64 = PageSize::Base4K.bytes();

    /// Creates the pool from its spec at `base`.
    ///
    /// # Errors
    ///
    /// Propagates layout validation failures.
    pub fn new(spec: &PoolSpec, base: VirtAddr) -> Result<Self, AllocError> {
        let layout = spec.to_layout(base)?;
        let region = Region::new(base, spec.size);
        Ok(AnonPool {
            region,
            layout,
            alloc: FirstFit::new(spec.size),
        })
    }

    /// The pool's virtual address range.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The page-size mosaic backing the pool.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Bytes currently mapped.
    pub fn used(&self) -> u64 {
        self.alloc.live_bytes()
    }

    /// Bytes unusable due to the top-only release policy.
    pub fn fragmented(&self) -> u64 {
        self.alloc.hole_bytes()
    }

    /// Maps `len` bytes (rounded up to 4KB), returning the mapped region.
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroLength`] for empty requests,
    /// [`AllocError::OutOfPool`] when the pool is exhausted.
    pub fn mmap(&mut self, len: u64) -> Result<Region, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroLength);
        }
        let len = round_up(len, Self::GRANULARITY);
        let offset = self
            .alloc
            .alloc(len, Self::GRANULARITY)
            .ok_or(AllocError::OutOfPool {
                pool: "anon",
                requested: len,
                available: self.region.len() - self.alloc.high_water(),
            })?;
        Ok(Region::new(self.region.start() + offset, len))
    }

    /// Unmaps a previously returned region.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] when the region was not returned by
    /// [`mmap`](Self::mmap) (or was already unmapped).
    pub fn munmap(&mut self, mapping: Region) -> Result<(), AllocError> {
        if !self.region.contains_region(&mapping) || mapping.is_empty() {
            return Err(AllocError::BadFree(mapping));
        }
        let offset = mapping.start() - self.region.start();
        self.alloc
            .free(offset, mapping.len())
            .map_err(|()| AllocError::BadFree(mapping))
    }
}

/// The file-mapping pool: 4KB pages only, bump-allocated.
///
/// Linux serves file-backed mappings from the page cache, which manages
/// only base pages, so this pool never carries hugepage windows.
#[derive(Clone, Debug)]
pub struct FilePool {
    region: Region,
    alloc: FirstFit,
}

impl FilePool {
    /// Creates the pool from its spec at `base`.
    ///
    /// # Errors
    ///
    /// Propagates layout validation failures (a file spec with windows is
    /// rejected by [`crate::MosallocConfig::validate`]).
    pub fn new(spec: &PoolSpec, base: VirtAddr) -> Result<Self, AllocError> {
        if !spec.windows.is_empty() {
            return Err(AllocError::Layout(vmcore::LayoutError::BadSpec(
                "file pool supports only 4KB pages".into(),
            )));
        }
        Ok(FilePool {
            region: Region::new(base, spec.size),
            alloc: FirstFit::new(spec.size),
        })
    }

    /// The pool's virtual address range.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Maps `len` bytes of a file (rounded up to 4KB).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnonPool::mmap`].
    pub fn mmap(&mut self, len: u64) -> Result<Region, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroLength);
        }
        let len = round_up(len, AnonPool::GRANULARITY);
        let offset = self
            .alloc
            .alloc(len, AnonPool::GRANULARITY)
            .ok_or(AllocError::OutOfPool {
                pool: "file",
                requested: len,
                available: self.region.len() - self.alloc.high_water(),
            })?;
        Ok(Region::new(self.region.start() + offset, len))
    }

    /// Unmaps a previously returned region.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] when the region is unknown.
    pub fn munmap(&mut self, mapping: Region) -> Result<(), AllocError> {
        if !self.region.contains_region(&mapping) || mapping.is_empty() {
            return Err(AllocError::BadFree(mapping));
        }
        let offset = mapping.start() - self.region.start();
        self.alloc
            .free(offset, mapping.len())
            .map_err(|()| AllocError::BadFree(mapping))
    }
}

fn round_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::MIB;

    fn base() -> VirtAddr {
        VirtAddr::new(0x4000_0000)
    }

    #[test]
    fn heap_brk_and_sbrk_semantics() {
        let mut heap = HeapPool::new(&PoolSpec::plain(MIB), base()).unwrap();
        assert_eq!(heap.sbrk(0).unwrap(), base(), "sbrk(0) queries");
        let old = heap.sbrk(4096).unwrap();
        assert_eq!(old, base());
        assert_eq!(heap.used(), 4096);
        heap.brk(base() + 8192).unwrap();
        assert_eq!(heap.used(), 8192);
        heap.sbrk(-8192).unwrap();
        assert_eq!(heap.used(), 0);
    }

    #[test]
    fn heap_bounds_enforced() {
        let mut heap = HeapPool::new(&PoolSpec::plain(MIB), base()).unwrap();
        assert!(matches!(
            heap.sbrk(MIB as i64 + 1),
            Err(AllocError::OutOfPool { .. })
        ));
        assert!(matches!(heap.sbrk(-1), Err(AllocError::SbrkUnderflow)));
        assert!(matches!(
            heap.brk(VirtAddr::new(base().raw() - 1)),
            Err(AllocError::BrkOutOfRange { .. })
        ));
        assert!(
            heap.brk(heap.region().end()).is_ok(),
            "brk to pool end is legal"
        );
    }

    #[test]
    fn heap_layout_reflects_spec() {
        let spec = PoolSpec::plain(8 * MIB).with_window(0, 2 * MIB, PageSize::Huge2M);
        let heap = HeapPool::new(&spec, base()).unwrap();
        assert_eq!(heap.layout().page_size_at(base()), PageSize::Huge2M);
        assert_eq!(
            heap.layout().page_size_at(base() + 2 * MIB),
            PageSize::Base4K
        );
    }

    #[test]
    fn anon_mmap_rounds_and_aligns() {
        let mut anon = AnonPool::new(&PoolSpec::plain(MIB), base()).unwrap();
        let m = anon.mmap(100).unwrap();
        assert_eq!(m.len(), 4096, "rounded to page granularity");
        assert!(m.start().is_aligned(PageSize::Base4K));
        assert_eq!(anon.used(), 4096);
    }

    #[test]
    fn anon_reuses_freed_space_first_fit() {
        let mut anon = AnonPool::new(&PoolSpec::plain(MIB), base()).unwrap();
        let a = anon.mmap(64 * 1024).unwrap();
        let _b = anon.mmap(64 * 1024).unwrap();
        anon.munmap(a).unwrap();
        assert_eq!(anon.fragmented(), 64 * 1024);
        let c = anon.mmap(32 * 1024).unwrap();
        assert_eq!(c.start(), a.start(), "first fit reuses the lowest hole");
    }

    #[test]
    fn anon_rejects_bad_unmaps() {
        let mut anon = AnonPool::new(&PoolSpec::plain(MIB), base()).unwrap();
        let a = anon.mmap(8192).unwrap();
        assert!(
            anon.munmap(Region::new(a.start(), 4096)).is_err(),
            "partial unmap"
        );
        anon.munmap(a).unwrap();
        assert!(anon.munmap(a).is_err(), "double unmap");
        assert!(
            anon.munmap(Region::new(VirtAddr::new(1), 4096)).is_err(),
            "foreign range"
        );
        assert!(matches!(anon.mmap(0), Err(AllocError::ZeroLength)));
    }

    #[test]
    fn file_pool_is_plain_only() {
        assert!(FilePool::new(
            &PoolSpec::plain(MIB).with_window(0, 2 * MIB, PageSize::Huge2M),
            base()
        )
        .is_err());
        let mut file = FilePool::new(&PoolSpec::plain(MIB), base()).unwrap();
        let m = file.mmap(5000).unwrap();
        assert_eq!(m.len(), 8192);
        file.munmap(m).unwrap();
    }

    #[test]
    fn pool_exhaustion_reports_availability() {
        let mut anon = AnonPool::new(&PoolSpec::plain(16 * 1024), base()).unwrap();
        let _a = anon.mmap(16 * 1024).unwrap();
        match anon.mmap(4096) {
            Err(AllocError::OutOfPool {
                pool, available, ..
            }) => {
                assert_eq!(pool, "anon");
                assert_eq!(available, 0);
            }
            other => panic!("expected OutOfPool, got {other:?}"),
        }
    }
}
