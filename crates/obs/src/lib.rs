//! Allocation-bounded tracing for the Mosaic stack.
//!
//! This crate is deliberately tiny and `std`-only: it knows nothing about
//! clocks, sockets, or the simulator. Callers stamp spans with whatever tick
//! source their clock domain prescribes and this crate only stores, bounds,
//! aggregates, and (de)serializes them.
//!
//! # Clock domains
//!
//! Every trace lives in exactly one [`ClockDomain`]:
//!
//! * [`ClockDomain::Sim`] — ticks are *simulated cycles* taken from the
//!   machine engine's retirement clock. Simulated cycles are a pure function
//!   of the workload trace and platform parameters, so two identical runs
//!   yield byte-identical rendered traces. Nothing in this crate reads
//!   `Instant` or `SystemTime`; sim-domain determinism is preserved by
//!   construction.
//! * [`ClockDomain::Wall`] — ticks are microseconds of monotonic wall time,
//!   measured by the caller (the service layer). Wall traces are for latency
//!   attribution and are *not* expected to be reproducible.
//!
//! # Bounded memory
//!
//! All containers here have a fixed capacity chosen at construction:
//! [`SpanRecorder`] holds at most `capacity` spans per request and counts
//! overflow in a drop counter; [`TraceRing`] keeps the last `capacity`
//! finished traces and evicts the oldest (again counting drops) rather than
//! growing. [`StageSums`] aggregates over a fixed, static stage list into
//! atomics. A hostile or pathological traffic pattern can therefore never
//! grow tracer memory without bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic
    )
)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The tick source a trace's span timestamps were taken from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockDomain {
    /// Simulated cycles from the machine engine's deterministic clock.
    Sim,
    /// Microseconds of monotonic wall time measured by the caller.
    Wall,
}

impl ClockDomain {
    /// Canonical wire name of the domain.
    pub fn name(self) -> &'static str {
        match self {
            ClockDomain::Sim => "sim",
            ClockDomain::Wall => "wall",
        }
    }

    /// Inverse of [`ClockDomain::name`].
    pub fn by_name(name: &str) -> Option<ClockDomain> {
        match name {
            "sim" => Some(ClockDomain::Sim),
            "wall" => Some(ClockDomain::Wall),
            _ => None,
        }
    }
}

/// One named interval on a trace's tick axis.
///
/// `start` and `end` are ticks in the owning trace's [`ClockDomain`]; a
/// zero-width span (`start == end`) marks an instant event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Stage name; must not contain whitespace or `,` (the wire delimiters).
    pub stage: String,
    /// Tick at which the stage began.
    pub start: u64,
    /// Tick at which the stage ended.
    pub end: u64,
}

impl Span {
    /// Width of the span in ticks (saturating, so malformed `end < start`
    /// input reads as zero rather than wrapping).
    pub fn ticks(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A finished, labelled collection of spans from one unit of work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Monotonic sequence number assigned by the [`TraceRing`] at push time.
    pub seq: u64,
    /// What produced this trace (e.g. the request verb).
    pub label: String,
    /// Tick source for every span in `spans`.
    pub domain: ClockDomain,
    /// Spans that could not be recorded because the per-request
    /// [`SpanRecorder`] was full.
    pub dropped_spans: u64,
    /// The recorded spans, in recording order.
    pub spans: Vec<Span>,
}

/// Fixed-capacity span sink for a single unit of work.
///
/// Once `capacity` spans have been recorded, further [`record`] calls bump
/// the drop counter instead of allocating. A zero-capacity recorder is a
/// valid "tracing disabled" sink: it never allocates span storage.
///
/// [`record`]: SpanRecorder::record
#[derive(Debug)]
pub struct SpanRecorder {
    capacity: usize,
    spans: Vec<Span>,
    dropped: u64,
}

impl SpanRecorder {
    /// Creates a recorder that holds at most `capacity` spans.
    pub fn new(capacity: usize) -> SpanRecorder {
        SpanRecorder {
            capacity,
            spans: Vec::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Records one span, or counts it as dropped when the recorder is full.
    pub fn record(&mut self, stage: &str, start: u64, end: u64) {
        if self.spans.len() < self.capacity {
            self.spans.push(Span {
                stage: stage.to_string(),
                start,
                end,
            });
        } else {
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Spans recorded so far, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans rejected because the recorder was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum number of spans this recorder will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Consumes the recorder, returning its spans and drop count.
    pub fn into_parts(self) -> (Vec<Span>, u64) {
        (self.spans, self.dropped)
    }
}

struct RingInner {
    traces: VecDeque<Trace>,
    dropped: u64,
    seq: u64,
}

/// Thread-safe ring of the most recent finished traces.
///
/// Holds at most `capacity` traces; pushing into a full ring evicts the
/// oldest trace and increments the drop counter, so memory use is constant
/// regardless of traffic volume. A zero-capacity ring stores nothing and
/// counts every push as a drop.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// Creates a ring that retains the last `capacity` traces.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity,
            inner: Mutex::new(RingInner {
                traces: VecDeque::with_capacity(capacity),
                dropped: 0,
                seq: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        // A poisoned ring only means a panicking thread died mid-push; the
        // counters remain structurally valid, so keep serving.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pushes a finished trace, assigning and returning its sequence number.
    pub fn push(
        &self,
        label: &str,
        domain: ClockDomain,
        spans: Vec<Span>,
        dropped_spans: u64,
    ) -> u64 {
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq = inner.seq.saturating_add(1);
        let trace = Trace {
            seq,
            label: label.to_string(),
            domain,
            dropped_spans,
            spans,
        };
        if self.capacity == 0 {
            inner.dropped = inner.dropped.saturating_add(1);
            return seq;
        }
        if inner.traces.len() >= self.capacity {
            inner.traces.pop_front();
            inner.dropped = inner.dropped.saturating_add(1);
        }
        inner.traces.push_back(trace);
        seq
    }

    /// Returns (a clone of) the most recent `n` traces, oldest first.
    pub fn last(&self, n: usize) -> Vec<Trace> {
        let inner = self.lock();
        let skip = inner.traces.len().saturating_sub(n);
        inner.traces.iter().skip(skip).cloned().collect()
    }

    /// Number of traces currently buffered.
    pub fn len(&self) -> usize {
        self.lock().traces.len()
    }

    /// True when no trace is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of traces evicted or rejected since construction.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Maximum number of traces the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Aggregate tick totals for one stage, as reported by [`StageSums::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSum {
    /// Stage name from the static stage list.
    pub stage: &'static str,
    /// Total ticks recorded across all spans of this stage.
    pub total_ticks: u64,
    /// Number of spans recorded for this stage.
    pub spans: u64,
}

/// Lock-free per-stage tick accumulator over a fixed, static stage list.
///
/// Stages are matched by name with a linear scan (the lists are a handful of
/// entries); spans whose stage is not in the list are ignored, so the
/// accumulator can never grow.
pub struct StageSums {
    stages: &'static [&'static str],
    ticks: Vec<AtomicU64>,
    spans: Vec<AtomicU64>,
}

impl StageSums {
    /// Creates an accumulator for the given static stage list.
    pub fn new(stages: &'static [&'static str]) -> StageSums {
        StageSums {
            stages,
            ticks: stages.iter().map(|_| AtomicU64::new(0)).collect(),
            spans: stages.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Adds `ticks` to the named stage's total; unknown stages are ignored.
    pub fn record(&self, stage: &str, ticks: u64) {
        if let Some(pos) = self.stages.iter().position(|s| *s == stage) {
            if let Some(cell) = self.ticks.get(pos) {
                cell.fetch_add(ticks, Ordering::Relaxed);
            }
            if let Some(cell) = self.spans.get(pos) {
                cell.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Folds every span of a finished trace into the totals.
    pub fn add_spans(&self, spans: &[Span]) {
        for span in spans {
            self.record(&span.stage, span.ticks());
        }
    }

    /// The static stage list this accumulator was built over.
    pub fn stages(&self) -> &'static [&'static str] {
        self.stages
    }

    /// Reads the current totals, in stage-list order.
    pub fn snapshot(&self) -> Vec<StageSum> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, stage)| StageSum {
                stage,
                total_ticks: self
                    .ticks
                    .get(i)
                    .map(|c| c.load(Ordering::Relaxed))
                    .unwrap_or(0),
                spans: self
                    .spans
                    .get(i)
                    .map(|c| c.load(Ordering::Relaxed))
                    .unwrap_or(0),
            })
            .collect()
    }
}

/// Renders a trace as one wire line.
///
/// Format:
/// `trace seq=<n> domain=<sim|wall> label=<label> dropped_spans=<n>
/// spans=<stage>:<start>..<end>,...` with `spans=-` when the trace holds no
/// spans. [`parse_trace`] is the exact inverse on everything this function
/// produces.
pub fn render_trace(trace: &Trace) -> String {
    let spans = if trace.spans.is_empty() {
        "-".to_string()
    } else {
        let parts: Vec<String> = trace
            .spans
            .iter()
            .map(|s| format!("{}:{}..{}", s.stage, s.start, s.end))
            .collect();
        parts.join(",")
    };
    format!(
        "trace seq={} domain={} label={} dropped_spans={} spans={}",
        trace.seq,
        trace.domain.name(),
        trace.label,
        trace.dropped_spans,
        spans
    )
}

/// Parses one wire line produced by [`render_trace`].
///
/// Never panics; any malformed input yields `Err`. For every `Ok(t)` result,
/// `parse_trace(&render_trace(&t)) == Ok(t)` (render∘parse is a fixed point).
pub fn parse_trace(line: &str) -> Result<Trace, String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("trace") {
        return Err("trace line must start with 'trace'".to_string());
    }
    let mut field = |key: &str| -> Result<String, String> {
        let word = words.next().ok_or_else(|| format!("missing field {key}"))?;
        let value = word
            .strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| format!("expected field {key}, got '{word}'"))?;
        Ok(value.to_string())
    };
    let num = |key: &str, value: &str| -> Result<u64, String> {
        value
            .parse::<u64>()
            .map_err(|_| format!("field {key} is not a u64: '{value}'"))
    };
    let seq_raw = field("seq")?;
    let seq = num("seq", &seq_raw)?;
    let domain_raw = field("domain")?;
    let domain = ClockDomain::by_name(&domain_raw)
        .ok_or_else(|| format!("unknown clock domain '{domain_raw}'"))?;
    let label = field("label")?;
    if label.is_empty() {
        return Err("trace label must be non-empty".to_string());
    }
    let dropped_raw = field("dropped_spans")?;
    let dropped_spans = num("dropped_spans", &dropped_raw)?;
    let spans_raw = field("spans")?;
    if words.next().is_some() {
        return Err("unexpected trailing tokens on trace line".to_string());
    }
    let mut spans = Vec::new();
    if spans_raw != "-" {
        for token in spans_raw.split(',') {
            let (stage, range) = token
                .rsplit_once(':')
                .ok_or_else(|| format!("span token '{token}' has no ':' separator"))?;
            if stage.is_empty() {
                return Err(format!("span token '{token}' has an empty stage name"));
            }
            let (start_raw, end_raw) = range
                .split_once("..")
                .ok_or_else(|| format!("span range '{range}' has no '..'"))?;
            let start = num("span start", start_raw)?;
            let end = num("span end", end_raw)?;
            spans.push(Span {
                stage: stage.to_string(),
                start,
                end,
            });
        }
    }
    Ok(Trace {
        seq,
        label,
        domain,
        dropped_spans,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            seq: 7,
            label: "predict".to_string(),
            domain: ClockDomain::Sim,
            dropped_spans: 2,
            spans: vec![
                Span {
                    stage: "replay".to_string(),
                    start: 0,
                    end: 2_409_763,
                },
                Span {
                    stage: "page_walk".to_string(),
                    start: 0,
                    end: 859_054,
                },
            ],
        }
    }

    #[test]
    fn clock_domain_names_roundtrip() {
        for domain in [ClockDomain::Sim, ClockDomain::Wall] {
            assert_eq!(ClockDomain::by_name(domain.name()), Some(domain));
        }
        assert_eq!(ClockDomain::by_name("cpu"), None);
    }

    #[test]
    fn recorder_caps_spans_and_counts_drops() {
        let mut rec = SpanRecorder::new(2);
        rec.record("a", 0, 1);
        rec.record("b", 1, 2);
        rec.record("c", 2, 3);
        rec.record("d", 3, 4);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 2);
        let (spans, dropped) = rec.into_parts();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 2);
        assert_eq!(spans[0].stage, "a");
    }

    #[test]
    fn zero_capacity_recorder_only_counts() {
        let mut rec = SpanRecorder::new(0);
        rec.record("a", 0, 1);
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let ring = TraceRing::new(2);
        for i in 0..5u64 {
            let seq = ring.push("predict", ClockDomain::Wall, Vec::new(), 0);
            assert_eq!(seq, i);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let last = ring.last(10);
        let seqs: Vec<u64> = last.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        let last_one = ring.last(1);
        assert_eq!(last_one.len(), 1);
        assert_eq!(last_one[0].seq, 4);
    }

    #[test]
    fn zero_capacity_ring_stores_nothing() {
        let ring = TraceRing::new(0);
        ring.push("predict", ClockDomain::Wall, Vec::new(), 0);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn stage_sums_accumulate_known_stages_only() {
        static STAGES: [&str; 2] = ["replay", "page_walk"];
        let sums = StageSums::new(&STAGES);
        sums.record("replay", 10);
        sums.record("replay", 5);
        sums.record("page_walk", 3);
        sums.record("unknown", 99);
        let snap = sums.snapshot();
        assert_eq!(
            snap,
            vec![
                StageSum {
                    stage: "replay",
                    total_ticks: 15,
                    spans: 2
                },
                StageSum {
                    stage: "page_walk",
                    total_ticks: 3,
                    spans: 1
                },
            ]
        );
    }

    #[test]
    fn stage_sums_fold_spans() {
        static STAGES: [&str; 2] = ["replay", "page_walk"];
        let sums = StageSums::new(&STAGES);
        sums.add_spans(&sample_trace().spans);
        let snap = sums.snapshot();
        assert_eq!(snap[0].total_ticks, 2_409_763);
        assert_eq!(snap[1].total_ticks, 859_054);
    }

    #[test]
    fn trace_wire_roundtrip() {
        let trace = sample_trace();
        let line = render_trace(&trace);
        assert_eq!(
            line,
            "trace seq=7 domain=sim label=predict dropped_spans=2 \
             spans=replay:0..2409763,page_walk:0..859054"
        );
        assert_eq!(parse_trace(&line), Ok(trace));
    }

    #[test]
    fn empty_span_list_renders_as_dash() {
        let trace = Trace {
            seq: 0,
            label: "stats".to_string(),
            domain: ClockDomain::Wall,
            dropped_spans: 0,
            spans: Vec::new(),
        };
        let line = render_trace(&trace);
        assert_eq!(
            line,
            "trace seq=0 domain=wall label=stats dropped_spans=0 spans=-"
        );
        assert_eq!(parse_trace(&line), Ok(trace));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "trace",
            "trace seq=1",
            "trace seq=x domain=sim label=a dropped_spans=0 spans=-",
            "trace seq=1 domain=cpu label=a dropped_spans=0 spans=-",
            "trace seq=1 domain=sim label= dropped_spans=0 spans=-",
            "trace seq=1 domain=sim label=a dropped_spans=0 spans=:1..2",
            "trace seq=1 domain=sim label=a dropped_spans=0 spans=a:12",
            "trace seq=1 domain=sim label=a dropped_spans=0 spans=a:1..b",
            "trace seq=1 domain=sim label=a dropped_spans=0 spans=- extra",
            "stats requests=1",
        ] {
            assert!(parse_trace(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn span_ticks_saturate() {
        let span = Span {
            stage: "x".to_string(),
            start: 10,
            end: 3,
        };
        assert_eq!(span.ticks(), 0);
    }
}
