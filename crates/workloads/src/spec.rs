//! SPEC-CPU-like single-threaded workloads: `mcf`, `omnetpp`,
//! `xalancbmk`.
//!
//! * **mcf** (network simplex): long dependent pointer chases over a large
//!   arc array, punctuated by sequential pricing sweeps. Runtime responds
//!   non-linearly to walk cycles (paper Figure 3).
//! * **omnetpp** (discrete event simulation): a hot future-event-set heap
//!   plus random message-object traffic over a modest footprint. Runtime
//!   is almost perfectly linear in walk cycles (paper Figure 8).
//! * **xalancbmk** (XSLT processing): tree traversals with strong temporal
//!   reuse over a mid-size DOM; its caches are warm, so page walks evict
//!   useful lines and the poly1 slope exceeds 1 (paper Figure 9, Table 7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmcore::Region;

use crate::sampler::{jitter_gap, PowerLaw};
use crate::{Access, TraceParams};

fn chase_next(idx: u64, n: u64, salt: u64) -> u64 {
    // A fixed functional graph: deterministic "pointer" stored at each arc.
    let mut x = idx ^ salt;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) % n
}

/// Streaming `mcf` trace.
#[derive(Debug)]
pub struct McfTrace {
    rng: StdRng,
    arena: Region,
    remaining: u64,
    /// Current arc index of the pointer chase.
    idx: u64,
    /// Steps left in the current chase before a pricing sweep.
    chase_left: u32,
    /// Words left in the current sequential sweep.
    sweep_left: u32,
    sweep_cursor: u64,
    /// Network simplex works a *block* of arcs at a time: chases jump
    /// within this window and the window relocates occasionally. The
    /// window spans far more 4KB pages than the TLB holds but few 2MB
    /// pages, matching mcf's measured locality.
    window_base: u64,
    window_steps: u32,
}

/// Arc record size in bytes (real mcf arcs are ~72B; rounded to a cache
/// line so a record is one line).
const ARC_BYTES: u64 = 64;

impl McfTrace {
    /// Creates the trace.
    pub fn new(params: &TraceParams) -> Self {
        McfTrace {
            rng: StdRng::seed_from_u64(params.seed ^ 0x6d_6366),
            arena: params.arena,
            remaining: params.accesses,
            idx: 1,
            chase_left: 40,
            sweep_left: 0,
            sweep_cursor: 0,
            window_base: 0,
            window_steps: 0,
        }
    }

    fn arcs(&self) -> u64 {
        (self.arena.len() / ARC_BYTES).max(2)
    }

    /// The active arc block: an eighth of the arc array.
    fn window_arcs(&self) -> u64 {
        (self.arcs() / 8).max(2)
    }
}

impl Iterator for McfTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.sweep_left > 0 {
            // Pricing sweep: sequential scan with cheap gaps.
            self.sweep_left -= 1;
            let addr = self.arena.start() + (self.sweep_cursor % self.arcs()) * ARC_BYTES;
            self.sweep_cursor += 1;
            return Some(Access::read(addr, jitter_gap(&mut self.rng, 2)));
        }
        if self.chase_left == 0 {
            self.chase_left = self.rng.gen_range(24..64);
            self.sweep_left = self.rng.gen_range(8..24);
        }
        self.chase_left -= 1;
        if self.window_steps == 0 {
            self.window_steps = 4000;
            let blocks = self.arcs() / self.window_arcs();
            self.window_base = self.rng.gen_range(0..blocks.max(1)) * self.window_arcs();
        }
        self.window_steps -= 1;
        // Most pivots stay in the active block; some chase into the wider
        // network (real mcf follows tree edges that span blocks).
        self.idx = if self.rng.gen_bool(0.8) {
            let local = chase_next(self.idx, self.window_arcs(), 0x6d_6366);
            (self.window_base + local).min(self.arcs() - 1)
        } else {
            chase_next(self.idx, self.arcs(), 0x6d_6311)
        };
        let addr = self.arena.start() + self.idx * ARC_BYTES;
        Some(Access::read_dep(addr, jitter_gap(&mut self.rng, 2)))
    }
}

/// Streaming `omnetpp` trace.
#[derive(Debug)]
pub struct OmnetppTrace {
    rng: StdRng,
    /// Hot future-event-set heap (small region at the arena base).
    fes: Region,
    /// Message pool (the rest of the arena).
    pool: Region,
    law: PowerLaw,
    remaining: u64,
    phase: u32,
    /// Current message object; several fields are read in sequence.
    msg: u64,
    msg_field: u32,
}

/// Message object size (a few cache lines, like real cMessage objects).
const MSG_BYTES: u64 = 256;

impl OmnetppTrace {
    /// Creates the trace.
    pub fn new(params: &TraceParams) -> Self {
        let arena = params.arena;
        let fes_len = (arena.len() / 64).clamp(4096, 4 << 20);
        let fes = Region::new(arena.start(), fes_len);
        let pool = Region::from_bounds(fes.end(), arena.end());
        let slots = (fes.len() / 8).max(2);
        OmnetppTrace {
            rng: StdRng::seed_from_u64(params.seed ^ 0x6f6d_6e65),
            fes,
            pool,
            law: PowerLaw::new(slots, 4.0),
            remaining: params.accesses,
            phase: 0,
            msg: 0,
            msg_field: 0,
        }
    }
}

impl Iterator for OmnetppTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.phase = (self.phase + 1) % 8;
        if self.phase < 3 {
            // Heap sift: biased toward the FES head (hot, cache-resident).
            let slot = self.law.sample(&mut self.rng);
            let addr = self.fes.start() + slot * 8;
            return Some(Access::write(addr, jitter_gap(&mut self.rng, 10)));
        }
        // Message handling: pick a message uniformly, then touch a few of
        // its fields (spatial locality within the object).
        if self.msg_field == 0 {
            let msgs = (self.pool.len() / MSG_BYTES).max(1);
            self.msg = self.rng.gen_range(0..msgs);
            self.msg_field = 3;
        }
        self.msg_field -= 1;
        let addr = self.pool.start() + self.msg * MSG_BYTES + u64::from(self.msg_field) * 48;
        Some(Access::read(addr, jitter_gap(&mut self.rng, 14)))
    }
}

/// Streaming `xalancbmk` trace.
#[derive(Debug)]
pub struct XalancbmkTrace {
    rng: StdRng,
    arena: Region,
    remaining: u64,
    /// Current DOM node of the traversal.
    node: u64,
    /// Depth left in the current template-match descent.
    depth: u32,
    /// Hot fraction: templates revisit a subset of nodes constantly.
    hot_nodes: u64,
}

/// DOM node size.
const NODE_BYTES: u64 = 128;

impl XalancbmkTrace {
    /// Creates the trace.
    pub fn new(params: &TraceParams) -> Self {
        let nodes = (params.arena.len() / NODE_BYTES).max(2);
        XalancbmkTrace {
            rng: StdRng::seed_from_u64(params.seed ^ 0x7861_6c61),
            arena: params.arena,
            remaining: params.accesses,
            node: 1,
            depth: 0,
            hot_nodes: (nodes / 64).max(2),
        }
    }

    fn nodes(&self) -> u64 {
        (self.arena.len() / NODE_BYTES).max(2)
    }
}

impl Iterator for XalancbmkTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.depth == 0 {
            // New template match: most restarts begin at one of a few
            // hundred anchor nodes (the stylesheet templates), so the same
            // descent paths repeat and stay cache-warm; the rest roam the
            // whole DOM.
            self.depth = self.rng.gen_range(6..20);
            self.node = if self.rng.gen_bool(0.8) {
                let anchors = 512.min(self.hot_nodes);
                let a = PowerLaw::new(anchors, 2.0).sample(&mut self.rng);
                a * (self.hot_nodes / anchors).max(1)
            } else {
                self.rng.gen_range(0..self.nodes())
            };
        }
        self.depth -= 1;
        // Child pointer chase: the child offset is a *deterministic*
        // function of the parent (the DOM's shape is fixed), so repeated
        // template matches retrace the same nodes.
        let step = 1 + chase_next(self.node, 31, 0x7861);
        self.node = (self.node + step) % self.nodes();
        let addr = self.arena.start() + self.node * NODE_BYTES;
        Some(Access::read_dep(addr, jitter_gap(&mut self.rng, 8)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, MIB};

    fn params(len: u64) -> TraceParams {
        TraceParams::new(Region::new(VirtAddr::new(0x5_0000_0000), len), 30_000, 2)
    }

    #[test]
    fn mcf_in_arena_with_dependent_chases() {
        let p = params(128 * MIB);
        let v: Vec<_> = McfTrace::new(&p).collect();
        assert_eq!(v.len(), 30_000);
        assert!(v.iter().all(|a| p.arena.contains(a.addr)));
        // Chases jump far: median jump distance is large.
        let mut jumps: Vec<u64> = v
            .windows(2)
            .map(|w| w[1].addr.raw().abs_diff(w[0].addr.raw()))
            .collect();
        jumps.sort_unstable();
        assert!(
            jumps[jumps.len() / 2] > 4096,
            "median jump {}",
            jumps[jumps.len() / 2]
        );
    }

    #[test]
    fn mcf_has_sequential_sweeps() {
        let p = params(128 * MIB);
        let v: Vec<_> = McfTrace::new(&p).collect();
        let seq = v
            .windows(2)
            .filter(|w| w[1].addr.raw().wrapping_sub(w[0].addr.raw()) == ARC_BYTES)
            .count();
        assert!(seq > 1000, "sequential steps {seq}");
    }

    #[test]
    fn omnetpp_concentrates_on_fes() {
        let p = params(128 * MIB);
        let fes_end = p.arena.start() + (p.arena.len() / 64).clamp(4096, 4 << 20);
        let v: Vec<_> = OmnetppTrace::new(&p).collect();
        let fes = v.iter().filter(|a| a.addr < fes_end).count();
        assert!(fes > v.len() / 4, "FES accesses {fes}/{}", v.len());
        assert!(v.iter().all(|a| p.arena.contains(a.addr)));
    }

    #[test]
    fn omnetpp_message_fields_are_local() {
        let p = params(128 * MIB);
        let v: Vec<_> = OmnetppTrace::new(&p).collect();
        // Consecutive pool reads within one message stay within 256B.
        let local = v
            .windows(2)
            .filter(|w| !w[0].write && !w[1].write)
            .filter(|w| w[0].addr.raw().abs_diff(w[1].addr.raw()) < MSG_BYTES)
            .count();
        assert!(local > 3000, "local field reads {local}");
    }

    #[test]
    fn xalancbmk_has_strong_reuse() {
        let p = params(64 * MIB);
        let v: Vec<_> = XalancbmkTrace::new(&p).collect();
        let distinct: std::collections::HashSet<u64> =
            v.iter().map(|a| a.addr.raw() / NODE_BYTES).collect();
        // Far fewer distinct nodes than accesses: temporal reuse.
        assert!(
            distinct.len() * 2 < v.len(),
            "{} distinct nodes",
            distinct.len()
        );
        assert!(v.iter().all(|a| p.arena.contains(a.addr)));
    }

    #[test]
    fn all_deterministic() {
        let p = params(32 * MIB);
        assert_eq!(
            McfTrace::new(&p).take(100).collect::<Vec<_>>(),
            McfTrace::new(&p).take(100).collect::<Vec<_>>()
        );
        assert_eq!(
            OmnetppTrace::new(&p).take(100).collect::<Vec<_>>(),
            OmnetppTrace::new(&p).take(100).collect::<Vec<_>>()
        );
        assert_eq!(
            XalancbmkTrace::new(&p).take(100).collect::<Vec<_>>(),
            XalancbmkTrace::new(&p).take(100).collect::<Vec<_>>()
        );
    }
}
