//! GAPBS-like graph kernels (PageRank, BFS, SSSP, BC) on three input
//! graphs with very different locality: `twitter` (power-law hubs),
//! `road` (planar, near-neighbour), `web` (community structure).
//!
//! The locality differences are what make, e.g., `bfs-road` lose its TLB
//! sensitivity on Broadwell (paper §VI-D) while the twitter kernels stay
//! TLB-bound everywhere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmcore::{Region, VirtAddr};

use crate::sampler::{jitter_gap, PowerLaw};
use crate::{Access, TraceParams};

/// The GAPBS kernels reproduced here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// PageRank: dense sequential destination sweeps + random source reads.
    Pr,
    /// Breadth-first search: frontier scans + random visited updates.
    Bfs,
    /// Single-source shortest paths: hot priority-queue + random relaxations.
    Sssp,
    /// Betweenness centrality: BFS plus a random back-propagation phase.
    Bc,
}

/// The input graphs of paper Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Twitter follower graph: extreme power-law degree distribution.
    Twitter,
    /// USA road network: planar, neighbours are index-local.
    Road,
    /// Web crawl: community-structured, moderate skew.
    Web,
}

impl GraphKind {
    /// Short name used in workload identifiers.
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Twitter => "twitter",
            GraphKind::Road => "road",
            GraphKind::Web => "web",
        }
    }
}

/// Streaming GAPBS kernel trace.
#[derive(Debug)]
pub struct GapbsTrace {
    rng: StdRng,
    kernel: Kernel,
    graph: GraphKind,
    /// Vertex-property array (ranks / distances / visited flags).
    props: Region,
    /// CSR edge array, scanned sequentially.
    edges: Region,
    /// Small hot region (priority queue / frontier head) for SSSP/BC.
    queue: Region,
    law: PowerLaw,
    remaining: u64,
    cursor: u64,
    phase: u32,
    /// Road graphs walk locally: current locus in the property array.
    locus: u64,
}

impl GapbsTrace {
    /// Creates the trace.
    pub fn new(kernel: Kernel, graph: GraphKind, params: &TraceParams) -> Self {
        let arena = params.arena;
        // Layout: [queue 1/32][edges 5/8][props rest]; hot props at top.
        let queue_len = (arena.len() / 32).max(4096);
        let edges_len = arena.len() * 5 / 8;
        let queue = Region::new(arena.start(), queue_len);
        let edges = Region::new(queue.end(), edges_len);
        let props = Region::from_bounds(edges.end(), arena.end());
        let vertices = (props.len() / 8).max(2);
        let theta = match graph {
            GraphKind::Twitter => 3.5,
            GraphKind::Road => 1.0, // unused; road walks locally
            GraphKind::Web => 2.2,
        };
        GapbsTrace {
            rng: StdRng::seed_from_u64(params.seed ^ 0x67_6170_6273),
            kernel,
            graph,
            props,
            edges,
            queue,
            law: PowerLaw::new(vertices, theta),
            remaining: params.accesses,
            cursor: 0,
            phase: 0,
            locus: vertices / 2,
        }
    }

    fn vertex_addr(&mut self) -> VirtAddr {
        let vertices = self.law.n();
        let idx = match self.graph {
            GraphKind::Road => {
                // Planar graph: neighbours are within a few thousand
                // indices; the locus drifts slowly.
                let delta = self.rng.gen_range(-2048i64..=2048);
                self.locus = self.locus.saturating_add_signed(delta).min(vertices - 1);
                self.locus
            }
            GraphKind::Twitter => {
                // Hubs at the top of the array (hot region at heap top).
                let idx = self.law.sample(&mut self.rng);
                vertices - 1 - idx
            }
            GraphKind::Web => {
                // Community structure: pick a community head by power law,
                // then a member near it.
                let head = self.law.sample(&mut self.rng);
                let member = head + self.rng.gen_range(0..512);
                vertices - 1 - member.min(vertices - 1)
            }
        };
        self.props.start() + idx * 8
    }

    fn edge_scan_addr(&mut self) -> VirtAddr {
        let words = self.edges.len() / 8;
        let addr = self.edges.start() + (self.cursor % words) * 8;
        self.cursor += 1;
        addr
    }

    fn queue_addr(&mut self) -> VirtAddr {
        // Binary-heap style: strongly biased toward the queue head.
        let slots = self.queue.len() / 8;
        let hot = PowerLaw::new(slots, 4.0).sample(&mut self.rng);
        self.queue.start() + hot * 8
    }
}

impl Iterator for GapbsTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.phase = (self.phase + 1) % 12;
        let p = self.phase;
        let access = match self.kernel {
            Kernel::Pr => {
                // 4 edge scans : 7 random source reads : 1 sequential dst write.
                if p < 4 {
                    Access::read(self.edge_scan_addr(), jitter_gap(&mut self.rng, 3))
                } else if p < 11 {
                    let a = self.vertex_addr();
                    Access::read(a, jitter_gap(&mut self.rng, 5))
                } else {
                    let words = self.props.len() / 8;
                    let a = self.props.start() + (self.cursor % words) * 8;
                    Access::write(a, jitter_gap(&mut self.rng, 4))
                }
            }
            Kernel::Bfs => {
                // 6 frontier/edge scans : 6 random visited checks.
                if p < 6 {
                    Access::read(self.edge_scan_addr(), jitter_gap(&mut self.rng, 3))
                } else {
                    let a = self.vertex_addr();
                    Access::write(a, jitter_gap(&mut self.rng, 6))
                }
            }
            Kernel::Sssp => {
                // 4 queue ops : 3 edge scans : 5 random relaxations.
                if p < 4 {
                    let mut a = Access::write(self.queue_addr(), jitter_gap(&mut self.rng, 8));
                    a.dep = true;
                    a
                } else if p < 7 {
                    Access::read(self.edge_scan_addr(), jitter_gap(&mut self.rng, 4))
                } else {
                    let a = self.vertex_addr();
                    Access::write(a, jitter_gap(&mut self.rng, 7))
                }
            }
            Kernel::Bc => {
                // BFS-like forward phase + random dependency accumulation.
                if p < 4 {
                    Access::read(self.edge_scan_addr(), jitter_gap(&mut self.rng, 3))
                } else if p < 9 {
                    let a = self.vertex_addr();
                    Access::read(a, jitter_gap(&mut self.rng, 5))
                } else {
                    let a = self.vertex_addr();
                    Access::write(a, jitter_gap(&mut self.rng, 9))
                }
            }
        };
        Some(access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::MIB;

    fn params() -> TraceParams {
        TraceParams::new(
            Region::new(VirtAddr::new(0x4_0000_0000), 192 * MIB),
            40_000,
            11,
        )
    }

    #[test]
    fn all_kernels_stay_in_arena() {
        let p = params();
        for kernel in [Kernel::Pr, Kernel::Bfs, Kernel::Sssp, Kernel::Bc] {
            for graph in [GraphKind::Twitter, GraphKind::Road, GraphKind::Web] {
                let v: Vec<_> = GapbsTrace::new(kernel, graph, &p).collect();
                assert_eq!(v.len(), 40_000);
                assert!(
                    v.iter().all(|a| p.arena.contains(a.addr)),
                    "{kernel:?}/{graph:?} escaped arena"
                );
            }
        }
    }

    #[test]
    fn road_graph_has_far_better_locality_than_twitter() {
        let p = params();
        let distinct_pages = |graph| {
            GapbsTrace::new(Kernel::Bfs, graph, &p)
                .map(|a| a.addr.raw() >> 12)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let road = distinct_pages(GraphKind::Road);
        let twitter = distinct_pages(GraphKind::Twitter);
        assert!(
            road * 2 < twitter,
            "road should touch far fewer pages: road={road} twitter={twitter}"
        );
    }

    #[test]
    fn twitter_hot_region_at_top() {
        let p = params();
        let props_start = p.arena.start() + (p.arena.len() / 32).max(4096) + p.arena.len() * 5 / 8;
        let hot_cut = p.arena.start() + (p.arena.len() - p.arena.len() / 16);
        let vertex_accesses: Vec<_> = GapbsTrace::new(Kernel::Pr, GraphKind::Twitter, &p)
            .filter(|a| a.addr >= props_start)
            .collect();
        let hot = vertex_accesses.iter().filter(|a| a.addr >= hot_cut).count();
        assert!(
            hot * 2 > vertex_accesses.len(),
            "hubs should dominate: {hot}/{}",
            vertex_accesses.len()
        );
    }

    #[test]
    fn sssp_touches_queue_region() {
        let p = params();
        let queue_end = p.arena.start() + (p.arena.len() / 32).max(4096);
        let in_queue = GapbsTrace::new(Kernel::Sssp, GraphKind::Twitter, &p)
            .filter(|a| a.addr < queue_end)
            .count();
        assert!(in_queue > 8_000, "queue ops: {in_queue}");
    }

    #[test]
    fn graph_names() {
        assert_eq!(GraphKind::Twitter.name(), "twitter");
        assert_eq!(GraphKind::Road.name(), "road");
        assert_eq!(GraphKind::Web.name(), "web");
    }
}
