//! The workload registry: all 19 TLB-sensitive benchmarks of paper
//! Table 5, with their nominal footprints and trace constructors.

use vmcore::GIB;

use crate::gapbs::{GapbsTrace, GraphKind, Kernel};
use crate::graph500::Graph500Trace;
use crate::gups::GupsTrace;
use crate::spec::{McfTrace, OmnetppTrace, XalancbmkTrace};
use crate::xsbench::XsBenchTrace;
use crate::{Access, TraceParams};

/// Benchmark suite, for grouping in reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006.
    Spec06,
    /// SPEC CPU2017.
    Spec17,
    /// Graph500 reference BFS.
    Graph500,
    /// HPCC RandomAccess.
    Gups,
    /// XSBench Monte Carlo kernel.
    XsBench,
    /// GAP benchmark suite.
    Gapbs,
}

/// What kind of generator backs a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Generator {
    Gups,
    XsBench,
    Graph500,
    Gapbs(Kernel, GraphKind),
    Mcf,
    Omnetpp,
    Xalancbmk,
}

/// One registered workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Identifier as printed in the paper's figures, e.g. `"gups/16GB"`.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// The footprint the real benchmark uses (bytes). Experiments may
    /// scale this down uniformly; TLB pressure survives scaling because
    /// working sets stay far above TLB reach.
    pub nominal_footprint: u64,
    /// Relative trace length (1.0 = the standard access budget).
    pub access_factor: f64,
    generator: Generator,
}

impl WorkloadSpec {
    /// Builds the streaming trace for this workload.
    pub fn trace(&self, params: &TraceParams) -> Box<dyn Iterator<Item = Access>> {
        match self.generator {
            Generator::Gups => Box::new(GupsTrace::new(params)),
            Generator::XsBench => Box::new(XsBenchTrace::new(params)),
            Generator::Graph500 => Box::new(Graph500Trace::new(params)),
            Generator::Gapbs(kernel, graph) => Box::new(GapbsTrace::new(kernel, graph, params)),
            Generator::Mcf => Box::new(McfTrace::new(params)),
            Generator::Omnetpp => Box::new(OmnetppTrace::new(params)),
            Generator::Xalancbmk => Box::new(XalancbmkTrace::new(params)),
        }
    }

    /// Looks up a workload by its name.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        registry().into_iter().find(|w| w.name == name)
    }
}

/// All 19 workloads of paper Table 5 / Figure 5.
pub fn registry() -> Vec<WorkloadSpec> {
    use Generator as G;
    use Suite as S;
    let spec = |name, suite, footprint, access_factor, generator| WorkloadSpec {
        name,
        suite,
        nominal_footprint: footprint,
        access_factor,
        generator,
    };
    vec![
        spec("gups/8GB", S::Gups, 8 * GIB, 1.0, G::Gups),
        spec("gups/16GB", S::Gups, 16 * GIB, 1.0, G::Gups),
        spec("gups/32GB", S::Gups, 32 * GIB, 1.0, G::Gups),
        spec("graph500/2GB", S::Graph500, 2 * GIB, 1.2, G::Graph500),
        spec("graph500/4GB", S::Graph500, 4 * GIB, 1.2, G::Graph500),
        spec("graph500/8GB", S::Graph500, 8 * GIB, 1.2, G::Graph500),
        spec("spec06/mcf", S::Spec06, 1700 * (GIB / 1024), 1.0, G::Mcf),
        spec(
            "spec06/omnetpp",
            S::Spec06,
            160 * (GIB / 1024),
            1.0,
            G::Omnetpp,
        ),
        spec(
            "spec17/omnetpp_s",
            S::Spec17,
            250 * (GIB / 1024),
            1.0,
            G::Omnetpp,
        ),
        spec(
            "spec17/xalancbmk_s",
            S::Spec17,
            475 * (GIB / 1024),
            1.0,
            G::Xalancbmk,
        ),
        spec("xsbench/4GB", S::XsBench, 4 * GIB, 1.0, G::XsBench),
        spec("xsbench/8GB", S::XsBench, 8 * GIB, 1.0, G::XsBench),
        spec("xsbench/16GB", S::XsBench, 16 * GIB, 1.0, G::XsBench),
        spec(
            "gapbs/bc-twitter",
            S::Gapbs,
            12 * GIB,
            1.0,
            G::Gapbs(Kernel::Bc, GraphKind::Twitter),
        ),
        spec(
            "gapbs/bfs-road",
            S::Gapbs,
            15 * GIB / 10,
            1.0,
            G::Gapbs(Kernel::Bfs, GraphKind::Road),
        ),
        spec(
            "gapbs/bfs-twitter",
            S::Gapbs,
            12 * GIB,
            1.0,
            G::Gapbs(Kernel::Bfs, GraphKind::Twitter),
        ),
        spec(
            "gapbs/pr-twitter",
            S::Gapbs,
            12 * GIB,
            1.0,
            G::Gapbs(Kernel::Pr, GraphKind::Twitter),
        ),
        spec(
            "gapbs/sssp-twitter",
            S::Gapbs,
            14 * GIB,
            1.0,
            G::Gapbs(Kernel::Sssp, GraphKind::Twitter),
        ),
        spec(
            "gapbs/sssp-web",
            S::Gapbs,
            8 * GIB,
            1.0,
            G::Gapbs(Kernel::Sssp, GraphKind::Web),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{Region, VirtAddr, MIB};

    #[test]
    fn registry_has_all_19_paper_workloads() {
        let names: Vec<&str> = registry().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 19);
        for expected in [
            "gups/8GB",
            "gups/16GB",
            "gups/32GB",
            "graph500/2GB",
            "graph500/4GB",
            "graph500/8GB",
            "spec06/mcf",
            "spec06/omnetpp",
            "spec17/omnetpp_s",
            "spec17/xalancbmk_s",
            "xsbench/4GB",
            "xsbench/8GB",
            "xsbench/16GB",
            "gapbs/bc-twitter",
            "gapbs/bfs-road",
            "gapbs/bfs-twitter",
            "gapbs/pr-twitter",
            "gapbs/sssp-twitter",
            "gapbs/sssp-web",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = registry().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn every_workload_produces_a_valid_trace() {
        let arena = Region::new(VirtAddr::new(0x10_0000_0000), 64 * MIB);
        let params = TraceParams::new(arena, 2000, 1);
        for w in registry() {
            let v: Vec<Access> = w.trace(&params).collect();
            assert_eq!(v.len(), 2000, "{}", w.name);
            assert!(
                v.iter().all(|a| arena.contains(a.addr)),
                "{} escaped",
                w.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(WorkloadSpec::by_name("spec06/mcf").is_some());
        assert!(WorkloadSpec::by_name("spec06/bzip2").is_none());
    }

    #[test]
    fn footprints_match_paper_scale() {
        let fp = |n| WorkloadSpec::by_name(n).unwrap().nominal_footprint;
        assert_eq!(fp("gups/32GB"), 32 * GIB);
        assert!(fp("spec17/xalancbmk_s") < GIB, "xalancbmk is 475MB");
        assert!(fp("gapbs/bfs-road") < 2 * GIB);
    }
}
