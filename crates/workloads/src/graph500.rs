//! Graph500-like BFS over an implicit RMAT graph.
//!
//! Graph500 builds a compressed Kronecker (RMAT) graph and runs BFS from
//! random roots. Its memory behaviour alternates between sequential
//! frontier scans and heavily skewed random vertex lookups — hub vertices
//! are touched constantly. The paper observes that for graph500, 80% of
//! TLB misses originate from the heap's highest 80MB (§VI-B); the trace
//! reproduces this by placing the hot (hub) end of the vertex array at the
//! **top** of the arena.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vmcore::Region;

use crate::sampler::{jitter_gap, PowerLaw};
use crate::{Access, TraceParams};

/// Ratio of sequential (edge-scan) accesses to random (vertex-lookup)
/// accesses in one BFS step.
const SCAN_RUN: u32 = 6;

/// Streaming graph500 BFS trace.
#[derive(Debug)]
pub struct Graph500Trace {
    rng: StdRng,
    /// Edge array: lower ~3/4 of the arena, scanned sequentially.
    edges: Region,
    /// Vertex array: top ~1/4 of the arena, sampled with power-law skew
    /// toward the highest addresses (hub vertices).
    vertices: Region,
    law: PowerLaw,
    remaining: u64,
    cursor: u64,
    run: u32,
}

impl Graph500Trace {
    /// Creates the trace.
    pub fn new(params: &TraceParams) -> Self {
        let arena = params.arena;
        let vertex_len = arena.len() / 4;
        let edges = Region::new(arena.start(), arena.len() - vertex_len);
        let vertices = Region::new(arena.start() + edges.len(), vertex_len);
        let vertex_count = (vertices.len() / 8).max(1);
        Graph500Trace {
            rng: StdRng::seed_from_u64(params.seed ^ 0x67_7235_3030),
            edges,
            vertices,
            law: PowerLaw::new(vertex_count, 3.0),
            remaining: params.accesses,
            cursor: 0,
            run: 0,
        }
    }
}

impl Iterator for Graph500Trace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        if self.run < SCAN_RUN {
            // Sequential edge scan (the CSR adjacency walk).
            self.run += 1;
            let addr = self.edges.start() + (self.cursor % (self.edges.len() / 8)) * 8;
            self.cursor += 1;
            Some(Access::read(addr, jitter_gap(&mut self.rng, 3)))
        } else {
            // Random neighbour visit: power-law skewed; index 0 = hottest
            // hub, mapped to the TOP of the vertex array so the hot region
            // sits at the heap's highest addresses as in the paper.
            self.run = 0;
            let idx = self.law.sample(&mut self.rng);
            let top_idx = self.law.n() - 1 - idx;
            let addr = self.vertices.start() + top_idx * 8;
            Some(Access::write(addr, jitter_gap(&mut self.rng, 8)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, MIB};

    fn params() -> TraceParams {
        TraceParams::new(
            Region::new(VirtAddr::new(0x3_0000_0000), 128 * MIB),
            50_000,
            3,
        )
    }

    #[test]
    fn in_arena_and_counted() {
        let p = params();
        let v: Vec<_> = Graph500Trace::new(&p).collect();
        assert_eq!(v.len(), 50_000);
        assert!(v.iter().all(|a| p.arena.contains(a.addr)));
    }

    #[test]
    fn hot_region_at_top_of_heap() {
        // Random vertex accesses should concentrate in the arena's top
        // slice, mirroring the paper's graph500 observation.
        let p = params();
        let vertex_start = p.arena.start() + p.arena.len() * 3 / 4;
        let top_slice = p.arena.start() + (p.arena.len() - p.arena.len() / 16);
        let vertex_accesses: Vec<_> = Graph500Trace::new(&p)
            .filter(|a| a.addr >= vertex_start)
            .collect();
        let in_top = vertex_accesses
            .iter()
            .filter(|a| a.addr >= top_slice)
            .count();
        let frac = in_top as f64 / vertex_accesses.len() as f64;
        assert!(
            frac > 0.5,
            "only {:.0}% of vertex accesses in the top slice",
            frac * 100.0
        );
    }

    #[test]
    fn mixes_sequential_and_random() {
        let p = params();
        let v: Vec<_> = Graph500Trace::new(&p).take(700).collect();
        let seq = v.iter().filter(|a| !a.write).count();
        let rand = v.iter().filter(|a| a.write).count();
        assert!(
            seq > 4 * rand,
            "scan-to-visit ratio should be ~{SCAN_RUN}:1 ({seq}/{rand})"
        );
        assert!(rand > 50);
    }
}
