//! GUPS (Giga-Updates Per Second): uniform random read-modify-write over a
//! huge table — the most TLB-hostile pattern in the suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmcore::VirtAddr;

use crate::sampler::jitter_gap;
use crate::{Access, TraceParams};

/// Streaming GUPS trace: every access touches a uniformly random 8-byte
/// word of the table. With 4KB pages every access is its own page with
/// overwhelming probability, saturating the TLB miss rate.
#[derive(Debug)]
pub struct GupsTrace {
    rng: StdRng,
    base: VirtAddr,
    words: u64,
    remaining: u64,
    /// GUPS does almost nothing between updates.
    inst_gap: u32,
    pending_write: Option<VirtAddr>,
}

impl GupsTrace {
    /// Creates the trace.
    pub fn new(params: &TraceParams) -> Self {
        GupsTrace {
            rng: StdRng::seed_from_u64(params.seed ^ 0x6775_7073),
            base: params.arena.start(),
            words: (params.arena.len() / 8).max(1),
            remaining: params.accesses,
            inst_gap: 4,
            pending_write: None,
        }
    }
}

impl Iterator for GupsTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Read-modify-write: the write to the same word follows its read.
        if let Some(addr) = self.pending_write.take() {
            return Some(Access::write(addr, 1));
        }
        let idx = self.rng.gen_range(0..self.words);
        let addr = self.base + idx * 8;
        self.pending_write = Some(addr);
        Some(Access::read(addr, jitter_gap(&mut self.rng, self.inst_gap)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{Region, MIB};

    fn params() -> TraceParams {
        TraceParams::new(
            Region::new(VirtAddr::new(0x1_0000_0000), 64 * MIB),
            10_000,
            9,
        )
    }

    #[test]
    fn stays_in_arena_and_counts() {
        let p = params();
        let v: Vec<_> = GupsTrace::new(&p).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().all(|a| p.arena.contains(a.addr)));
    }

    #[test]
    fn rmw_pairs_read_then_write_same_word() {
        let p = params();
        let v: Vec<_> = GupsTrace::new(&p).collect();
        for pair in v.chunks(2) {
            assert!(!pair[0].write);
            if pair.len() == 2 {
                assert!(pair[1].write);
                assert_eq!(pair[0].addr, pair[1].addr);
            }
        }
    }

    #[test]
    fn page_working_set_is_huge() {
        // Uniform randomness: 10k accesses over 64MB should touch
        // thousands of distinct 4KB pages.
        let p = params();
        let pages: std::collections::HashSet<u64> =
            GupsTrace::new(&p).map(|a| a.addr.raw() >> 12).collect();
        assert!(pages.len() > 3000, "only {} distinct pages", pages.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params();
        let a: Vec<_> = GupsTrace::new(&p).collect();
        let b: Vec<_> = GupsTrace::new(&p).collect();
        assert_eq!(a, b);
        let mut p2 = p;
        p2.seed = 10;
        let c: Vec<_> = GupsTrace::new(&p2).collect();
        assert_ne!(a, c);
    }
}
