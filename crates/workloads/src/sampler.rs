//! Index samplers shared by the trace generators.

use rand::Rng;

/// A cheap power-law (Zipf-like) sampler over `0..n`.
///
/// Drawing `u ~ U(0,1)` and returning `floor(n * u^theta)` concentrates
/// mass near index 0: a fraction `f^(1/theta)` of draws lands in the first
/// `f` of the range (with `theta = 3`, ~46% of draws hit the first 10%).
/// Graph workloads use this to model hub vertices,
/// which is also what produces the paper's observation that TLB misses
/// concentrate in a small "hot region" of the heap (§VI-B).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use workloads::PowerLaw;
///
/// let law = PowerLaw::new(1000, 3.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let hits_head = (0..1000).filter(|_| law.sample(&mut rng) < 100).count();
/// // ~46% expected in the first 10% of the range; uniform would give ~10%.
/// assert!(hits_head > 300, "power law concentrates near zero: {hits_head}");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PowerLaw {
    n: u64,
    theta: f64,
}

impl PowerLaw {
    /// Creates a sampler over `0..n` with skew exponent `theta >= 1`
    /// (`theta = 1` is uniform; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 1.0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty range");
        assert!(theta >= 1.0, "theta must be >= 1");
        PowerLaw { n, theta }
    }

    /// The range size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one index in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen::<f64>();
        let idx = (self.n as f64 * u.powf(self.theta)) as u64;
        idx.min(self.n - 1)
    }
}

/// Bounded jitter around a base instruction gap, giving traces a natural
/// variance without changing the mean much.
pub(crate) fn jitter_gap<R: Rng>(rng: &mut R, base: u32) -> u32 {
    if base == 0 {
        return 0;
    }
    let spread = (base / 2).max(1);
    base - spread / 2 + rng.gen_range(0..=spread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_stays_in_range() {
        let law = PowerLaw::new(100, 2.5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(law.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn theta_one_is_roughly_uniform() {
        let law = PowerLaw::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[law.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8000..12000).contains(&c),
                "bucket count {c} not near uniform"
            );
        }
    }

    #[test]
    fn larger_theta_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let head = |theta: f64, rng: &mut StdRng| {
            let law = PowerLaw::new(1000, theta);
            (0..20_000).filter(|_| law.sample(rng) < 50).count()
        };
        let h2 = head(2.0, &mut rng);
        let h5 = head(5.0, &mut rng);
        assert!(h5 > h2, "theta=5 head {h5} should exceed theta=2 head {h2}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_range_panics() {
        PowerLaw::new(0, 2.0);
    }

    #[test]
    fn jitter_brackets_base() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let g = jitter_gap(&mut rng, 10);
            assert!((8..=15).contains(&g), "gap {g}");
        }
        assert_eq!(jitter_gap(&mut rng, 0), 0);
    }
}
