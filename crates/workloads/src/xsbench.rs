//! XSBench-like Monte Carlo neutron-transport kernel.
//!
//! The real XSBench performs, per "macroscopic cross-section lookup", one
//! binary search over a huge unionized energy grid followed by a burst of
//! reads into per-nuclide cross-section tables. The trace reproduces that
//! structure: a few dependent, shrinking-stride probes (the binary search)
//! and then a cluster of reads at related offsets across the nuclide
//! tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmcore::Region;

use crate::sampler::jitter_gap;
use crate::{Access, TraceParams};

/// Number of simulated nuclide tables sharing the arena.
const NUCLIDES: u64 = 64;
/// Reads into nuclide tables per lookup.
const BURST: u32 = 8;
/// Binary-search probes per lookup.
const SEARCH_PROBES: u32 = 6;

/// Streaming XSBench trace.
#[derive(Debug)]
pub struct XsBenchTrace {
    rng: StdRng,
    grid: Region,
    tables: Region,
    remaining: u64,
    /// Phase machine: 0..SEARCH_PROBES = binary search, then BURST reads.
    phase: u32,
    /// Current binary-search bounds (indexes into the grid).
    lo: u64,
    hi: u64,
    /// Energy index found by the search; selects table offsets.
    energy: u64,
}

impl XsBenchTrace {
    /// Creates the trace. The first third of the arena is the unionized
    /// energy grid; the rest holds the nuclide tables.
    pub fn new(params: &TraceParams) -> Self {
        let arena = params.arena;
        let grid_len = arena.len() / 3;
        let grid = Region::new(arena.start(), grid_len);
        let tables = Region::new(arena.start() + grid_len, arena.len() - grid_len);
        let grid_entries = (grid.len() / 16).max(2);
        XsBenchTrace {
            rng: StdRng::seed_from_u64(params.seed ^ 0x7873_6265),
            grid,
            tables,
            remaining: params.accesses,
            phase: 0,
            lo: 0,
            hi: grid_entries,
            energy: 0,
        }
    }

    fn grid_entries(&self) -> u64 {
        (self.grid.len() / 16).max(2)
    }

    fn begin_lookup(&mut self) {
        self.phase = 0;
        self.lo = 0;
        self.hi = self.grid_entries();
        self.energy = self.rng.gen_range(0..self.grid_entries());
    }
}

impl Iterator for XsBenchTrace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        if self.phase < SEARCH_PROBES && self.hi > self.lo + 1 {
            // Binary-search probe: dependent load at the midpoint.
            let mid = (self.lo + self.hi) / 2;
            if self.energy < mid {
                self.hi = mid;
            } else {
                self.lo = mid;
            }
            self.phase += 1;
            let addr = self.grid.start() + mid * 16;
            return Some(Access::read_dep(addr, jitter_gap(&mut self.rng, 6)));
        }

        // Burst phase: reads into nuclide tables at energy-correlated
        // offsets (each nuclide table is a slice of the tables region).
        let burst_pos = self.phase.saturating_sub(SEARCH_PROBES);
        if burst_pos + 1 >= BURST {
            let access = self.table_access();
            self.begin_lookup();
            return Some(access);
        }
        self.phase += 1;
        Some(self.table_access())
    }
}

impl XsBenchTrace {
    fn table_access(&mut self) -> Access {
        let nuclide = self.rng.gen_range(0..NUCLIDES);
        let table_len = self.tables.len() / NUCLIDES;
        let entries = (table_len / 24).max(1);
        // The row is correlated with the found energy: neighbouring
        // lookups touch neighbouring rows, giving mild spatial locality.
        let frac = self.energy as f64 / self.grid_entries() as f64;
        let base_row = (frac * entries as f64) as u64;
        let row = (base_row + self.rng.gen_range(0..4)).min(entries - 1);
        let addr = self.tables.start() + nuclide * table_len + row * 24;
        Access::read(addr, jitter_gap(&mut self.rng, 12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, MIB};

    fn params() -> TraceParams {
        TraceParams::new(
            Region::new(VirtAddr::new(0x2_0000_0000), 96 * MIB),
            20_000,
            5,
        )
    }

    #[test]
    fn in_arena_and_counted() {
        let p = params();
        let v: Vec<_> = XsBenchTrace::new(&p).collect();
        assert_eq!(v.len(), 20_000);
        assert!(v.iter().all(|a| p.arena.contains(a.addr)));
    }

    #[test]
    fn touches_both_grid_and_tables() {
        let p = params();
        let third = p.arena.len() / 3;
        let split = p.arena.start() + third;
        let (mut grid, mut tables) = (0u64, 0u64);
        for a in XsBenchTrace::new(&p) {
            if a.addr < split {
                grid += 1;
            } else {
                tables += 1;
            }
        }
        assert!(grid > 1000, "grid probes {grid}");
        assert!(tables > 1000, "table reads {tables}");
    }

    #[test]
    fn spreads_over_many_pages() {
        let p = params();
        let pages: std::collections::HashSet<u64> =
            XsBenchTrace::new(&p).map(|a| a.addr.raw() >> 12).collect();
        assert!(pages.len() > 1500, "{} pages", pages.len());
    }

    #[test]
    fn deterministic() {
        let p = params();
        let a: Vec<_> = XsBenchTrace::new(&p).take(500).collect();
        let b: Vec<_> = XsBenchTrace::new(&p).take(500).collect();
        assert_eq!(a, b);
    }
}
