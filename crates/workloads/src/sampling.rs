//! Trace sampling (paper §II-C).
//!
//! Full simulations of real workloads are too slow, so studies sample the
//! instruction stream. The common practice the paper critiques is
//! **blind sampling**: "fast-forward a few billions of instructions of
//! the workload and then simulate another few billions" — which "might
//! be nonrepresentative, because it ignores the time varying behavior of
//! real workloads" (SimPoint measured 80% average error for it).
//!
//! This module implements blind sampling and a simple **multi-window**
//! variant (periodic windows across the whole trace, a cheap phase-aware
//! improvement), so the claim can be measured against our workloads —
//! see the `ablation_sampling` bench.

use crate::Access;

/// Blind sampling: skip the first `skip` accesses, keep the next `take`.
///
/// # Example
///
/// ```
/// use workloads::{sampling, TraceParams, WorkloadSpec};
/// use vmcore::{Region, VirtAddr};
///
/// let spec = WorkloadSpec::by_name("gups/8GB").unwrap();
/// let arena = Region::new(VirtAddr::new(0), 64 << 20);
/// let full = spec.trace(&TraceParams::new(arena, 10_000, 1));
/// let sampled: Vec<_> = sampling::blind(full, 2_000, 1_000).collect();
/// assert_eq!(sampled.len(), 1_000);
/// ```
pub fn blind<T>(trace: T, skip: usize, take: usize) -> impl Iterator<Item = Access>
where
    T: IntoIterator<Item = Access>,
{
    trace.into_iter().skip(skip).take(take)
}

/// Periodic multi-window sampling: out of every `period` accesses, keep
/// the first `window`. Keeps the same sampled fraction as blind sampling
/// with `take = windows x window`, but spread across the whole
/// execution so phase changes are represented.
///
/// # Panics
///
/// Panics if `window == 0` or `window > period`.
pub fn windows<T>(trace: T, window: usize, period: usize) -> impl Iterator<Item = Access>
where
    T: IntoIterator<Item = Access>,
{
    assert!(window > 0, "empty window");
    assert!(window <= period, "window larger than its period");
    trace
        .into_iter()
        .enumerate()
        .filter(move |(i, _)| i % period < window)
        .map(|(_, a)| a)
}

/// Exactly how many accesses [`windows`] keeps out of a trace of length
/// `len`. The final partial period is **not** dropped: a trace whose
/// length is not a multiple of `period` still contributes
/// `min(len % period, window)` tail accesses, matching the
/// `i % period < window` filter above index for index. Extrapolation
/// scale factors must use this count — the naive
/// `(len / period) * window` silently forgets the tail term and skews
/// every scaled counter for off-by-one trace lengths.
///
/// # Panics
///
/// Panics if `window == 0` or `window > period` (same contract as
/// [`windows`]).
pub fn kept_count(len: u64, window: u64, period: u64) -> u64 {
    assert!(window > 0, "empty window");
    assert!(window <= period, "window larger than its period");
    let full_periods = len / period;
    let tail = (len % period).min(window);
    // Widened so `full_periods * window` cannot wrap even for
    // adversarial u64 inputs; the result is <= len, so the narrowing
    // back to u64 is exact.
    (u128::from(full_periods) * u128::from(window) + u128::from(tail)) as u64
}

/// Scales a sampled counter value up to full-trace scale by the exact
/// rational `total / kept`, computed entirely in integer arithmetic
/// (widen to u128, multiply, floor-divide). No f64 round-trip means no
/// drift: two runs that observe the same sampled counters extrapolate
/// to bit-identical full-scale counters.
///
/// # Panics
///
/// Panics if `kept == 0` or `kept > total`.
pub fn extrapolate(value: u64, kept: u64, total: u64) -> u64 {
    assert!(kept > 0, "cannot extrapolate from an empty sample");
    assert!(kept <= total, "sample larger than the full trace");
    // value * total fits in u128 (both are u64); the quotient is at
    // most value * (total / kept) <= u64::MAX only when the caller's
    // counters are sane, so saturate rather than wrap on the way back.
    let scaled = u128::from(value) * u128::from(total) / u128::from(kept);
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceParams, WorkloadSpec};
    use vmcore::{Region, VirtAddr};

    fn trace(n: u64) -> impl Iterator<Item = Access> {
        let spec = WorkloadSpec::by_name("spec06/mcf").unwrap();
        let arena = Region::new(VirtAddr::new(0x100_0000_0000), 64 << 20);
        spec.trace(&TraceParams::new(arena, n, 3))
    }

    #[test]
    fn blind_skips_and_takes() {
        let full: Vec<Access> = trace(1000).collect();
        let sampled: Vec<Access> = blind(trace(1000), 300, 200).collect();
        assert_eq!(sampled.len(), 200);
        assert_eq!(sampled[0], full[300]);
        assert_eq!(sampled[199], full[499]);
    }

    #[test]
    fn blind_truncates_at_trace_end() {
        let sampled: Vec<Access> = blind(trace(100), 90, 50).collect();
        assert_eq!(sampled.len(), 10);
    }

    #[test]
    fn windows_cover_all_phases() {
        let full: Vec<Access> = trace(1000).collect();
        let sampled: Vec<Access> = windows(trace(1000), 10, 100).collect();
        assert_eq!(sampled.len(), 100, "10%% of 1000");
        // First window matches the trace head; a later window matches the
        // corresponding region of the full trace.
        assert_eq!(&sampled[..10], &full[..10]);
        assert_eq!(&sampled[10..20], &full[100..110]);
    }

    #[test]
    fn same_fraction_different_coverage() {
        // Both keep 10% of the trace, but blind sees one region while
        // windows sees ten. The trace must span enough of mcf's block
        // relocations for the coverage gap to dominate sampling noise;
        // at 10k accesses the margin is within noise for some RNG
        // streams, at 40k it is robust across seeds.
        let blind_set: std::collections::HashSet<u64> = blind(trace(40_000), 0, 4_000)
            .map(|a| a.addr.raw())
            .collect();
        let window_set: std::collections::HashSet<u64> = windows(trace(40_000), 400, 4_000)
            .map(|a| a.addr.raw())
            .collect();
        // mcf relocates its working block over time: periodic windows see
        // more distinct addresses than one contiguous chunk.
        assert!(
            window_set.len() > blind_set.len(),
            "windows {} vs blind {}",
            window_set.len(),
            blind_set.len()
        );
    }

    #[test]
    #[should_panic(expected = "window larger")]
    fn oversized_window_rejected() {
        let _ = windows(trace(10), 20, 10).count();
    }

    /// A synthetic trace whose address *is* its index, so the kept-index
    /// set can be read straight off the sampled addresses.
    fn indexed(n: u64) -> Vec<Access> {
        (0..n).map(|i| Access::read(VirtAddr::new(i), 0)).collect()
    }

    fn kept_indices(len: u64, window: usize, period: usize) -> Vec<u64> {
        windows(indexed(len), window, period)
            .map(|a| a.addr.raw())
            .collect()
    }

    #[test]
    fn partial_tail_window_is_kept() {
        // window = 3, period = 5, around len = 2 periods = 10.
        //
        // len = 9 (k*period - 1): the second period is partial but its
        // window fits entirely, so nothing is lost.
        assert_eq!(kept_indices(9, 3, 5), vec![0, 1, 2, 5, 6, 7]);
        // len = 10 (exact multiple): two full windows.
        assert_eq!(kept_indices(10, 3, 5), vec![0, 1, 2, 5, 6, 7]);
        // len = 11 (k*period + 1): a third, partial window opens at
        // index 10 and contributes its single available access.
        assert_eq!(kept_indices(11, 3, 5), vec![0, 1, 2, 5, 6, 7, 10]);
        // Partial window *shorter than the full window*: len = 12 keeps
        // two of the third window's three slots.
        assert_eq!(kept_indices(12, 3, 5), vec![0, 1, 2, 5, 6, 7, 10, 11]);
    }

    #[test]
    fn kept_count_matches_windows_exactly() {
        for (window, period) in [(1u64, 1u64), (1, 7), (3, 5), (4, 4), (7, 10)] {
            for base in [0u64, 1, 2, 5] {
                let exact = base * period;
                let lens = [exact.checked_sub(1), Some(exact), Some(exact + 1)];
                for len in lens.into_iter().flatten() {
                    let counted = windows(indexed(len), window as usize, period as usize).count();
                    assert_eq!(
                        kept_count(len, window, period),
                        counted as u64,
                        "len={len} window={window} period={period}"
                    );
                }
            }
        }
    }

    #[test]
    fn extrapolate_is_exact_integer_scaling() {
        // 10% sample: scale by exactly 10, no f64 round-off.
        assert_eq!(extrapolate(123_456, 1_000, 10_000), 1_234_560);
        // Non-divisible ratio floors: 7 * 10 / 3 = 23.33.. -> 23.
        assert_eq!(extrapolate(7, 3, 10), 23);
        // Full sample is the identity.
        assert_eq!(extrapolate(42, 5, 5), 42);
        // Huge counters do not wrap: widen-then-divide stays exact.
        assert_eq!(extrapolate(u64::MAX / 2, 5_000, 10_000), u64::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn extrapolate_rejects_zero_kept() {
        let _ = extrapolate(1, 0, 10);
    }
}
