//! Trace sampling (paper §II-C).
//!
//! Full simulations of real workloads are too slow, so studies sample the
//! instruction stream. The common practice the paper critiques is
//! **blind sampling**: "fast-forward a few billions of instructions of
//! the workload and then simulate another few billions" — which "might
//! be nonrepresentative, because it ignores the time varying behavior of
//! real workloads" (SimPoint measured 80% average error for it).
//!
//! This module implements blind sampling and a simple **multi-window**
//! variant (periodic windows across the whole trace, a cheap phase-aware
//! improvement), so the claim can be measured against our workloads —
//! see the `ablation_sampling` bench.

use crate::Access;

/// Blind sampling: skip the first `skip` accesses, keep the next `take`.
///
/// # Example
///
/// ```
/// use workloads::{sampling, TraceParams, WorkloadSpec};
/// use vmcore::{Region, VirtAddr};
///
/// let spec = WorkloadSpec::by_name("gups/8GB").unwrap();
/// let arena = Region::new(VirtAddr::new(0), 64 << 20);
/// let full = spec.trace(&TraceParams::new(arena, 10_000, 1));
/// let sampled: Vec<_> = sampling::blind(full, 2_000, 1_000).collect();
/// assert_eq!(sampled.len(), 1_000);
/// ```
pub fn blind<T>(trace: T, skip: usize, take: usize) -> impl Iterator<Item = Access>
where
    T: IntoIterator<Item = Access>,
{
    trace.into_iter().skip(skip).take(take)
}

/// Periodic multi-window sampling: out of every `period` accesses, keep
/// the first `window`. Keeps the same sampled fraction as blind sampling
/// with `take = windows x window`, but spread across the whole
/// execution so phase changes are represented.
///
/// # Panics
///
/// Panics if `window == 0` or `window > period`.
pub fn windows<T>(trace: T, window: usize, period: usize) -> impl Iterator<Item = Access>
where
    T: IntoIterator<Item = Access>,
{
    assert!(window > 0, "empty window");
    assert!(window <= period, "window larger than its period");
    trace
        .into_iter()
        .enumerate()
        .filter(move |(i, _)| i % period < window)
        .map(|(_, a)| a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceParams, WorkloadSpec};
    use vmcore::{Region, VirtAddr};

    fn trace(n: u64) -> impl Iterator<Item = Access> {
        let spec = WorkloadSpec::by_name("spec06/mcf").unwrap();
        let arena = Region::new(VirtAddr::new(0x100_0000_0000), 64 << 20);
        spec.trace(&TraceParams::new(arena, n, 3))
    }

    #[test]
    fn blind_skips_and_takes() {
        let full: Vec<Access> = trace(1000).collect();
        let sampled: Vec<Access> = blind(trace(1000), 300, 200).collect();
        assert_eq!(sampled.len(), 200);
        assert_eq!(sampled[0], full[300]);
        assert_eq!(sampled[199], full[499]);
    }

    #[test]
    fn blind_truncates_at_trace_end() {
        let sampled: Vec<Access> = blind(trace(100), 90, 50).collect();
        assert_eq!(sampled.len(), 10);
    }

    #[test]
    fn windows_cover_all_phases() {
        let full: Vec<Access> = trace(1000).collect();
        let sampled: Vec<Access> = windows(trace(1000), 10, 100).collect();
        assert_eq!(sampled.len(), 100, "10%% of 1000");
        // First window matches the trace head; a later window matches the
        // corresponding region of the full trace.
        assert_eq!(&sampled[..10], &full[..10]);
        assert_eq!(&sampled[10..20], &full[100..110]);
    }

    #[test]
    fn same_fraction_different_coverage() {
        // Both keep 10% of the trace, but blind sees one region while
        // windows sees ten. The trace must span enough of mcf's block
        // relocations for the coverage gap to dominate sampling noise;
        // at 10k accesses the margin is within noise for some RNG
        // streams, at 40k it is robust across seeds.
        let blind_set: std::collections::HashSet<u64> = blind(trace(40_000), 0, 4_000)
            .map(|a| a.addr.raw())
            .collect();
        let window_set: std::collections::HashSet<u64> = windows(trace(40_000), 400, 4_000)
            .map(|a| a.addr.raw())
            .collect();
        // mcf relocates its working block over time: periodic windows see
        // more distinct addresses than one contiguous chunk.
        assert!(
            window_set.len() > blind_set.len(),
            "windows {} vs blind {}",
            window_set.len(),
            blind_set.len()
        );
    }

    #[test]
    #[should_panic(expected = "window larger")]
    fn oversized_window_rejected() {
        let _ = windows(trace(10), 20, 10).count();
    }
}
