//! Synthetic benchmark workloads mirroring the paper's Table 5.
//!
//! The paper measures real binaries (SPEC CPU2006/2017, GUPS, XSBench,
//! Graph500, GAPBS). Those binaries and their inputs are not available
//! here, so this crate generates *memory-access traces with the same
//! character*: footprints, locality structure, pointer-dependency, and the
//! distribution of TLB misses over the address space follow each
//! benchmark's published behaviour. Runtime models are per-workload curve
//! fits, so what the study needs from a workload is exactly this response
//! surface — not its arithmetic.
//!
//! Every generator is a deterministic, seeded, **streaming** iterator: a
//! multi-gigabyte footprint costs no memory to trace.
//!
//! # Example
//!
//! ```
//! use workloads::{registry, TraceParams};
//! use vmcore::{Region, VirtAddr};
//!
//! let spec = registry().into_iter().find(|s| s.name == "gups/8GB").unwrap();
//! let arena = Region::new(VirtAddr::new(0x1000_0000_0000), spec.nominal_footprint / 64);
//! let params = TraceParams { arena, accesses: 1000, seed: 42 };
//! let trace: Vec<_> = spec.trace(&params).collect();
//! assert_eq!(trace.len(), 1000);
//! assert!(trace.iter().all(|a| arena.contains(a.addr)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gapbs;
pub mod graph500;
pub mod gups;
mod registry;
mod sampler;
pub mod sampling;
pub mod spec;
mod trace;
pub mod xsbench;

pub use gapbs::{GapbsTrace, GraphKind, Kernel};
pub use graph500::Graph500Trace;
pub use gups::GupsTrace;
pub use registry::{registry, Suite, WorkloadSpec};
pub use sampler::PowerLaw;
pub use spec::{McfTrace, OmnetppTrace, XalancbmkTrace};
pub use trace::{Access, TraceParams};
pub use xsbench::XsBenchTrace;
