//! The memory-access trace abstraction.

use serde::{Deserialize, Serialize};
use vmcore::{Region, VirtAddr};

/// One memory reference of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Referenced virtual address.
    pub addr: VirtAddr,
    /// Whether the reference writes (affects nothing in the current
    /// timing model but is part of the trace format).
    pub write: bool,
    /// Non-memory instructions retired between the previous memory access
    /// and this one. The execution engine converts these into base cycles
    /// and into latency-hiding headroom.
    pub inst_gap: u32,
    /// Whether this access is *serially dependent* on the previous one
    /// (a pointer chase). Dependent loads cannot overlap with their
    /// neighbours, so the engine exposes their full miss latency instead
    /// of dividing it by the core's memory-level parallelism.
    pub dep: bool,
}

impl Access {
    /// A read access.
    pub fn read(addr: VirtAddr, inst_gap: u32) -> Self {
        Access {
            addr,
            write: false,
            inst_gap,
            dep: false,
        }
    }

    /// A write access.
    pub fn write(addr: VirtAddr, inst_gap: u32) -> Self {
        Access {
            addr,
            write: true,
            inst_gap,
            dep: false,
        }
    }

    /// A serially dependent read (pointer chase).
    pub fn read_dep(addr: VirtAddr, inst_gap: u32) -> Self {
        Access {
            addr,
            write: false,
            inst_gap,
            dep: true,
        }
    }
}

/// Parameters for generating a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceParams {
    /// The workload's arena (its heap allocation); every generated address
    /// falls inside it.
    pub arena: Region,
    /// Number of memory accesses to generate.
    pub accesses: u64,
    /// RNG seed; identical parameters yield identical traces.
    pub seed: u64,
}

impl TraceParams {
    /// Convenience constructor.
    pub fn new(arena: Region, accesses: u64, seed: u64) -> Self {
        TraceParams {
            arena,
            accesses,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let a = Access::read(VirtAddr::new(8), 3);
        assert!(!a.write);
        assert_eq!(a.inst_gap, 3);
        let w = Access::write(VirtAddr::new(8), 0);
        assert!(w.write);
        assert!(!w.dep);
        assert!(Access::read_dep(VirtAddr::new(8), 0).dep);
    }
}
