//! Property tests over the whole workload registry: containment,
//! determinism, length, and scale-invariance of the generators.

use proptest::prelude::*;
use vmcore::{Region, VirtAddr};
use workloads::{registry, TraceParams};

fn arena_strategy() -> impl Strategy<Value = Region> {
    // Arena bases are page-aligned; sizes from 8MB to 512MB.
    (0u64..(1 << 28), 23u32..30)
        .prop_map(|(base_page, len_log)| Region::new(VirtAddr::new(base_page << 12), 1 << len_log))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registered workload stays inside any arena it is given and
    /// produces exactly the requested number of accesses.
    #[test]
    fn all_workloads_contained_any_arena(arena in arena_strategy(), seed in 0u64..1000) {
        let params = TraceParams::new(arena, 800, seed);
        for spec in registry() {
            let mut count = 0u64;
            for access in spec.trace(&params) {
                prop_assert!(
                    arena.contains(access.addr),
                    "{} escaped arena {} with {:x}",
                    spec.name,
                    arena,
                    access.addr.raw()
                );
                count += 1;
            }
            prop_assert_eq!(count, 800, "{}", spec.name);
        }
    }

    /// Traces are pure functions of (arena, accesses, seed).
    #[test]
    fn traces_deterministic(arena in arena_strategy(), seed in 0u64..1000) {
        let params = TraceParams::new(arena, 300, seed);
        for spec in registry() {
            let a: Vec<_> = spec.trace(&params).collect();
            let b: Vec<_> = spec.trace(&params).collect();
            prop_assert_eq!(&a, &b, "{} not deterministic", spec.name);
        }
    }

    /// Different seeds produce different traces (no accidental seed
    /// swallowing) for the stochastic generators.
    #[test]
    fn seeds_matter(arena in arena_strategy(), seed in 0u64..1000) {
        let p1 = TraceParams::new(arena, 300, seed);
        let p2 = TraceParams::new(arena, 300, seed + 1);
        for spec in registry() {
            let a: Vec<_> = spec.trace(&p1).collect();
            let b: Vec<_> = spec.trace(&p2).collect();
            prop_assert_ne!(&a, &b, "{} ignores its seed", spec.name);
        }
    }

    /// Instruction gaps are bounded (the engine divides by issue width;
    /// a wild gap would be a generator bug).
    #[test]
    fn inst_gaps_bounded(arena in arena_strategy()) {
        let params = TraceParams::new(arena, 1000, 7);
        for spec in registry() {
            for access in spec.trace(&params) {
                prop_assert!(access.inst_gap <= 64, "{} gap {}", spec.name, access.inst_gap);
            }
        }
    }
}
