//! Property tests for trace sampling: `windows` is a genuine
//! subsequence selector, its kept count is exactly `kept_count`
//! (partial tail window included), and extrapolation is exact integer
//! rational scaling with no f64 drift.

use proptest::prelude::*;
use vmcore::VirtAddr;
use workloads::{sampling, Access};

/// A trace whose address encodes its index, so subsequence checks can
/// compare indices instead of chasing generator internals.
fn indexed(len: usize) -> Vec<Access> {
    (0..len as u64)
        .map(|i| Access::read(VirtAddr::new(i), (i % 7) as u32))
        .collect()
}

fn window_period() -> impl Strategy<Value = (usize, usize)> {
    // window in 1..=period, derived by modulo so the pair is always valid.
    (1usize..200, 0usize..200).prop_map(|(period, raw)| (raw % period + 1, period))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sampled trace is a subsequence of the input: every kept
    /// access appears in the original, in the original order.
    #[test]
    fn windows_is_a_subsequence(wp in window_period(), len in 0usize..2000) {
        let (window, period) = wp;
        let full = indexed(len);
        let sampled: Vec<Access> = sampling::windows(full.clone(), window, period).collect();
        let mut cursor = full.iter();
        for kept in &sampled {
            prop_assert!(
                cursor.any(|a| a == kept),
                "kept access {:?} is not a forward match in the input",
                kept.addr,
            );
        }
    }

    /// Output length never exceeds the input length, and equals the
    /// closed-form `kept_count` — including the partial final window
    /// when `len` is not a multiple of `period`.
    #[test]
    fn windows_length_matches_kept_count(wp in window_period(), len in 0usize..2000) {
        let (window, period) = wp;
        let n = sampling::windows(indexed(len), window, period).count();
        prop_assert!(n <= len);
        prop_assert_eq!(n as u64, sampling::kept_count(len as u64, window as u64, period as u64));
    }

    /// Extrapolation is the exact rational `value * total / kept`
    /// (floor): `q * kept <= value * total < (q + 1) * kept`, verified
    /// in u128 so the property itself cannot drift. An f64 pipeline
    /// fails this for large counters where `(v as f64 * scale) as u64`
    /// rounds.
    /// `value` is bounded so the exact quotient fits in u64 (beyond
    /// that `extrapolate` saturates by contract instead of wrapping).
    #[test]
    fn extrapolate_is_exact_rational(
        value in 0u64..1 << 40,
        kept in 1u64..100_000,
        extra in 0u64..100_000,
    ) {
        let total = kept + extra;
        let q = u128::from(sampling::extrapolate(value, kept, total));
        let lhs = u128::from(value) * u128::from(total);
        prop_assert!(q * u128::from(kept) <= lhs);
        prop_assert!(lhs < (q + 1) * u128::from(kept));
    }

    /// Scaling is monotone in the sampled value and the identity when
    /// the sample is the whole trace.
    #[test]
    fn extrapolate_monotone_and_identity(value in 0u64..1 << 40, kept in 1u64..10_000) {
        prop_assert_eq!(sampling::extrapolate(value, kept, kept), value);
        let up = sampling::extrapolate(value + 1, kept, kept * 2);
        let at = sampling::extrapolate(value, kept, kept * 2);
        prop_assert!(up >= at);
    }
}
