//! The preload runtime: real pool reservations + the shared Mosalloc
//! allocation logic.

use std::ffi::c_void;
use std::sync::{Mutex, OnceLock};

use mosalloc::config::{MosallocConfig, PoolSpec};
use mosalloc::FirstFit;
use vmcore::PageSize;

/// Raw-syscall shims that bypass the interposed symbols (calling our own
/// exported `mmap` from inside `mmap` would recurse).
pub struct RealMem;

impl RealMem {
    /// Raw `mmap` syscall.
    ///
    /// # Safety
    ///
    /// Same contract as `mmap(2)`.
    pub unsafe fn mmap(
        addr: *mut c_void,
        length: libc::size_t,
        prot: libc::c_int,
        flags: libc::c_int,
        fd: libc::c_int,
        offset: libc::off_t,
    ) -> *mut c_void {
        libc::syscall(libc::SYS_mmap, addr, length, prot, flags, fd, offset) as *mut c_void
    }

    /// Raw `munmap` syscall.
    ///
    /// # Safety
    ///
    /// Same contract as `munmap(2)`.
    pub unsafe fn munmap(addr: *mut c_void, length: libc::size_t) -> libc::c_int {
        libc::syscall(libc::SYS_munmap, addr, length) as libc::c_int
    }
}

/// One reserved pool: a real memory reservation plus first-fit state.
#[derive(Debug)]
pub struct ReservedPool {
    base: u64,
    len: u64,
    alloc: FirstFit,
    /// Hugepage windows that were actually granted by the kernel.
    granted_windows: usize,
    /// Hugepage windows that fell back to base pages.
    fallback_windows: usize,
}

impl ReservedPool {
    /// Reserves backing memory for `spec` and remaps its hugepage
    /// windows. `strict` turns hugepage failures into `None`.
    fn reserve(spec: &PoolSpec, strict: bool) -> Option<ReservedPool> {
        if spec.size == 0 {
            return None;
        }
        let len = spec.size;
        let base = unsafe {
            RealMem::mmap(
                std::ptr::null_mut(),
                len as usize,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if base == libc::MAP_FAILED {
            return None;
        }
        let base = base as u64;
        let mut granted = 0;
        let mut fallback = 0;
        for w in &spec.windows {
            let huge_flag = match w.size {
                PageSize::Huge2M => libc::MAP_HUGETLB | libc::MAP_HUGE_2MB,
                PageSize::Huge1G => libc::MAP_HUGETLB | libc::MAP_HUGE_1GB,
                PageSize::Base4K => continue,
            };
            let win_len = (w.end - w.start) as usize;
            let target = (base + w.start) as *mut c_void;
            let mapped = unsafe {
                RealMem::mmap(
                    target,
                    win_len,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED | huge_flag,
                    -1,
                    0,
                )
            };
            if mapped == libc::MAP_FAILED {
                if strict {
                    unsafe { RealMem::munmap(base as *mut c_void, len as usize) };
                    return None;
                }
                fallback += 1;
            } else {
                granted += 1;
            }
        }
        Some(ReservedPool {
            base,
            len,
            alloc: FirstFit::new(len),
            granted_windows: granted,
            fallback_windows: fallback,
        })
    }

    /// The reservation's base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The reservation's length.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the reservation is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hugepage windows granted vs fallen back.
    pub fn window_stats(&self) -> (usize, usize) {
        (self.granted_windows, self.fallback_windows)
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

/// The global preload state: heap + anonymous pools and the emulated
/// program break.
#[derive(Debug)]
pub struct PreloadRuntime {
    heap: ReservedPool,
    anon: ReservedPool,
    brk_offset: u64,
}

/// Page granularity of pool mmaps.
const PAGE: u64 = 4096;

impl PreloadRuntime {
    /// Builds the runtime from a configuration. Returns `None` if any
    /// reservation fails.
    pub fn from_config(config: &MosallocConfig, strict: bool) -> Option<PreloadRuntime> {
        config.validate().ok()?;
        let heap = ReservedPool::reserve(&config.brk, strict)?;
        let anon = ReservedPool::reserve(&config.anon, strict)?;
        Some(PreloadRuntime {
            heap,
            anon,
            brk_offset: 0,
        })
    }

    /// Builds the runtime from the process environment.
    pub fn from_env() -> Option<PreloadRuntime> {
        let config = MosallocConfig::from_env().ok()?;
        let strict = std::env::var("MOSALLOC_STRICT").is_ok_and(|v| v == "1");
        Self::from_config(&config, strict)
    }

    /// The heap pool reservation.
    pub fn heap(&self) -> &ReservedPool {
        &self.heap
    }

    /// The anonymous pool reservation.
    pub fn anon(&self) -> &ReservedPool {
        &self.anon
    }

    /// Serves an anonymous `mmap`; `None` when the pool is exhausted
    /// (caller falls back to the kernel).
    pub fn pool_mmap_anon(&mut self, len: u64) -> Option<u64> {
        let len = len.div_ceil(PAGE) * PAGE;
        let offset = self.anon.alloc.alloc(len, PAGE)?;
        Some(self.anon.base + offset)
    }

    /// Releases a pool mapping. Returns `None` when the range is not pool
    /// memory (caller forwards to the kernel), `Some(false)` for an
    /// invalid pool free.
    pub fn pool_munmap(&mut self, addr: u64, len: u64) -> Option<bool> {
        if !self.anon.contains(addr) {
            if self.heap.contains(addr) {
                // Unmapping heap-pool memory is ignored (glibc never
                // munmaps brk memory; tolerate and report success).
                return Some(true);
            }
            return None;
        }
        let len = len.div_ceil(PAGE) * PAGE;
        let offset = addr - self.anon.base;
        Some(self.anon.alloc.free(offset, len).is_ok())
    }

    /// Emulated `sbrk`: moves the break inside the heap pool, returning
    /// the previous break.
    #[allow(clippy::result_unit_err)]
    pub fn sbrk(&mut self, increment: i64) -> Result<u64, ()> {
        let old = self.heap.base + self.brk_offset;
        if increment >= 0 {
            let inc = increment as u64;
            if self.brk_offset + inc > self.heap.len {
                return Err(());
            }
            self.brk_offset += inc;
        } else {
            let dec = increment.unsigned_abs();
            if dec > self.brk_offset {
                return Err(());
            }
            self.brk_offset -= dec;
        }
        Ok(old)
    }

    /// Emulated `brk`.
    #[allow(clippy::result_unit_err)]
    pub fn brk(&mut self, addr: u64) -> Result<(), ()> {
        if addr < self.heap.base || addr > self.heap.base + self.heap.len {
            return Err(());
        }
        self.brk_offset = addr - self.heap.base;
        Ok(())
    }
}

static RUNTIME: OnceLock<Option<Mutex<PreloadRuntime>>> = OnceLock::new();

/// Runs `f` against the global runtime; `None` when initialization
/// failed (every interposed call then falls back to the kernel, so a
/// misconfigured preload degrades to a no-op instead of crashing the
/// host process).
pub fn with_runtime<T>(f: impl FnOnce(&mut PreloadRuntime) -> T) -> Option<T> {
    let cell = RUNTIME.get_or_init(|| PreloadRuntime::from_env().map(Mutex::new));
    let mutex = cell.as_ref()?;
    let mut guard = mutex.lock().ok()?;
    Some(f(&mut guard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosalloc::config::PoolSpec;

    fn small_config() -> MosallocConfig {
        MosallocConfig {
            brk: PoolSpec::plain(4 << 20),
            anon: PoolSpec::plain(4 << 20),
            file: PoolSpec::plain(1 << 20),
        }
    }

    #[test]
    fn reserve_and_touch_memory() {
        let rt = PreloadRuntime::from_config(&small_config(), false).unwrap();
        // The reservation must be real, writable memory.
        let p = rt.heap().base() as *mut u8;
        unsafe {
            p.write(0xAB);
            assert_eq!(p.read(), 0xAB);
        }
        assert_eq!(rt.heap().len(), 4 << 20);
    }

    #[test]
    fn anon_pool_mmap_roundtrip() {
        let mut rt = PreloadRuntime::from_config(&small_config(), false).unwrap();
        let a = rt.pool_mmap_anon(10_000).unwrap();
        assert_eq!(a % PAGE, 0);
        assert!(rt.anon().base() <= a && a < rt.anon().base() + rt.anon().len());
        // Memory is usable.
        unsafe {
            (a as *mut u64).write(42);
            assert_eq!((a as *mut u64).read(), 42);
        }
        // Rounded to 3 pages; exact free succeeds, double free fails.
        assert_eq!(rt.pool_munmap(a, 12_288), Some(true));
        assert_eq!(rt.pool_munmap(a, 12_288), Some(false));
        // Foreign address: kernel's problem.
        assert_eq!(rt.pool_munmap(0xdead_0000, 4096), None);
    }

    #[test]
    fn pool_exhaustion_falls_back() {
        let mut rt = PreloadRuntime::from_config(&small_config(), false).unwrap();
        assert!(
            rt.pool_mmap_anon(64 << 20).is_none(),
            "larger than the pool"
        );
    }

    #[test]
    fn sbrk_brk_semantics() {
        let mut rt = PreloadRuntime::from_config(&small_config(), false).unwrap();
        let base = rt.heap().base();
        assert_eq!(rt.sbrk(0).unwrap(), base, "sbrk(0) reports the pool base");
        assert_eq!(rt.sbrk(4096).unwrap(), base);
        assert_eq!(rt.sbrk(0).unwrap(), base + 4096);
        rt.brk(base + 8192).unwrap();
        assert_eq!(rt.sbrk(0).unwrap(), base + 8192);
        assert!(rt.sbrk(-(16384i64)).is_err(), "underflow rejected");
        assert!(rt.brk(base - 1).is_err());
        assert!(rt.sbrk((8 << 20) as i64).is_err(), "beyond the pool");
        // Heap writes work after sbrk.
        unsafe {
            (base as *mut u8).write(7);
            assert_eq!((base as *mut u8).read(), 7);
        }
    }

    #[test]
    fn hugepage_window_falls_back_gracefully() {
        // Containers rarely have hugetlb reservations: the window should
        // fall back to base pages in non-strict mode and the pool must
        // still work end to end.
        let config = MosallocConfig {
            brk: PoolSpec::plain(8 << 20).with_window(0, 2 << 20, PageSize::Huge2M),
            anon: PoolSpec::plain(4 << 20),
            file: PoolSpec::plain(1 << 20),
        };
        let mut rt = PreloadRuntime::from_config(&config, false)
            .expect("non-strict reservation always succeeds");
        let (granted, fallback) = rt.heap().window_stats();
        assert_eq!(granted + fallback, 1);
        let base = rt.sbrk(1 << 20).unwrap();
        unsafe {
            (base as *mut u8).write(1);
        }
    }

    #[test]
    fn heap_munmap_tolerated() {
        let mut rt = PreloadRuntime::from_config(&small_config(), false).unwrap();
        let base = rt.heap().base();
        assert_eq!(rt.pool_munmap(base, 4096), Some(true));
    }
}
