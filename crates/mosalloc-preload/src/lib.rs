//! `LD_PRELOAD` interposer backing process memory with Mosalloc pools.
//!
//! This is the real-world counterpart of the simulated allocator: a
//! `cdylib` that, loaded before glibc resolves its syscall wrappers,
//! interposes the POSIX memory-management entry points and serves them
//! from hugepage-backed pools (paper §V):
//!
//! * `mmap(MAP_ANONYMOUS)` → the anonymous pool (first fit),
//! * `munmap` of pool memory → pool release (top-trimmed),
//! * `brk` / `sbrk` → the heap pool (program-break emulation),
//! * everything else falls through to the raw syscalls.
//!
//! Pools are reserved up front with the real `mmap`; windows the user
//! configured as 2MB/1GB-backed are re-mapped with `MAP_HUGETLB` +
//! `MAP_HUGE_2MB`/`MAP_HUGE_1GB`. When the system lacks reserved
//! hugepages the window silently falls back to base pages unless
//! `MOSALLOC_STRICT=1` is set (matching how researchers run first on
//! unconfigured machines).
//!
//! Configuration comes from the same environment variables as the
//! simulator ([`mosalloc::config`]), e.g.:
//!
//! ```text
//! MOSALLOC_CONFIG='brk:size=1G,2MB=0..512M;anon:size=1G' \
//!     LD_PRELOAD=target/release/libmosalloc_preload.so ./app
//! ```
//!
//! A constructor also calls `mallopt(M_MMAP_MAX, 0)` and
//! `mallopt(M_ARENA_MAX, 1)` so glibc malloc cannot bypass the
//! interposed `brk` path (paper §V-C, including the libhugetlbfs arena
//! bug Mosalloc fixes).
//!
//! The allocation *logic* is the same [`mosalloc`] crate the simulator
//! uses; this crate only adds the syscall plumbing. The plumbing is
//! exercised in-process by the test suite (no actual `LD_PRELOAD` or
//! root hugepage reservation needed).

#![warn(missing_docs)]

pub mod runtime;

use std::ffi::c_void;

use runtime::{with_runtime, RealMem};

/// Interposed `mmap(2)`.
///
/// Anonymous, non-fixed mappings are served from the Mosalloc anonymous
/// pool; everything else (file mappings, `MAP_FIXED` requests, and pool
/// exhaustion) falls through to the kernel.
///
/// # Safety
///
/// Same contract as the libc function it replaces.
#[no_mangle]
pub unsafe extern "C" fn mmap(
    addr: *mut c_void,
    length: libc::size_t,
    prot: libc::c_int,
    flags: libc::c_int,
    fd: libc::c_int,
    offset: libc::off_t,
) -> *mut c_void {
    let anonymous = flags & libc::MAP_ANONYMOUS != 0;
    let fixed = flags & libc::MAP_FIXED != 0;
    if anonymous && !fixed && addr.is_null() && length > 0 {
        if let Some(Some(ptr)) = with_runtime(|rt| rt.pool_mmap_anon(length as u64)) {
            return ptr as *mut c_void;
        }
    }
    RealMem::mmap(addr, length, prot, flags, fd, offset)
}

/// Interposed `munmap(2)`.
///
/// Pool mappings are released back to their pool; foreign ranges go to
/// the kernel.
///
/// # Safety
///
/// Same contract as the libc function it replaces.
#[no_mangle]
pub unsafe extern "C" fn munmap(addr: *mut c_void, length: libc::size_t) -> libc::c_int {
    match with_runtime(|rt| rt.pool_munmap(addr as u64, length as u64)).flatten() {
        Some(true) => 0,
        Some(false) => {
            // Inside a pool but not a live mapping: POSIX says EINVAL.
            set_errno(libc::EINVAL);
            -1
        }
        None => RealMem::munmap(addr, length),
    }
}

/// Interposed `brk(2)` wrapper.
///
/// # Safety
///
/// Same contract as the libc function it replaces.
#[no_mangle]
pub unsafe extern "C" fn brk(addr: *mut c_void) -> libc::c_int {
    match with_runtime(|rt| rt.brk(addr as u64)) {
        Some(Ok(())) => 0,
        Some(Err(())) => {
            set_errno(libc::ENOMEM);
            -1
        }
        None => {
            set_errno(libc::ENOMEM);
            -1
        }
    }
}

/// Interposed `sbrk(3)`.
///
/// glibc calls `sbrk(0)` during startup to locate the heap; answering
/// with the pool base redirects all subsequent heap growth into the
/// hugepage-backed pool (paper §V "The Heap Pool").
///
/// # Safety
///
/// Same contract as the libc function it replaces.
#[no_mangle]
pub unsafe extern "C" fn sbrk(increment: libc::intptr_t) -> *mut c_void {
    match with_runtime(|rt| rt.sbrk(increment as i64)) {
        Some(Ok(old)) => old as *mut c_void,
        _ => {
            set_errno(libc::ENOMEM);
            usize::MAX as *mut c_void // (void*)-1
        }
    }
}

unsafe fn set_errno(value: libc::c_int) {
    *libc::__errno_location() = value;
}

/// Library constructor: configure glibc malloc so it cannot bypass the
/// interposed entry points (M_MMAP_MAX=0 disables direct mmap from
/// malloc; M_ARENA_MAX=1 prevents per-thread arenas allocated behind our
/// back — the libhugetlbfs bug the paper fixes).
extern "C" fn mosalloc_ctor() {
    unsafe {
        libc::mallopt(libc::M_MMAP_MAX, 0);
        libc::mallopt(libc::M_ARENA_MAX, 1);
    }
}

#[used]
#[link_section = ".init_array"]
static MOSALLOC_CTOR: extern "C" fn() = mosalloc_ctor;
