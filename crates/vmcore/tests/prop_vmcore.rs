//! Property tests for the core domain types.

use proptest::prelude::*;
use vmcore::{MemoryLayout, PageSize, Region, VirtAddr};

fn region_strategy() -> impl Strategy<Value = Region> {
    (0u64..(1 << 40), 0u64..(1 << 32))
        .prop_map(|(start, len)| Region::new(VirtAddr::new(start), len))
}

fn size_strategy() -> impl Strategy<Value = PageSize> {
    (0usize..3).prop_map(|i| PageSize::ALL[i])
}

proptest! {
    /// Intersection is commutative, contained in both operands, and
    /// agrees with `overlaps`.
    #[test]
    fn intersection_properties(a in region_strategy(), b in region_strategy()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.is_some(), a.overlaps(&b));
        if let Some(i) = ab {
            prop_assert!(a.contains_region(&i));
            prop_assert!(b.contains_region(&i));
            prop_assert!(!i.is_empty());
        }
    }

    /// Outward alignment contains the region; inward alignment is
    /// contained by it; both are aligned.
    #[test]
    fn alignment_sandwich(r in region_strategy(), size in size_strategy()) {
        let out = r.align_outward(size);
        prop_assert!(out.is_aligned(size));
        prop_assert!(out.contains_region(&r));
        // Outward alignment adds less than one page on each side.
        prop_assert!(out.len() < r.len() + 2 * size.bytes());
        let inw = r.align_inward(size);
        prop_assert!(r.contains_region(&inw));
        if !inw.is_empty() {
            prop_assert!(inw.is_aligned(size));
        }
    }

    /// `pages()` tiles exactly the outward-aligned region, in order,
    /// without gaps.
    #[test]
    fn pages_tile_the_region(start_page in 0u64..(1 << 20), len in 1u64..(1 << 24), size in size_strategy()) {
        let r = Region::new(VirtAddr::new(start_page << 12), len);
        let pages: Vec<VirtAddr> = r.pages(size).collect();
        prop_assert!(!pages.is_empty());
        prop_assert_eq!(pages[0], r.start().align_down(size));
        for w in pages.windows(2) {
            prop_assert_eq!(w[1] - w[0], size.bytes());
        }
        let last = *pages.last().unwrap();
        prop_assert!(last < r.end());
        prop_assert!(last + size.bytes() >= r.end().raw().into());
    }

    /// A layout's byte accounting always partitions the pool exactly,
    /// and the resolver agrees with the accounting.
    #[test]
    fn layout_accounting_partitions(
        pool_len_mb in 8u64..256,
        w1 in (0u64..64, 1u64..32),
        w2 in (64u64..128, 1u64..32),
    ) {
        let pool = Region::new(VirtAddr::new(0x100_0000_0000), pool_len_mb << 20);
        let mk = |(start_mb, len_mb): (u64, u64)| {
            Region::new(pool.start() + (start_mb << 21), len_mb << 21)
        };
        let builder = MemoryLayout::builder(pool);
        let Ok(builder) = builder.window(mk(w1), PageSize::Huge2M) else { return Ok(()) };
        let Ok(builder) = builder.window(mk(w2), PageSize::Huge2M) else { return Ok(()) };
        let Ok(layout) = builder.build() else { return Ok(()) };

        let total: u64 = PageSize::ALL.iter().map(|&s| layout.bytes_backed_by(s)).sum();
        prop_assert_eq!(total, pool.len());

        // Sample the resolver against the accounting: count 2MB-resolved
        // probes over an even grid and compare to the byte fraction.
        let probes = 256u64;
        let step = pool.len() / probes;
        let huge_probes = (0..probes)
            .filter(|i| {
                layout.page_size_at(pool.start() + i * step + step / 2) == PageSize::Huge2M
            })
            .count() as f64;
        let frac_resolved = huge_probes / probes as f64;
        let frac_accounted = layout.bytes_backed_by(PageSize::Huge2M) as f64 / pool.len() as f64;
        prop_assert!(
            (frac_resolved - frac_accounted).abs() < 0.1,
            "resolver {frac_resolved} vs accounting {frac_accounted}"
        );
    }

    /// Page-number/align identities hold for all addresses and sizes.
    #[test]
    fn address_identities(raw in 0u64..(1 << 47), size in size_strategy()) {
        let va = VirtAddr::new(raw);
        prop_assert_eq!(
            va.page_number(size) * size.bytes() + va.offset_in(size),
            raw
        );
        prop_assert_eq!(va.align_down(size).raw() % size.bytes(), 0);
        prop_assert!(va.align_down(size) <= va);
        prop_assert!(va.align_up(size) >= va);
        prop_assert!(va.align_up(size) - va.align_down(size) <= size.bytes());
    }
}
