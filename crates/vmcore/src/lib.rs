//! Shared domain types for the Mosaic virtual-memory study.
//!
//! This crate defines the vocabulary used throughout the workspace:
//!
//! * [`VirtAddr`] / [`PhysAddr`] — strongly typed addresses,
//! * [`PageSize`] — the three x86-64 translation sizes (4KB / 2MB / 1GB),
//! * [`Region`] — half-open virtual address ranges,
//! * [`MemoryLayout`] — a "mosaic": which parts of a pool are backed by
//!   which page size (the central input of the Mosalloc allocator),
//! * [`PmuCounters`] — the performance-monitoring-unit readout `(R, H, M, C)`
//!   plus cache load counters that the paper's runtime models consume.
//!
//! # Example
//!
//! ```
//! use vmcore::{MemoryLayout, PageSize, Region, VirtAddr};
//!
//! # fn main() -> Result<(), vmcore::LayoutError> {
//! // Back the first 4MB of a 1GB pool with 2MB pages, rest with 4KB pages.
//! let pool = Region::new(VirtAddr::new(0), 1 << 30);
//! let layout = MemoryLayout::builder(pool)
//!     .window(Region::new(VirtAddr::new(0), 4 << 20), PageSize::Huge2M)?
//!     .build()?;
//! assert_eq!(layout.page_size_at(VirtAddr::new(0x1000)), PageSize::Huge2M);
//! assert_eq!(layout.page_size_at(VirtAddr::new(5 << 20)), PageSize::Base4K);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod counters;
mod error;
mod layout;
mod region;

pub use addr::{PageSize, PhysAddr, VirtAddr};
pub use counters::PmuCounters;
pub use error::LayoutError;
pub use layout::{LayoutWindow, MemoryLayout, MemoryLayoutBuilder};
pub use region::Region;

/// Number of bytes in one kibibyte.
pub const KIB: u64 = 1 << 10;
/// Number of bytes in one mebibyte.
pub const MIB: u64 = 1 << 20;
/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1 << 30;
