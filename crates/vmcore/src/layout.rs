//! Memory layouts: the "mosaic" of page sizes backing a pool.
//!
//! A [`MemoryLayout`] assigns a page size to every byte of a pool region.
//! Hugepage-backed sub-ranges are expressed as [`LayoutWindow`]s; anything
//! not covered by a window is backed by 4KB pages, mirroring how Mosalloc's
//! users describe pool layouts through environment variables.

use serde::{Deserialize, Serialize};

use crate::{LayoutError, PageSize, Region, VirtAddr};

/// A contiguous range of a pool backed by a single (huge)page size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayoutWindow {
    /// Pool-relative region the window covers. Must be aligned to `size`.
    pub region: Region,
    /// The page size backing the window.
    pub size: PageSize,
}

/// A complete page-size assignment for a pool.
///
/// Invariants (enforced at construction):
///
/// * every window lies inside the pool,
/// * windows are aligned to their page size,
/// * windows are pairwise disjoint.
///
/// Windows are kept sorted by start address so [`MemoryLayout::page_size_at`]
/// is a binary search.
///
/// # Example
///
/// ```
/// use vmcore::{MemoryLayout, PageSize, Region, VirtAddr, GIB, MIB};
///
/// # fn main() -> Result<(), vmcore::LayoutError> {
/// let pool = Region::new(VirtAddr::new(0), 2 * GIB);
/// let layout = MemoryLayout::builder(pool)
///     .window(Region::new(VirtAddr::new(0), GIB), PageSize::Huge1G)?
///     .window(Region::new(VirtAddr::new(GIB), 512 * MIB), PageSize::Huge2M)?
///     .build()?;
/// assert_eq!(layout.bytes_backed_by(PageSize::Huge1G), GIB);
/// assert_eq!(layout.bytes_backed_by(PageSize::Base4K), 512 * MIB);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLayout {
    pool: Region,
    windows: Vec<LayoutWindow>,
}

impl MemoryLayout {
    /// Starts building a layout over `pool`.
    pub fn builder(pool: Region) -> MemoryLayoutBuilder {
        MemoryLayoutBuilder {
            pool,
            windows: Vec::new(),
        }
    }

    /// The all-4KB layout for `pool` (no hugepage windows).
    pub fn all_4k(pool: Region) -> Self {
        MemoryLayout {
            pool,
            windows: Vec::new(),
        }
    }

    /// A layout backing the whole pool with a single page size.
    ///
    /// The pool bounds are aligned outward to `size` first, so callers may
    /// pass unaligned pools; the simulated backing simply rounds out, the
    /// way a hugetlbfs reservation would.
    pub fn uniform(pool: Region, size: PageSize) -> Self {
        if size == PageSize::Base4K {
            return MemoryLayout::all_4k(pool);
        }
        let window = pool.align_outward(size);
        MemoryLayout {
            pool,
            windows: vec![LayoutWindow {
                region: window,
                size,
            }],
        }
    }

    /// The pool region this layout covers.
    pub fn pool(&self) -> Region {
        self.pool
    }

    /// The hugepage windows, sorted by start address.
    pub fn windows(&self) -> &[LayoutWindow] {
        &self.windows
    }

    /// The page size backing `addr`.
    ///
    /// Addresses outside the pool are reported as 4KB-backed: the rest of
    /// the address space (code, stacks, file mappings) uses base pages,
    /// exactly as in the paper's file-backed pool.
    pub fn page_size_at(&self, addr: VirtAddr) -> PageSize {
        let idx = self.windows.partition_point(|w| w.region.end() <= addr);
        match self.windows.get(idx) {
            Some(w) if w.region.contains(addr) => w.size,
            _ => PageSize::Base4K,
        }
    }

    /// Total bytes of the pool backed by `size` pages.
    ///
    /// Windows may extend past the pool after outward alignment; only the
    /// intersection with the pool is counted.
    pub fn bytes_backed_by(&self, size: PageSize) -> u64 {
        let huge: u64 = self
            .windows
            .iter()
            .filter(|w| w.size == size)
            .filter_map(|w| w.region.intersection(&self.pool))
            .map(|r| r.len())
            .sum();
        if size == PageSize::Base4K {
            let covered: u64 = self
                .windows
                .iter()
                .filter_map(|w| w.region.intersection(&self.pool))
                .map(|r| r.len())
                .sum();
            self.pool.len() - covered
        } else {
            huge
        }
    }

    /// A short description like `"2MB:[0x0,0x400000) (else 4KB)"` used in
    /// reports.
    pub fn describe(&self) -> String {
        if self.windows.is_empty() {
            return "all-4KB".to_string();
        }
        let parts: Vec<String> = self
            .windows
            .iter()
            .map(|w| format!("{}:{}", w.size, w.region))
            .collect();
        format!("{} (else 4KB)", parts.join(" "))
    }
}

/// Incrementally builds a [`MemoryLayout`], validating each window.
#[derive(Clone, Debug)]
pub struct MemoryLayoutBuilder {
    pool: Region,
    windows: Vec<LayoutWindow>,
}

impl MemoryLayoutBuilder {
    /// Adds a hugepage window.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::Misaligned`] if the window bounds are not
    /// aligned to `size`, or [`LayoutError::WindowOutsidePool`] if the
    /// window is not contained in the (outward-aligned) pool.
    pub fn window(mut self, region: Region, size: PageSize) -> Result<Self, LayoutError> {
        if !region.is_aligned(size) {
            return Err(LayoutError::Misaligned {
                window: region,
                required: size,
            });
        }
        let roomy_pool = self.pool.align_outward(size);
        if !roomy_pool.contains_region(&region) {
            return Err(LayoutError::WindowOutsidePool {
                window: region,
                pool: self.pool,
            });
        }
        self.windows.push(LayoutWindow { region, size });
        Ok(self)
    }

    /// Finishes the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::OverlappingWindows`] if any two windows
    /// overlap.
    pub fn build(mut self) -> Result<MemoryLayout, LayoutError> {
        self.windows.sort_by_key(|w| w.region.start());
        for pair in self.windows.windows(2) {
            if pair[0].region.overlaps(&pair[1].region) {
                return Err(LayoutError::OverlappingWindows(
                    pair[0].region,
                    pair[1].region,
                ));
            }
        }
        self.windows.retain(|w| !w.region.is_empty());
        Ok(MemoryLayout {
            pool: self.pool,
            windows: self.windows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GIB, MIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0), 2 * GIB)
    }

    #[test]
    fn all_4k_has_no_windows() {
        let l = MemoryLayout::all_4k(pool());
        assert_eq!(l.page_size_at(VirtAddr::new(123)), PageSize::Base4K);
        assert_eq!(l.bytes_backed_by(PageSize::Base4K), 2 * GIB);
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 0);
        assert_eq!(l.describe(), "all-4KB");
    }

    #[test]
    fn uniform_2m_covers_everything() {
        let l = MemoryLayout::uniform(pool(), PageSize::Huge2M);
        assert_eq!(l.page_size_at(VirtAddr::new(0)), PageSize::Huge2M);
        assert_eq!(l.page_size_at(VirtAddr::new(2 * GIB - 1)), PageSize::Huge2M);
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 2 * GIB);
        assert_eq!(l.bytes_backed_by(PageSize::Base4K), 0);
    }

    #[test]
    fn uniform_on_unaligned_pool_rounds_out() {
        let unaligned = Region::new(VirtAddr::new(4096), 3 * MIB);
        let l = MemoryLayout::uniform(unaligned, PageSize::Huge2M);
        // Every address of the pool is huge-backed even though the pool is
        // not 2MB-aligned.
        assert_eq!(l.page_size_at(VirtAddr::new(4096)), PageSize::Huge2M);
        assert_eq!(l.page_size_at(unaligned.end() + 0), PageSize::Huge2M);
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 3 * MIB);
    }

    #[test]
    fn mixed_layout_lookup() {
        let l = MemoryLayout::builder(pool())
            .window(Region::new(VirtAddr::new(0), GIB), PageSize::Huge1G)
            .unwrap()
            .window(Region::new(VirtAddr::new(GIB), 512 * MIB), PageSize::Huge2M)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(l.page_size_at(VirtAddr::new(0)), PageSize::Huge1G);
        assert_eq!(l.page_size_at(VirtAddr::new(GIB - 1)), PageSize::Huge1G);
        assert_eq!(l.page_size_at(VirtAddr::new(GIB)), PageSize::Huge2M);
        assert_eq!(
            l.page_size_at(VirtAddr::new(GIB + 512 * MIB)),
            PageSize::Base4K
        );
        assert_eq!(
            l.page_size_at(VirtAddr::new(3 * GIB)),
            PageSize::Base4K,
            "outside pool"
        );
    }

    #[test]
    fn misaligned_window_rejected() {
        let err = MemoryLayout::builder(pool())
            .window(Region::new(VirtAddr::new(4096), 2 * MIB), PageSize::Huge2M)
            .unwrap_err();
        assert!(matches!(err, LayoutError::Misaligned { .. }));
    }

    #[test]
    fn window_outside_pool_rejected() {
        let err = MemoryLayout::builder(pool())
            .window(
                Region::new(VirtAddr::new(4 * GIB), 2 * MIB),
                PageSize::Huge2M,
            )
            .unwrap_err();
        assert!(matches!(err, LayoutError::WindowOutsidePool { .. }));
    }

    #[test]
    fn overlapping_windows_rejected() {
        let err = MemoryLayout::builder(pool())
            .window(Region::new(VirtAddr::new(0), 4 * MIB), PageSize::Huge2M)
            .unwrap()
            .window(
                Region::new(VirtAddr::new(2 * MIB), 4 * MIB),
                PageSize::Huge2M,
            )
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, LayoutError::OverlappingWindows(..)));
    }

    #[test]
    fn byte_accounting_partitions_pool() {
        let l = MemoryLayout::builder(pool())
            .window(
                Region::new(VirtAddr::new(6 * MIB), 10 * MIB),
                PageSize::Huge2M,
            )
            .unwrap()
            .build()
            .unwrap();
        let total: u64 = PageSize::ALL.iter().map(|&s| l.bytes_backed_by(s)).sum();
        assert_eq!(total, pool().len());
    }
}
