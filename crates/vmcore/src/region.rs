//! Half-open virtual address ranges.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{PageSize, VirtAddr};

/// A half-open virtual address range `[start, start + len)`.
///
/// Regions are the unit in which Mosalloc pools, layout windows, and
/// workload footprints are described.
///
/// # Example
///
/// ```
/// use vmcore::{Region, VirtAddr};
///
/// let a = Region::new(VirtAddr::new(0x1000), 0x2000);
/// let b = Region::new(VirtAddr::new(0x2000), 0x2000);
/// assert_eq!(a.intersection(&b).unwrap().len(), 0x1000);
/// assert!(a.contains(VirtAddr::new(0x1fff)));
/// assert!(!a.contains(VirtAddr::new(0x3000)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    start: VirtAddr,
    len: u64,
}

impl Region {
    /// Creates a region from its start address and byte length.
    pub const fn new(start: VirtAddr, len: u64) -> Self {
        Region { start, len }
    }

    /// Creates a region spanning `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn from_bounds(start: VirtAddr, end: VirtAddr) -> Self {
        assert!(end >= start, "region end {end} precedes start {start}");
        Region::new(start, end - start)
    }

    /// The inclusive start address.
    pub const fn start(&self) -> VirtAddr {
        self.start
    }

    /// The exclusive end address.
    pub const fn end(&self) -> VirtAddr {
        VirtAddr::new(self.start.raw() + self.len)
    }

    /// The length in bytes.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region is empty.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` lies inside the region.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether `other` is entirely inside this region.
    pub fn contains_region(&self, other: &Region) -> bool {
        other.is_empty() || (other.start >= self.start && other.end() <= self.end())
    }

    /// Whether the two regions share at least one byte.
    pub fn overlaps(&self, other: &Region) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.start < other.end()
            && other.start < self.end()
    }

    /// Returns the overlapping sub-range, if any.
    pub fn intersection(&self, other: &Region) -> Option<Region> {
        let start = self.start.max(other.start);
        let end = self.end().min(other.end());
        if start < end {
            Some(Region::from_bounds(start, end))
        } else {
            None
        }
    }

    /// Expands the region outward so that both bounds are aligned to `size`.
    pub fn align_outward(&self, size: PageSize) -> Region {
        let start = self.start.align_down(size);
        let end = self.end().align_up(size);
        Region::from_bounds(start, end)
    }

    /// Shrinks the region inward so that both bounds are aligned to `size`.
    /// May produce an empty region.
    pub fn align_inward(&self, size: PageSize) -> Region {
        let start = self.start.align_up(size);
        let end = self.end().align_down(size);
        if end > start {
            Region::from_bounds(start, end)
        } else {
            Region::new(start, 0)
        }
    }

    /// Whether both bounds are aligned to `size`.
    pub fn is_aligned(&self, size: PageSize) -> bool {
        self.start.is_aligned(size) && self.end().is_aligned(size)
    }

    /// Iterates over the page-aligned base addresses of all `size` pages
    /// that intersect this region.
    pub fn pages(&self, size: PageSize) -> impl Iterator<Item = VirtAddr> {
        let outward = if self.is_empty() {
            Region::new(self.start, 0)
        } else {
            self.align_outward(size)
        };
        let step = size.bytes();
        let n = outward.len() / step;
        let start = outward.start;
        (0..n).map(move |i| start + i * step)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start.raw(), self.end().raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(start: u64, len: u64) -> Region {
        Region::new(VirtAddr::new(start), len)
    }

    #[test]
    fn bounds_and_len() {
        let reg = r(0x1000, 0x3000);
        assert_eq!(reg.start().raw(), 0x1000);
        assert_eq!(reg.end().raw(), 0x4000);
        assert_eq!(reg.len(), 0x3000);
        assert!(!reg.is_empty());
        assert!(r(0x1000, 0).is_empty());
    }

    #[test]
    fn overlap_cases() {
        assert!(r(0, 0x2000).overlaps(&r(0x1000, 0x2000)));
        assert!(
            !r(0, 0x1000).overlaps(&r(0x1000, 0x1000)),
            "touching is not overlap"
        );
        assert!(!r(0, 0).overlaps(&r(0, 0x1000)), "empty never overlaps");
        assert!(r(0x1000, 0x100).overlaps(&r(0, 0x10000)), "nested overlaps");
    }

    #[test]
    fn intersection_cases() {
        assert_eq!(
            r(0, 0x2000).intersection(&r(0x1000, 0x2000)),
            Some(r(0x1000, 0x1000))
        );
        assert_eq!(r(0, 0x1000).intersection(&r(0x1000, 0x1000)), None);
        assert_eq!(
            r(0, 0x4000).intersection(&r(0x1000, 0x1000)),
            Some(r(0x1000, 0x1000))
        );
    }

    #[test]
    fn containment() {
        let outer = r(0x1000, 0x4000);
        assert!(outer.contains_region(&r(0x2000, 0x1000)));
        assert!(outer.contains_region(&outer));
        assert!(!outer.contains_region(&r(0x4000, 0x2000)));
        assert!(
            outer.contains_region(&r(0xdead_0000, 0)),
            "empty region always contained"
        );
    }

    #[test]
    fn alignment_outward_inward() {
        let reg = r(0x1800, 0x800); // [0x1800, 0x2000)
        let out = reg.align_outward(PageSize::Base4K);
        assert_eq!(out, r(0x1000, 0x1000));
        let inward = reg.align_inward(PageSize::Base4K);
        assert!(inward.is_empty());

        let big = r(0x1800, 0x4000);
        assert_eq!(big.align_inward(PageSize::Base4K), r(0x2000, 0x3000));
        assert!(out.is_aligned(PageSize::Base4K));
        assert!(!reg.is_aligned(PageSize::Base4K));
    }

    #[test]
    fn pages_iteration() {
        let reg = r(0x1800, 0x2000); // touches pages 1,2,3
        let pages: Vec<_> = reg.pages(PageSize::Base4K).map(VirtAddr::raw).collect();
        assert_eq!(pages, vec![0x1000, 0x2000, 0x3000]);
        assert_eq!(r(0, 0).pages(PageSize::Base4K).count(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn from_bounds_rejects_inverted() {
        Region::from_bounds(VirtAddr::new(0x2000), VirtAddr::new(0x1000));
    }
}
