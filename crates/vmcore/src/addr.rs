//! Strongly typed virtual/physical addresses and x86-64 page sizes.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A virtual address in a simulated 48-bit address space.
///
/// The newtype prevents accidentally mixing virtual and physical addresses
/// (or plain byte counts) in translation code.
///
/// # Example
///
/// ```
/// use vmcore::{PageSize, VirtAddr};
///
/// let va = VirtAddr::new(0x2010);
/// assert_eq!(va.align_down(PageSize::Base4K), VirtAddr::new(0x2000));
/// assert_eq!(va.offset_in(PageSize::Base4K), 0x10);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rounds the address down to the nearest boundary of `size`.
    #[inline]
    pub const fn align_down(self, size: PageSize) -> Self {
        VirtAddr(self.0 & !(size.bytes() - 1))
    }

    /// Rounds the address up to the nearest boundary of `size`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit address space, which cannot happen
    /// for the 48-bit canonical addresses used throughout this workspace.
    pub const fn align_up(self, size: PageSize) -> Self {
        let mask = size.bytes() - 1;
        VirtAddr((self.0 + mask) & !mask)
    }

    /// Returns whether the address is aligned to `size`.
    pub const fn is_aligned(self, size: PageSize) -> bool {
        self.0 & (size.bytes() - 1) == 0
    }

    /// Returns the byte offset of the address within its `size` page.
    #[inline]
    pub const fn offset_in(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Returns the virtual page number for a given page size
    /// (the address shifted right by the page-size shift).
    #[inline]
    pub const fn page_number(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Saturating addition of a byte count.
    pub const fn saturating_add(self, bytes: u64) -> Self {
        VirtAddr(self.0.saturating_add(bytes))
    }

    /// Checked addition of a byte count.
    pub fn checked_add(self, bytes: u64) -> Option<Self> {
        self.0.checked_add(bytes).map(VirtAddr)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;

    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;

    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// A physical address (frame address) in the simulated machine.
///
/// Produced by the simulated page table; consumed by the cache hierarchy,
/// whose indexing is physical.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address (64-byte lines).
    #[inline]
    pub const fn cache_line(self) -> u64 {
        self.0 >> 6
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;

    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The three page sizes supported by x86-64 translation hardware.
///
/// A 4KB translation walks all four page-table levels; a 2MB translation
/// terminates at the page directory (3 references) and a 1GB translation at
/// the page-directory-pointer table (2 references).
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum PageSize {
    /// Standard 4KB page.
    #[default]
    Base4K,
    /// 2MB hugepage (PDE mapping).
    Huge2M,
    /// 1GB hugepage (PDPTE mapping).
    Huge1G,
}

impl PageSize {
    /// All page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Base4K, PageSize::Huge2M, PageSize::Huge1G];

    /// The page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => 4 << 10,
            PageSize::Huge2M => 2 << 20,
            PageSize::Huge1G => 1 << 30,
        }
    }

    /// The log2 of the page size.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
            PageSize::Huge1G => 30,
        }
    }

    /// Number of page-table levels referenced when walking a miss of this
    /// size: 4 for 4KB, 3 for 2MB, 2 for 1GB.
    pub const fn walk_levels(self) -> u32 {
        match self {
            PageSize::Base4K => 4,
            PageSize::Huge2M => 3,
            PageSize::Huge1G => 2,
        }
    }

    /// Short human-readable name ("4KB", "2MB", "1GB").
    pub const fn name(self) -> &'static str {
        match self {
            PageSize::Base4K => "4KB",
            PageSize::Huge2M => "2MB",
            PageSize::Huge1G => "1GB",
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PageSize {
    type Err = crate::LayoutError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "4KB" | "4K" | "BASE" => Ok(PageSize::Base4K),
            "2MB" | "2M" => Ok(PageSize::Huge2M),
            "1GB" | "1G" => Ok(PageSize::Huge1G),
            _ => Err(crate::LayoutError::BadPageSize(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bytes_and_shift_agree() {
        for size in PageSize::ALL {
            assert_eq!(size.bytes(), 1 << size.shift());
        }
    }

    #[test]
    fn walk_levels_match_x86_radix() {
        assert_eq!(PageSize::Base4K.walk_levels(), 4);
        assert_eq!(PageSize::Huge2M.walk_levels(), 3);
        assert_eq!(PageSize::Huge1G.walk_levels(), 2);
    }

    #[test]
    fn align_down_up_roundtrip() {
        let va = VirtAddr::new(0x20_1234);
        assert_eq!(va.align_down(PageSize::Huge2M), VirtAddr::new(0x20_0000));
        assert_eq!(va.align_up(PageSize::Huge2M), VirtAddr::new(0x40_0000));
        assert!(va.align_down(PageSize::Huge2M).is_aligned(PageSize::Huge2M));
        let aligned = VirtAddr::new(0x40_0000);
        assert_eq!(aligned.align_up(PageSize::Huge2M), aligned);
    }

    #[test]
    fn page_number_strips_offset() {
        let va = VirtAddr::new(3 * PageSize::Base4K.bytes() + 17);
        assert_eq!(va.page_number(PageSize::Base4K), 3);
        assert_eq!(va.offset_in(PageSize::Base4K), 17);
    }

    #[test]
    fn parse_page_size_accepts_common_spellings() {
        assert_eq!("4kb".parse::<PageSize>().unwrap(), PageSize::Base4K);
        assert_eq!("2M".parse::<PageSize>().unwrap(), PageSize::Huge2M);
        assert_eq!("1GB".parse::<PageSize>().unwrap(), PageSize::Huge1G);
        assert!("3MB".parse::<PageSize>().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr::new(0x1000).to_string(), "0x1000");
        assert_eq!(PageSize::Huge2M.to_string(), "2MB");
    }

    #[test]
    fn virt_addr_arithmetic() {
        let a = VirtAddr::new(0x1000);
        assert_eq!(a + 0x10, VirtAddr::new(0x1010));
        assert_eq!(VirtAddr::new(0x2000) - a, 0x1000);
        let mut b = a;
        b += 0x1000;
        assert_eq!(b, VirtAddr::new(0x2000));
        assert_eq!(VirtAddr::new(u64::MAX).saturating_add(10).raw(), u64::MAX);
        assert!(VirtAddr::new(u64::MAX).checked_add(1).is_none());
    }

    #[test]
    fn phys_addr_cache_line() {
        assert_eq!(PhysAddr::new(0).cache_line(), 0);
        assert_eq!(PhysAddr::new(63).cache_line(), 0);
        assert_eq!(PhysAddr::new(64).cache_line(), 1);
    }
}
