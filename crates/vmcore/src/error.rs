//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

use crate::Region;

/// Errors raised while constructing or parsing a [`crate::MemoryLayout`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A window is not contained in the pool region.
    WindowOutsidePool {
        /// The offending window.
        window: Region,
        /// The pool it must fit in.
        pool: Region,
    },
    /// Two windows overlap.
    OverlappingWindows(Region, Region),
    /// A window's bounds are not aligned to its page size.
    Misaligned {
        /// The offending window.
        window: Region,
        /// Required alignment.
        required: crate::PageSize,
    },
    /// A page-size string could not be parsed.
    BadPageSize(String),
    /// A layout specification string could not be parsed.
    BadSpec(String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::WindowOutsidePool { window, pool } => {
                write!(f, "window {window} not contained in pool {pool}")
            }
            LayoutError::OverlappingWindows(a, b) => {
                write!(f, "layout windows {a} and {b} overlap")
            }
            LayoutError::Misaligned { window, required } => {
                write!(f, "window {window} not aligned to its {required} page size")
            }
            LayoutError::BadPageSize(s) => write!(f, "unrecognized page size {s:?}"),
            LayoutError::BadSpec(s) => write!(f, "malformed layout spec: {s}"),
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PageSize, VirtAddr};

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<LayoutError> = vec![
            LayoutError::WindowOutsidePool {
                window: Region::new(VirtAddr::new(0), 1),
                pool: Region::new(VirtAddr::new(0), 1),
            },
            LayoutError::OverlappingWindows(
                Region::new(VirtAddr::new(0), 1),
                Region::new(VirtAddr::new(0), 1),
            ),
            LayoutError::Misaligned {
                window: Region::new(VirtAddr::new(0), 1),
                required: PageSize::Huge2M,
            },
            LayoutError::BadPageSize("7MB".into()),
            LayoutError::BadSpec("oops".into()),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<LayoutError>();
    }
}
