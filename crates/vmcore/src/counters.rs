//! Simulated performance-monitoring-unit readouts.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// One run's worth of simulated hardware performance counters.
///
/// The four headline counters follow the paper's Table 2:
///
/// * `R` — [`runtime_cycles`](Self::runtime_cycles): unhalted execution cycles,
/// * `H` — [`stlb_hits`](Self::stlb_hits): translations that missed the L1
///   TLB but hit the L2 TLB,
/// * `M` — [`stlb_misses`](Self::stlb_misses): translations that missed both
///   TLB levels (and therefore walked the page table),
/// * `C` — [`walk_cycles`](Self::walk_cycles): cycles spent walking the page
///   table. On parts with two hardware walkers this counter sums both
///   walkers' active cycles and may exceed `R` (paper §VI-D).
///
/// The cache-load counters reproduce the paper's Table 7 split between
/// references issued by the *program* and by the *page walker*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PmuCounters {
    /// `R`: unhalted runtime cycles.
    pub runtime_cycles: u64,
    /// `H`: L1-TLB misses that hit in the L2 TLB.
    pub stlb_hits: u64,
    /// `M`: misses in both TLB levels.
    pub stlb_misses: u64,
    /// `C`: aggregate page-walk cycles (double-counted across walkers).
    pub walk_cycles: u64,
    /// Retired instructions (used for sanity checks and IPC reporting).
    pub instructions: u64,
    /// Program-issued loads that reached the L1d cache.
    pub program_l1d_loads: u64,
    /// Program-issued loads that reached the L2 cache.
    pub program_l2_loads: u64,
    /// Program-issued loads that reached the L3 cache.
    pub program_l3_loads: u64,
    /// Walker-issued page-table references that reached the L1d cache.
    pub walker_l1d_loads: u64,
    /// Walker-issued page-table references that reached the L2 cache.
    pub walker_l2_loads: u64,
    /// Walker-issued page-table references that reached the L3 cache.
    pub walker_l3_loads: u64,
}

impl PmuCounters {
    /// Returns the `(R, H, M, C)` tuple as floating-point values, the form
    /// consumed by the runtime models.
    pub fn rhmc(&self) -> (f64, f64, f64, f64) {
        (
            self.runtime_cycles as f64,
            self.stlb_hits as f64,
            self.stlb_misses as f64,
            self.walk_cycles as f64,
        )
    }

    /// Instructions per cycle; `0.0` when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.runtime_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.runtime_cycles as f64
        }
    }

    /// Average page-walk latency in cycles, `0.0` when no misses occurred.
    pub fn avg_walk_latency(&self) -> f64 {
        if self.stlb_misses == 0 {
            0.0
        } else {
            self.walk_cycles as f64 / self.stlb_misses as f64
        }
    }

    /// Total L3 loads (program + walker), the quantity the paper's Table 7
    /// uses to demonstrate cache pollution by the page walker.
    pub fn total_l3_loads(&self) -> u64 {
        self.program_l3_loads + self.walker_l3_loads
    }
}

impl Add for PmuCounters {
    type Output = PmuCounters;

    fn add(self, rhs: PmuCounters) -> PmuCounters {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for PmuCounters {
    fn add_assign(&mut self, rhs: PmuCounters) {
        self.runtime_cycles += rhs.runtime_cycles;
        self.stlb_hits += rhs.stlb_hits;
        self.stlb_misses += rhs.stlb_misses;
        self.walk_cycles += rhs.walk_cycles;
        self.instructions += rhs.instructions;
        self.program_l1d_loads += rhs.program_l1d_loads;
        self.program_l2_loads += rhs.program_l2_loads;
        self.program_l3_loads += rhs.program_l3_loads;
        self.walker_l1d_loads += rhs.walker_l1d_loads;
        self.walker_l2_loads += rhs.walker_l2_loads;
        self.walker_l3_loads += rhs.walker_l3_loads;
    }
}

impl fmt::Display for PmuCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R={} H={} M={} C={} (ipc={:.2})",
            self.runtime_cycles,
            self.stlb_hits,
            self.stlb_misses,
            self.walk_cycles,
            self.ipc()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PmuCounters {
        PmuCounters {
            runtime_cycles: 1000,
            stlb_hits: 40,
            stlb_misses: 10,
            walk_cycles: 300,
            instructions: 2000,
            program_l1d_loads: 500,
            program_l2_loads: 100,
            program_l3_loads: 20,
            walker_l1d_loads: 30,
            walker_l2_loads: 15,
            walker_l3_loads: 5,
        }
    }

    #[test]
    fn rhmc_tuple_matches_fields() {
        let c = sample();
        assert_eq!(c.rhmc(), (1000.0, 40.0, 10.0, 300.0));
    }

    #[test]
    fn derived_quantities() {
        let c = sample();
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        assert!((c.avg_walk_latency() - 30.0).abs() < 1e-12);
        assert_eq!(c.total_l3_loads(), 25);
    }

    #[test]
    fn zero_division_guards() {
        let c = PmuCounters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.avg_walk_latency(), 0.0);
    }

    #[test]
    fn addition_is_fieldwise() {
        let c = sample() + sample();
        assert_eq!(c.runtime_cycles, 2000);
        assert_eq!(c.walker_l3_loads, 10);
        let mut d = sample();
        d += sample();
        assert_eq!(c, d);
    }

    #[test]
    fn display_mentions_all_headline_counters() {
        let s = sample().to_string();
        for needle in ["R=1000", "H=40", "M=10", "C=300"] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }
}
