//! Layout-exploration heuristics (paper §VI-B).
//!
//! Mosalloc can back an address space with any page mosaic, but it does
//! not decide *which* mosaics produce useful validation data. The paper
//! introduces three heuristics that generate layouts whose `(H, M, C)`
//! samples spread across the input space:
//!
//! * [`growing_window`] — back a growing prefix of the pool with 2MB
//!   pages: from all-4KB to all-2MB in `N` steps;
//! * [`random_window`] — back a window of random position and length;
//! * [`sliding_window`] — find the **hot region** (the smallest region
//!   producing a target fraction of TLB misses), back it, then slide the
//!   window off it step by step.
//!
//! [`standard_battery`] combines them into the paper's 54-layout set:
//! 9 growing + 9 random + 9×4 sliding (hot fractions 20/40/60/80%).
//!
//! # Example
//!
//! ```
//! use layouts::growing_window;
//! use vmcore::{PageSize, Region, VirtAddr, GIB};
//!
//! let pool = Region::new(VirtAddr::new(0), GIB);
//! let battery = growing_window(pool, 8);
//! assert_eq!(battery.len(), 9);
//! assert_eq!(battery[0].bytes_backed_by(PageSize::Huge2M), 0);
//! assert_eq!(battery[8].bytes_backed_by(PageSize::Huge2M), GIB);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod spec;

pub use spec::{parse_spec, SpecError};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmcore::{MemoryLayout, PageSize, Region, VirtAddr};

/// The hot-region fractions `X` used by the paper's Sliding Window runs.
pub const SLIDING_FRACTIONS: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

/// Steps per heuristic (`N = 8` gives the paper's 9 layouts each).
pub const DEFAULT_STEPS: usize = 8;

/// Builds a layout whose single 2MB window is `window ∩ pool`, aligned
/// outward to 2MB. An empty intersection yields the all-4KB layout.
fn layout_with_window(pool: Region, window: Region) -> MemoryLayout {
    let clipped = match window.intersection(&pool.align_outward(PageSize::Huge2M)) {
        Some(w) => w.align_outward(PageSize::Huge2M),
        None => return MemoryLayout::all_4k(pool),
    };
    MemoryLayout::builder(pool)
        .window(clipped, PageSize::Huge2M)
        .and_then(|b| b.build())
        .expect("outward-aligned clipped window is always valid")
}

/// **Growing Window** (paper §VI-B): `n + 1` layouts; layout `i` backs the
/// first `i/n` of the pool with 2MB pages. Layout 0 is all-4KB, layout
/// `n` is all-2MB.
///
/// # Panics
///
/// Panics if `n == 0` or the pool is empty.
pub fn growing_window(pool: Region, n: usize) -> Vec<MemoryLayout> {
    assert!(n > 0, "need at least one step");
    assert!(!pool.is_empty(), "empty pool");
    (0..=n)
        .map(|i| {
            if i == 0 {
                return MemoryLayout::all_4k(pool);
            }
            if i == n {
                return MemoryLayout::uniform(pool, PageSize::Huge2M);
            }
            let len = pool.len() * i as u64 / n as u64;
            layout_with_window(pool, Region::new(pool.start(), len))
        })
        .collect()
}

/// **Random Window** (paper §VI-B): `n + 1` layouts, each backing a
/// window of random start and length with 2MB pages. Deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if `n == 0` or the pool is empty.
pub fn random_window(pool: Region, n: usize, seed: u64) -> Vec<MemoryLayout> {
    assert!(n > 0, "need at least one step");
    assert!(!pool.is_empty(), "empty pool");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7261_6e64);
    (0..=n)
        .map(|_| {
            let len = rng.gen_range(1..=pool.len());
            let max_start = pool.len() - len;
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            };
            layout_with_window(pool, Region::new(pool.start() + start, len))
        })
        .collect()
}

/// **Sliding Window** (paper §VI-B): the first layout backs exactly the
/// hot region (as found by a PEBS-like miss profile); each subsequent
/// layout slides the window by `1/n` of the hot region's size, gradually
/// uncovering it. The slide direction is away from the nearer pool edge:
/// a hot region at the top of the pool slides toward low addresses and
/// vice versa, so later layouts back less and less of the hot region.
///
/// # Panics
///
/// Panics if `n == 0`, the pool is empty, or `hot` does not intersect the
/// pool.
pub fn sliding_window(pool: Region, hot: Region, n: usize) -> Vec<MemoryLayout> {
    assert!(n > 0, "need at least one step");
    assert!(!pool.is_empty(), "empty pool");
    let hot = hot
        .intersection(&pool)
        .expect("hot region must intersect the pool")
        .align_outward(PageSize::Huge2M);
    let step = (hot.len() / n as u64).max(PageSize::Huge2M.bytes());
    // Is the hot region closer to the pool's top or bottom?
    let dist_low = hot.start() - pool.start();
    let dist_high = pool.end() - hot.end();
    let slide_down = dist_low >= dist_high; // hot at top → slide low
    (0..=n)
        .map(|i| {
            let offset = step * i as u64;
            let window = if slide_down {
                let start = hot.start().raw().saturating_sub(offset);
                Region::new(VirtAddr::new(start), hot.len())
            } else {
                Region::new(hot.start() + offset, hot.len())
            };
            layout_with_window(pool, window)
        })
        .collect()
}

/// A tagged layout of the standard battery.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedLayout {
    /// The layout itself.
    pub layout: MemoryLayout,
    /// The heuristic that generated it.
    pub origin: Heuristic,
}

/// Which heuristic generated a layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Growing Window step.
    Growing,
    /// Random Window draw.
    Random,
    /// Sliding Window step with the given hot-miss fraction.
    Sliding(u8),
}

/// The paper's standard 54-layout battery: 9 growing + 9 random + 9×4
/// sliding windows using the four [`SLIDING_FRACTIONS`].
///
/// `hot_region_for` maps a miss fraction `X` to the workload's hot region
/// (obtained from a PEBS-like profile; see `machine::profile_tlb_misses`).
///
/// The first returned layout is all-4KB and the growing battery's last is
/// all-2MB, so anchor measurements are always present.
pub fn standard_battery<F>(pool: Region, hot_region_for: F) -> Vec<PlannedLayout>
where
    F: Fn(f64) -> Region,
{
    battery_with_steps(pool, hot_region_for, DEFAULT_STEPS)
}

/// A battery with `steps + 1` layouts per heuristic run — `6 (steps+1)`
/// layouts in total (`steps = 8` gives the paper's 54).
///
/// The paper notes that cross-validating Mosmodel sometimes required up
/// to ~100 samples (§VI-C); this constructor generates those larger (or
/// smaller) batteries for sample-size studies — see the
/// `ablation_battery_size` bench.
///
/// # Panics
///
/// Panics if `steps == 0` or the pool is empty.
pub fn battery_with_steps<F>(pool: Region, hot_region_for: F, steps: usize) -> Vec<PlannedLayout>
where
    F: Fn(f64) -> Region,
{
    let mut plans = Vec::with_capacity(6 * (steps + 1));
    for layout in growing_window(pool, steps) {
        plans.push(PlannedLayout {
            layout,
            origin: Heuristic::Growing,
        });
    }
    for layout in random_window(pool, steps, 0x6261_7474) {
        plans.push(PlannedLayout {
            layout,
            origin: Heuristic::Random,
        });
    }
    for fraction in SLIDING_FRACTIONS {
        let hot = hot_region_for(fraction);
        for layout in sliding_window(pool, hot, steps) {
            plans.push(PlannedLayout {
                layout,
                origin: Heuristic::Sliding((fraction * 100.0) as u8),
            });
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{GIB, MIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0x1000_0000_0000), GIB)
    }

    #[test]
    fn growing_monotone_coverage() {
        let battery = growing_window(pool(), 8);
        assert_eq!(battery.len(), 9);
        let mut last = 0;
        for l in &battery {
            let covered = l.bytes_backed_by(PageSize::Huge2M);
            assert!(covered >= last, "coverage must grow");
            last = covered;
        }
        assert_eq!(battery[0].bytes_backed_by(PageSize::Huge2M), 0);
        assert_eq!(battery[8].bytes_backed_by(PageSize::Base4K), 0);
    }

    #[test]
    fn random_windows_are_valid_and_diverse() {
        let battery = random_window(pool(), 8, 42);
        assert_eq!(battery.len(), 9);
        let coverages: std::collections::HashSet<u64> = battery
            .iter()
            .map(|l| l.bytes_backed_by(PageSize::Huge2M))
            .collect();
        assert!(coverages.len() >= 5, "windows should differ: {coverages:?}");
        // Deterministic per seed.
        assert_eq!(battery, random_window(pool(), 8, 42));
        assert_ne!(battery, random_window(pool(), 8, 43));
    }

    #[test]
    fn sliding_from_top_hot_region_moves_down() {
        // Hot region at the very top of the pool.
        let hot = Region::new(VirtAddr::new(pool().end().raw() - 64 * MIB), 64 * MIB);
        let battery = sliding_window(pool(), hot, 8);
        assert_eq!(battery.len(), 9);
        // First layout covers the hot region fully.
        assert!(battery[0].page_size_at(hot.start()) == PageSize::Huge2M);
        // Later layouts cover less and less of the hot region.
        let coverage_of_hot = |l: &MemoryLayout| {
            hot.pages(PageSize::Huge2M)
                .filter(|&p| l.page_size_at(p) == PageSize::Huge2M)
                .count()
        };
        let first = coverage_of_hot(&battery[0]);
        let mid = coverage_of_hot(&battery[4]);
        let last = coverage_of_hot(&battery[8]);
        assert!(
            first > mid && mid > last,
            "{first} > {mid} > {last} expected"
        );
        assert_eq!(last, 0, "window slid fully off the hot region");
    }

    #[test]
    fn sliding_from_bottom_hot_region_moves_up() {
        let hot = Region::new(pool().start(), 64 * MIB);
        let battery = sliding_window(pool(), hot, 8);
        // Final window has slid up & away from the pool start.
        assert_eq!(battery[8].page_size_at(pool().start()), PageSize::Base4K);
        assert_eq!(battery[0].page_size_at(pool().start()), PageSize::Huge2M);
    }

    #[test]
    fn battery_is_54_layouts_with_anchors() {
        let hot = Region::new(pool().start() + 900 * MIB, 100 * MIB);
        let battery = standard_battery(pool(), |_| hot);
        assert_eq!(battery.len(), 54);
        let all_4k = battery
            .iter()
            .filter(|p| p.layout.bytes_backed_by(PageSize::Huge2M) == 0)
            .count();
        assert!(all_4k >= 1, "must include the all-4KB anchor");
        let all_2m = battery
            .iter()
            .filter(|p| p.layout.bytes_backed_by(PageSize::Base4K) == 0)
            .count();
        assert!(all_2m >= 1, "must include the all-2MB anchor");
        // Heuristic mix: 9 + 9 + 36.
        let growing = battery
            .iter()
            .filter(|p| p.origin == Heuristic::Growing)
            .count();
        let random = battery
            .iter()
            .filter(|p| p.origin == Heuristic::Random)
            .count();
        let sliding = battery
            .iter()
            .filter(|p| matches!(p.origin, Heuristic::Sliding(_)))
            .count();
        assert_eq!((growing, random, sliding), (9, 9, 36));
    }

    #[test]
    fn battery_produces_distinct_coverages() {
        // The whole point: many distinct (H,M,C) operating points. Proxy:
        // many distinct 2MB coverage values.
        let hot = Region::new(pool().start() + 800 * MIB, 128 * MIB);
        let battery = standard_battery(pool(), |_| hot);
        let coverages: std::collections::HashSet<u64> = battery
            .iter()
            .map(|p| p.layout.bytes_backed_by(PageSize::Huge2M))
            .collect();
        assert!(
            coverages.len() >= 15,
            "only {} distinct coverages",
            coverages.len()
        );
    }

    #[test]
    fn hot_region_fraction_affects_first_window() {
        // Different fractions produce different initial sliding windows.
        let battery = standard_battery(pool(), |x| {
            let len = (x * GIB as f64) as u64;
            Region::new(VirtAddr::new(pool().end().raw() - len), len)
        });
        let s20: Vec<_> = battery
            .iter()
            .filter(|p| p.origin == Heuristic::Sliding(20))
            .collect();
        let s80: Vec<_> = battery
            .iter()
            .filter(|p| p.origin == Heuristic::Sliding(80))
            .collect();
        assert!(
            s20[0].layout.bytes_backed_by(PageSize::Huge2M)
                < s80[0].layout.bytes_backed_by(PageSize::Huge2M)
        );
    }

    #[test]
    fn battery_scales_with_steps() {
        let hot = Region::new(pool().start() + 900 * MIB, 100 * MIB);
        assert_eq!(battery_with_steps(pool(), |_| hot, 2).len(), 18);
        assert_eq!(battery_with_steps(pool(), |_| hot, 8).len(), 54);
        assert_eq!(battery_with_steps(pool(), |_| hot, 16).len(), 102);
    }

    #[test]
    #[should_panic(expected = "intersect")]
    fn sliding_rejects_disjoint_hot_region() {
        let far = Region::new(VirtAddr::new(1), 4096);
        sliding_window(pool(), far, 8);
    }
}
