//! Textual layout specifications.
//!
//! The prediction service (and any script driving it) names a layout as
//! one whitespace-free token:
//!
//! * `4k` — the all-4KB layout;
//! * `2m` — the all-2MB layout;
//! * `1g` — the all-1GB layout;
//! * `<size>:<start>..<end>` — a hugepage window over a pool-relative
//!   byte range, e.g. `2m:0..64M`; several windows join with `+`, e.g.
//!   `2m:0..64M+1g:1G..2G`.
//!
//! Window `<size>` is `2m` or `1g`; offsets take optional `K`/`M`/`G`
//! suffixes (binary units). Windows are aligned *outward* to their page
//! size — the same normalization the battery heuristics apply — so
//! callers can give round numbers without knowing the pool's exact base
//! address. A window that (after alignment) extends beyond the pool, or
//! overlaps another window, is rejected with a [`SpecError`]: silently
//! clipping or merging would measure a different layout than the one the
//! spec names.

use std::fmt;

use vmcore::{MemoryLayout, PageSize, Region};

/// Why a layout spec failed to parse or build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec (or a window inside it) is not valid grammar.
    Syntax(String),
    /// A window range is empty or inverted.
    EmptyWindow(String),
    /// A window misses the pool or extends beyond it after alignment.
    OutsidePool(String),
    /// The windows overlap after outward alignment.
    Overlap(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax(s) => write!(f, "bad layout spec {s:?}"),
            SpecError::EmptyWindow(s) => write!(f, "empty window range {s:?}"),
            SpecError::OutsidePool(s) => write!(f, "window {s:?} is outside the pool"),
            SpecError::Overlap(s) => write!(f, "windows overlap after alignment: {s}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses a size-suffixed byte count (`64M`, `1G`, `4096`).
fn parse_bytes(text: &str) -> Option<u64> {
    let (digits, mult) = match text.as_bytes().last()? {
        b'K' | b'k' => (&text[..text.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&text[..text.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&text[..text.len() - 1], 1u64 << 30),
        _ => (text, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

/// Parses a layout spec against a concrete pool region.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the first problem found; the parser
/// never panics on malformed input.
///
/// # Example
///
/// ```
/// use layouts::spec::parse_spec;
/// use vmcore::{PageSize, Region, VirtAddr, GIB};
///
/// let pool = Region::new(VirtAddr::new(0x2000_0000_0000), GIB);
/// let layout = parse_spec(pool, "2m:0..128M").unwrap();
/// assert_eq!(layout.bytes_backed_by(PageSize::Huge2M), 128 << 20);
/// assert!(parse_spec(pool, "uniform?").is_err());
/// ```
pub fn parse_spec(pool: Region, spec: &str) -> Result<MemoryLayout, SpecError> {
    match spec.to_ascii_lowercase().as_str() {
        "4k" | "4kb" => return Ok(MemoryLayout::all_4k(pool)),
        "2m" | "2mb" => return Ok(MemoryLayout::uniform(pool, PageSize::Huge2M)),
        "1g" | "1gb" => return Ok(MemoryLayout::uniform(pool, PageSize::Huge1G)),
        _ => {}
    }

    let mut builder = MemoryLayout::builder(pool);
    for window in spec.split('+') {
        let (size_text, range_text) = window
            .split_once(':')
            .ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        let size = match size_text.to_ascii_lowercase().as_str() {
            "2m" | "2mb" => PageSize::Huge2M,
            "1g" | "1gb" => PageSize::Huge1G,
            _ => return Err(SpecError::Syntax(window.to_string())),
        };
        let (start_text, end_text) = range_text
            .split_once("..")
            .ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        let start = parse_bytes(start_text).ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        let end = parse_bytes(end_text).ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        if end <= start {
            return Err(SpecError::EmptyWindow(window.to_string()));
        }
        let absolute = Region::new(pool.start() + start, end - start);
        let aligned = absolute.align_outward(size);
        // A window that pokes past the pool is a spec error, not
        // something to clip: silently shrinking it would measure a
        // different layout than the one the caller named. (The bound is
        // the pool aligned outward, so a round window over an unaligned
        // pool still counts as in-pool — the battery's normalization.)
        if !pool.align_outward(size).contains_region(&aligned) {
            return Err(SpecError::OutsidePool(window.to_string()));
        }
        builder = builder
            .window(aligned, size)
            .map_err(|e| SpecError::Overlap(e.to_string()))?;
    }
    builder
        .build()
        .map_err(|e| SpecError::Overlap(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, GIB, MIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
    }

    #[test]
    fn uniform_specs() {
        assert_eq!(
            parse_spec(pool(), "4k").unwrap(),
            MemoryLayout::all_4k(pool())
        );
        assert_eq!(
            parse_spec(pool(), "2M").unwrap(),
            MemoryLayout::uniform(pool(), PageSize::Huge2M)
        );
        assert_eq!(
            parse_spec(pool(), "1gb").unwrap(),
            MemoryLayout::uniform(pool(), PageSize::Huge1G)
        );
    }

    #[test]
    fn windows_clip_and_align() {
        let l = parse_spec(pool(), "2m:0..64M").unwrap();
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 64 * MIB);

        // An unaligned window rounds outward, exactly like the battery.
        let l = parse_spec(pool(), "2m:1M..3M").unwrap();
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 4 * MIB);

        // Multiple windows of different page sizes.
        let l = parse_spec(pool(), "2m:0..64M+1g:1G..2G").unwrap();
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 64 * MIB);
        assert_eq!(l.bytes_backed_by(PageSize::Huge1G), GIB);
    }

    #[test]
    fn malformed_specs_error_cleanly() {
        for bad in [
            "",
            "3m",
            "2m:",
            "2m:0",
            "2m:0..",
            "2m:8M..4M",
            "2m:x..y",
            "4k+2m",
            "2m:0..1x",
        ] {
            assert!(
                parse_spec(pool(), bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
        // Overlapping windows are refused, not silently merged.
        assert!(matches!(
            parse_spec(pool(), "2m:0..64M+2m:32M..96M"),
            Err(SpecError::Overlap(_))
        ));
    }

    #[test]
    fn pool_exceeding_windows_are_rejected_not_clipped() {
        // The pool is 2GiB; windows reaching past its end used to be
        // silently clipped, measuring a different layout than named.
        for bad in ["2m:0..4G", "1g:1G..3G", "2m:1920M..2049M"] {
            assert!(
                matches!(parse_spec(pool(), bad), Err(SpecError::OutsidePool(_))),
                "{bad:?} must be rejected as outside the pool"
            );
        }
        // A window entirely past the pool is likewise outside.
        assert!(matches!(
            parse_spec(pool(), "2m:2G..3G"),
            Err(SpecError::OutsidePool(_))
        ));
        // Exactly filling the pool is still accepted.
        assert!(parse_spec(pool(), "2m:0..2G").is_ok());
        assert!(parse_spec(pool(), "1g:0..2G").is_ok());
    }

    #[test]
    fn suffixes_and_bare_bytes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64M"), Some(64 * MIB));
        assert_eq!(parse_bytes("1G"), Some(GIB));
        assert_eq!(parse_bytes("2k"), Some(2048));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("M"), None);
    }
}
