//! Textual layout specifications.
//!
//! The prediction service (and any script driving it) names a layout as
//! one whitespace-free token:
//!
//! * `4k` — the all-4KB layout;
//! * `2m` — the all-2MB layout;
//! * `1g` — the all-1GB layout;
//! * `<size>:<start>..<end>` — a hugepage window over a pool-relative
//!   byte range, e.g. `2m:0..64M`; several windows join with `+`, e.g.
//!   `2m:0..64M+1g:1G..2G`.
//!
//! Window `<size>` is `2m` or `1g`; offsets take optional `K`/`M`/`G`
//! suffixes (binary units). Windows are clipped to the pool and aligned
//! *outward* to their page size — the same normalization the battery
//! heuristics apply — so callers can give round numbers without knowing
//! the pool's exact base address.

use std::fmt;

use vmcore::{MemoryLayout, PageSize, Region};

/// Why a layout spec failed to parse or build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec (or a window inside it) is not valid grammar.
    Syntax(String),
    /// A window range is empty or inverted.
    EmptyWindow(String),
    /// A window misses the pool entirely.
    OutsidePool(String),
    /// The windows overlap after outward alignment.
    Overlap(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax(s) => write!(f, "bad layout spec {s:?}"),
            SpecError::EmptyWindow(s) => write!(f, "empty window range {s:?}"),
            SpecError::OutsidePool(s) => write!(f, "window {s:?} is outside the pool"),
            SpecError::Overlap(s) => write!(f, "windows overlap after alignment: {s}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses a size-suffixed byte count (`64M`, `1G`, `4096`).
fn parse_bytes(text: &str) -> Option<u64> {
    let (digits, mult) = match text.as_bytes().last()? {
        b'K' | b'k' => (&text[..text.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&text[..text.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&text[..text.len() - 1], 1u64 << 30),
        _ => (text, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

/// Parses a layout spec against a concrete pool region.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the first problem found; the parser
/// never panics on malformed input.
///
/// # Example
///
/// ```
/// use layouts::spec::parse_spec;
/// use vmcore::{PageSize, Region, VirtAddr, GIB};
///
/// let pool = Region::new(VirtAddr::new(0x2000_0000_0000), GIB);
/// let layout = parse_spec(pool, "2m:0..128M").unwrap();
/// assert_eq!(layout.bytes_backed_by(PageSize::Huge2M), 128 << 20);
/// assert!(parse_spec(pool, "uniform?").is_err());
/// ```
pub fn parse_spec(pool: Region, spec: &str) -> Result<MemoryLayout, SpecError> {
    match spec.to_ascii_lowercase().as_str() {
        "4k" | "4kb" => return Ok(MemoryLayout::all_4k(pool)),
        "2m" | "2mb" => return Ok(MemoryLayout::uniform(pool, PageSize::Huge2M)),
        "1g" | "1gb" => return Ok(MemoryLayout::uniform(pool, PageSize::Huge1G)),
        _ => {}
    }

    let mut builder = MemoryLayout::builder(pool);
    for window in spec.split('+') {
        let (size_text, range_text) = window
            .split_once(':')
            .ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        let size = match size_text.to_ascii_lowercase().as_str() {
            "2m" | "2mb" => PageSize::Huge2M,
            "1g" | "1gb" => PageSize::Huge1G,
            _ => return Err(SpecError::Syntax(window.to_string())),
        };
        let (start_text, end_text) = range_text
            .split_once("..")
            .ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        let start = parse_bytes(start_text).ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        let end = parse_bytes(end_text).ok_or_else(|| SpecError::Syntax(window.to_string()))?;
        if end <= start {
            return Err(SpecError::EmptyWindow(window.to_string()));
        }
        let absolute = Region::new(pool.start() + start, end - start);
        let clipped = absolute
            .intersection(&pool.align_outward(size))
            .map(|w| w.align_outward(size))
            .ok_or_else(|| SpecError::OutsidePool(window.to_string()))?;
        builder = builder
            .window(clipped, size)
            .map_err(|e| SpecError::Overlap(e.to_string()))?;
    }
    builder
        .build()
        .map_err(|e| SpecError::Overlap(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, GIB, MIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
    }

    #[test]
    fn uniform_specs() {
        assert_eq!(
            parse_spec(pool(), "4k").unwrap(),
            MemoryLayout::all_4k(pool())
        );
        assert_eq!(
            parse_spec(pool(), "2M").unwrap(),
            MemoryLayout::uniform(pool(), PageSize::Huge2M)
        );
        assert_eq!(
            parse_spec(pool(), "1gb").unwrap(),
            MemoryLayout::uniform(pool(), PageSize::Huge1G)
        );
    }

    #[test]
    fn windows_clip_and_align() {
        let l = parse_spec(pool(), "2m:0..64M").unwrap();
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 64 * MIB);

        // An unaligned window rounds outward, exactly like the battery.
        let l = parse_spec(pool(), "2m:1M..3M").unwrap();
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 4 * MIB);

        // Multiple windows of different page sizes.
        let l = parse_spec(pool(), "2m:0..64M+1g:1G..2G").unwrap();
        assert_eq!(l.bytes_backed_by(PageSize::Huge2M), 64 * MIB);
        assert_eq!(l.bytes_backed_by(PageSize::Huge1G), GIB);
    }

    #[test]
    fn malformed_specs_error_cleanly() {
        for bad in [
            "",
            "3m",
            "2m:",
            "2m:0",
            "2m:0..",
            "2m:8M..4M",
            "2m:x..y",
            "4k+2m",
            "2m:0..1x",
        ] {
            assert!(
                parse_spec(pool(), bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
        // Overlapping windows are refused, not silently merged.
        assert!(matches!(
            parse_spec(pool(), "2m:0..64M+2m:32M..96M"),
            Err(SpecError::Overlap(_))
        ));
    }

    #[test]
    fn suffixes_and_bare_bytes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64M"), Some(64 * MIB));
        assert_eq!(parse_bytes("1G"), Some(GIB));
        assert_eq!(parse_bytes("2k"), Some(2048));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("M"), None);
    }
}
