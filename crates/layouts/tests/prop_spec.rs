//! Property tests for the layout-spec parser: any spec the parser
//! accepts must describe pairwise-disjoint windows inside the pool.
//! (Rejection is fine — silently "repairing" a spec by clipping or
//! merging is the bug these properties guard against.)

use proptest::prelude::*;
use vmcore::{PageSize, Region, VirtAddr, GIB, MIB};

use layouts::parse_spec;

fn pool() -> Region {
    Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
}

/// Arbitrary window tokens: a size, a start and a length in MiB. Many of
/// these overlap each other or run past the 2GiB pool — exactly the
/// inputs the parser must reject rather than adjust.
fn windows_strategy() -> impl Strategy<Value = Vec<(bool, u64, u64)>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..5000, 1u64..3000), // (is_1g, start_mib, len_mib)
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn accepted_specs_are_disjoint_and_in_pool(windows in windows_strategy()) {
        let spec = windows
            .iter()
            .map(|&(is_1g, start, len)| {
                let size = if is_1g { "1g" } else { "2m" };
                format!("{size}:{start}M..{}M", start + len)
            })
            .collect::<Vec<_>>()
            .join("+");

        let Ok(layout) = parse_spec(pool(), &spec) else {
            return Ok(()); // rejection is always a correct answer
        };
        let windows = layout.windows();
        for w in windows {
            prop_assert!(
                pool().contains_region(&w.region),
                "window {:?} of accepted spec {spec:?} leaves the pool",
                w.region
            );
            prop_assert!(
                w.region.is_aligned(w.size),
                "window {:?} is unaligned to {}",
                w.region,
                w.size
            );
        }
        for (a, b) in windows.iter().zip(windows.iter().skip(1)) {
            prop_assert!(
                !a.region.overlaps(&b.region),
                "accepted spec {spec:?} produced overlapping windows"
            );
        }
    }

    /// Whole-MiB windows inside the first half of the pool are always
    /// valid 2MB windows; the parser must accept them and reproduce the
    /// requested extent exactly (no clipping, no growth beyond outward
    /// alignment).
    #[test]
    fn round_in_pool_windows_parse_exactly(start in 0u64..512, len in 1u64..512) {
        let spec = format!("2m:{start}M..{}M", start + len);
        let layout = parse_spec(pool(), &spec).unwrap();
        let backed = layout.bytes_backed_by(PageSize::Huge2M);
        // Outward 2MB alignment can add at most one page on either side.
        let requested = len * MIB;
        prop_assert!(backed >= requested, "window shrank: {backed} < {requested}");
        prop_assert!(
            backed <= requested + 2 * PageSize::Huge2M.bytes(),
            "window grew past alignment: {backed} vs {requested}"
        );
    }
}
