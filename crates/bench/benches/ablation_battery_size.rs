//! Ablation: how many Mosalloc layouts does a trustworthy model need?
//!
//! The paper settles on 54 samples (one-in-ten rule) and notes that
//! cross-validating Mosmodel sometimes required up to ~100 (§VI-C). This
//! bench sweeps the battery size and reports Mosmodel's fit-all and
//! cross-validation errors at each size.

use bench::measure_battery;
use criterion::{criterion_group, criterion_main, Criterion};
use machine::Platform;
use mosmodel::cv::k_fold;
use mosmodel::metrics::max_err;
use mosmodel::models::ModelKind;

fn ablation(c: &mut Criterion) {
    let platform = &Platform::SANDY_BRIDGE;
    let workload = "spec06/mcf";
    let accesses = 60_000;

    println!(
        "\nAblation — battery size vs Mosmodel accuracy ({workload} on {}):",
        platform.name
    );
    println!(
        "{:>8} {:>9} {:>14} {:>12}",
        "layouts", "fit err", "6-fold CV err", "terms"
    );
    for steps in [2usize, 5, 8, 16] {
        let ds = measure_battery(platform, workload, steps, accesses);
        let fitted = ModelKind::Mosmodel.fit(&ds).expect("enough samples");
        let cv = k_fold(ModelKind::Mosmodel, &ds, 6).expect("cv runs");
        println!(
            "{:>8} {:>8.2}% {:>13.2}% {:>12}",
            ds.len(),
            100.0 * max_err(&fitted, &ds),
            100.0 * cv.max_err,
            fitted.nonzero_terms().unwrap_or(0),
        );
    }
    println!();

    c.bench_function("battery_18_layouts_measure_and_fit", |b| {
        b.iter(|| {
            let ds = measure_battery(platform, workload, 2, 20_000);
            ModelKind::Mosmodel.fit(&ds).unwrap()
        })
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = ablation }
criterion_main!(benches);
