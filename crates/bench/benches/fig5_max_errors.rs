//! Figure 5: per-benchmark maximal prediction errors of all nine models
//! on all three platforms.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig5(c: &mut Criterion) {
    let grid = bench_grid();
    let per_platform = figures::sensitive_by_platform(&grid);
    for matrix in figures::fig5(&grid, &per_platform) {
        println!("\nFigure 5 — {matrix}");
    }
    let (p, names) = per_platform[0].clone();
    let one = names[..1.min(names.len())].to_vec();
    c.bench_function("fig5/one_workload_row", |b| {
        b.iter(|| figures::error_matrix(&grid, p, &one, figures::ErrorStat::Max))
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig5 }
criterion_main!(benches);
