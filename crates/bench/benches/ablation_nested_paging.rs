//! Ablation: nested paging (virtualized execution), the context several
//! surveyed models come from (Gandhi, Pham).
//!
//! A 4KB/4KB guest/host configuration turns a 4-reference walk into up
//! to 24 references; backing the guest with 2MB host pages claws much of
//! it back. Runtime models must still hold on the virtualized machine —
//! this bench measures both the C inflation and the model errors on a
//! virtualized growing-window battery.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::MachineVariant;
use machine::{Engine, EngineConfig, Platform};
use mosmodel::dataset::{Dataset, LayoutKind, Sample};
use mosmodel::metrics::max_err;
use mosmodel::models::ModelKind;
use vmcore::{MemoryLayout, PageSize, Region, VirtAddr};
use workloads::{TraceParams, WorkloadSpec};

const ACCESSES: u64 = 60_000;

fn run(
    platform: &Platform,
    workload: &str,
    virtualized: Option<PageSize>,
    layout: &MemoryLayout,
) -> vmcore::PmuCounters {
    let spec = WorkloadSpec::by_name(workload).unwrap();
    let arena = layout.pool();
    let trace = spec.trace(&TraceParams::new(arena, ACCESSES, 0x7e57));
    let config = EngineConfig {
        virtualized,
        ..EngineConfig::default()
    };
    Engine::with_config(platform, config).run(trace, |va| layout.page_size_at(va))
}

fn battery(platform: &Platform, workload: &str, virtualized: Option<PageSize>) -> Dataset {
    let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20);
    layouts::growing_window(arena, 8)
        .iter()
        .enumerate()
        .map(|(i, layout)| {
            let kind = match i {
                0 => LayoutKind::All4K,
                8 => LayoutKind::All2M,
                _ => LayoutKind::Mixed,
            };
            Sample::from_counters(&run(platform, workload, virtualized, layout), kind)
        })
        .collect()
}

fn ablation(c: &mut Criterion) {
    let platform = &Platform::SANDY_BRIDGE;
    let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20);
    let all_4k = MemoryLayout::all_4k(arena);

    println!("\nAblation — nested paging (spec06/mcf, all-4KB guest layout):");
    println!(
        "{:<26} {:>12} {:>10} {:>10}",
        "configuration", "C", "C vs native", "R vs native"
    );
    let native = run(platform, "spec06/mcf", None, &all_4k);
    for (name, host) in [
        ("native", None),
        ("virtualized, 4KB host", Some(PageSize::Base4K)),
        ("virtualized, 2MB host", Some(PageSize::Huge2M)),
        ("virtualized, 1GB host", Some(PageSize::Huge1G)),
    ] {
        let counters = run(platform, "spec06/mcf", host, &all_4k);
        println!(
            "{:<26} {:>12} {:>9.2}x {:>9.2}x",
            name,
            counters.walk_cycles,
            counters.walk_cycles as f64 / native.walk_cycles as f64,
            counters.runtime_cycles as f64 / native.runtime_cycles as f64,
        );
    }

    println!("\nModel accuracy on the virtualized machine (growing-window battery, 4KB host):");
    let ds = battery(platform, "spec06/mcf", Some(PageSize::Base4K));
    for model in [ModelKind::Yaniv, ModelKind::Poly1, ModelKind::Mosmodel] {
        match model.fit(&ds) {
            Ok(fit) => println!(
                "  {:<10} max err {:>6.2}%",
                model.name(),
                100.0 * max_err(&fit, &ds)
            ),
            Err(e) => println!("  {:<10} {e}", model.name()),
        }
    }

    // The same validation over the full 54-layout battery, using the
    // grid's first-class machine-variant support.
    println!("\nFull 54-layout battery on the virtualized variant (all nine models):");
    let grid = bench_grid();
    let variant = MachineVariant {
        name: "SNB-virt-4K".into(),
        platform: platform.clone(),
        config: EngineConfig {
            virtualized: Some(PageSize::Base4K),
            ..EngineConfig::default()
        },
    };
    let full_ds = grid.entry_variant("spec06/mcf", &variant).dataset();
    for model in ModelKind::ALL {
        match model.fit(&full_ds) {
            Ok(fit) => {
                println!(
                    "  {:<10} max err {:>6.2}%",
                    model.name(),
                    100.0 * max_err(&fit, &full_ds)
                )
            }
            Err(e) => println!("  {:<10} {e}", model.name()),
        }
    }
    println!();

    c.bench_function("virtualized_run_60k", |b| {
        b.iter(|| run(platform, "spec06/mcf", Some(PageSize::Base4K), &all_4k))
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = ablation }
criterion_main!(benches);
