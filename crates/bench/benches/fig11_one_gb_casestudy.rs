//! Figure 11 / §VII-D: predicting the all-1GB layout from 4KB/2MB
//! training data — Yaniv vs Mosmodel, plus the full per-workload sweep.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{casestudy, figures};

fn fig11(c: &mut Criterion) {
    let grid = bench_grid();
    println!(
        "\nFigure 11 — {}\n",
        figures::fig11(&grid).expect("anchors")
    );
    let pairs = figures::sensitive_pairs(&grid);
    println!("§VII-D sweep (all TLB-sensitive pairs):");
    for v in casestudy::one_gb_sweep(&grid, &pairs) {
        println!("{v}");
    }
    c.bench_function("fig11/one_gb_prediction", |b| {
        b.iter(|| figures::fig11(&grid).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig11 }
criterion_main!(benches);
