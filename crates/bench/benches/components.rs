//! Component microbenchmarks: the simulator and regression building
//! blocks, measured in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use machine::{Engine, Platform};
use memsim::{MemorySubsystem, Translation};
use mosmodel::dataset::{Dataset, LayoutKind, Sample};
use mosmodel::lasso::fit_lasso;
use mosmodel::models::ModelKind;
use mosmodel::ols::fit_ols;
use mosmodel::poly::PolyFeatures;
use vmcore::{PageSize, Region, VirtAddr};
use workloads::{TraceParams, WorkloadSpec};

fn synthetic_dataset() -> Dataset {
    (0..54)
        .map(|i| {
            let c = 3e7 * i as f64;
            let kind = match i {
                0 => LayoutKind::All2M,
                53 => LayoutKind::All4K,
                _ => LayoutKind::Mixed,
            };
            Sample {
                r: 5e9 + 0.6 * c + 3e-10 * c * c,
                h: 1e4 + (i % 5) as f64,
                m: c / 90.0,
                c,
                kind,
            }
        })
        .collect()
}

fn bench_subsystem(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsim");
    group.bench_function("translate_warm_l1_hit", |b| {
        let mut vm = MemorySubsystem::new(&Platform::SANDY_BRIDGE);
        let va = VirtAddr::new(0x1000_0000);
        vm.translate(va, PageSize::Base4K);
        b.iter(|| black_box(vm.translate(va, PageSize::Base4K)));
    });
    group.bench_function("translate_walk_storm", |b| {
        let mut vm = MemorySubsystem::new(&Platform::BROADWELL);
        let mut page = 0u64;
        b.iter(|| {
            page = page.wrapping_add(0x9E37_79B9);
            let va = VirtAddr::new((page % (1 << 28)) << 12);
            black_box(vm.translate(va, PageSize::Base4K))
        });
    });
    group.bench_function("data_access_random", |b| {
        let mut vm = MemorySubsystem::new(&Platform::HASWELL);
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let va = VirtAddr::new(x % (512 << 20));
            black_box(vm.data_access(va, PageSize::Base4K))
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.throughput(criterion::Throughput::Elements(20_000));
    for platform in Platform::ALL {
        group.bench_function(format!("run_20k_gups_accesses/{}", platform.name), |b| {
            let spec = WorkloadSpec::by_name("gups/8GB").unwrap();
            let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20);
            b.iter(|| {
                let trace = spec.trace(&TraceParams::new(arena, 20_000, 7));
                Engine::new(platform).run(trace, |_| PageSize::Base4K)
            });
        });
    }
    group.finish();
}

fn bench_regression(c: &mut Criterion) {
    let data = synthetic_dataset();
    let mut group = c.benchmark_group("regression");
    group.bench_function("ols_poly3", |b| {
        b.iter(|| fit_ols(PolyFeatures::in_c(3), &data).unwrap())
    });
    group.bench_function("lasso_mosmodel_54_samples", |b| {
        b.iter(|| fit_lasso(PolyFeatures::mosmodel(), &data, 5).unwrap())
    });
    group.bench_function("closed_form_yaniv", |b| {
        b.iter(|| ModelKind::Yaniv.fit(&data).unwrap())
    });
    group.bench_function("kfold_mosmodel", |b| {
        b.iter(|| mosmodel::cv::k_fold(ModelKind::Mosmodel, &data, 6).unwrap())
    });
    group.finish();
}

fn bench_tracegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracegen");
    group.throughput(criterion::Throughput::Elements(10_000));
    let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20);
    for name in ["gups/8GB", "spec06/mcf", "gapbs/pr-twitter", "xsbench/4GB"] {
        let spec = WorkloadSpec::by_name(name).unwrap();
        group.bench_function(format!("10k/{}", name.replace('/', "_")), |b| {
            b.iter(|| {
                spec.trace(&TraceParams::new(arena, 10_000, 3))
                    .map(|a| a.addr.raw())
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

fn bench_walk_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("walker");
    let mut vm = MemorySubsystem::new(&Platform::SANDY_BRIDGE);
    // Measure the cost of cold walks specifically.
    let mut page = 0u64;
    group.bench_function("cold_walk_refs", |b| {
        b.iter(|| {
            page += 513; // skip PT-node sharing
            let va = VirtAddr::new(page << 12);
            match vm.translate(va, PageSize::Base4K).translation {
                Translation::Walk { info } => black_box(info.cycles),
                _ => 0,
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_subsystem,
    bench_engine,
    bench_regression,
    bench_tracegen,
    bench_walk_path
);
criterion_main!(benches);
