//! Figure 3: R(C) for spec06/mcf on SandyBridge — the linear model misses
//! the curvature Mosmodel captures.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig3(c: &mut Criterion) {
    let grid = bench_grid();
    println!("\nFigure 3 — {}\n", figures::fig3(&grid).expect("anchors"));
    c.bench_function("fig3/mcf_curve", |b| {
        b.iter(|| figures::fig3(&grid).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig3 }
criterion_main!(benches);
