//! Ablation: blind sampling vs multi-window sampling vs the full trace
//! (paper §II-C).
//!
//! The paper warns that the common "fast-forward then simulate a window"
//! practice can be nonrepresentative. Here both sampling schemes run at
//! the same 10% sampled fraction and their counters are compared with
//! the full-trace ground truth.

use criterion::{criterion_group, criterion_main, Criterion};
use machine::{Engine, Platform};
use vmcore::{PageSize, Region, VirtAddr};
use workloads::{sampling, Access, TraceParams, WorkloadSpec};

const FULL: u64 = 200_000;
const FRACTION: usize = 10; // keep 1/10th

fn counters(platform: &Platform, trace: impl Iterator<Item = Access>) -> (f64, f64, f64) {
    counters_with_warmup(platform, trace, 0)
}

/// Runs a trace, discarding the counters of the first `warmup` accesses
/// (functional warming: structures stay warm, statistics restart).
fn counters_with_warmup(
    platform: &Platform,
    trace: impl Iterator<Item = Access>,
    warmup: usize,
) -> (f64, f64, f64) {
    let mut engine = Engine::new(platform);
    let resolver = |_va| PageSize::Base4K;
    let mut trace = trace;
    let mut base = vmcore::PmuCounters::default();
    for (i, access) in trace.by_ref().enumerate() {
        engine.step(&access, &resolver);
        if i + 1 == warmup {
            base = engine.counters();
            break;
        }
    }
    for access in trace {
        engine.step(&access, &resolver);
    }
    let c = engine.counters();
    let n = (c.program_l1d_loads - base.program_l1d_loads).max(1) as f64;
    (
        (c.runtime_cycles - base.runtime_cycles) as f64 / n,
        (c.stlb_misses - base.stlb_misses) as f64 / n,
        (c.walk_cycles - base.walk_cycles) as f64 / n,
    )
}

fn ablation(c: &mut Criterion) {
    let platform = &Platform::SANDY_BRIDGE;
    println!(
        "\nAblation — sampling fidelity at a 1/{FRACTION} sampled fraction (per-access rates vs full trace):"
    );
    println!(
        "{:<20} {:>14} {:>14} {:>14} {:>16}",
        "workload", "blind R err", "windows R err", "blind C err", "warmed blind R"
    );
    for name in ["spec06/mcf", "graph500/4GB", "xsbench/8GB", "gups/16GB"] {
        let spec = WorkloadSpec::by_name(name).unwrap();
        let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20);
        let params = TraceParams::new(arena, FULL, 0x5a11);
        let truth = counters(platform, spec.trace(&params));
        let blind = counters(
            platform,
            sampling::blind(
                spec.trace(&params),
                FULL as usize / 2,
                FULL as usize / FRACTION,
            ),
        );
        let windowed = counters(
            platform,
            sampling::windows(spec.trace(&params), 2_000, 2_000 * FRACTION),
        );
        // Warmed blind sampling: same window, but the first half of the
        // window only warms the structures (counters discarded).
        let window = FULL as usize / FRACTION;
        let warmed = counters_with_warmup(
            platform,
            sampling::blind(spec.trace(&params), FULL as usize / 2, window + window / 2),
            window / 2,
        );
        let rel = |a: f64, b: f64| 100.0 * ((a - b) / b).abs();
        println!(
            "{:<20} {:>13.1}% {:>13.1}% {:>13.1}% {:>15.1}%",
            name,
            rel(blind.0, truth.0),
            rel(windowed.0, truth.0),
            rel(blind.2, truth.2),
            rel(warmed.0, truth.0),
        );
    }
    println!(
        "\n(blind = fast-forward half the trace, simulate one window; windows = same\n\
         fraction spread periodically; warmed = blind with functional warming before\n\
         counting. Cold-structure bias dominates the naive schemes — SimPoint-scale\n\
         errors — and warming removes most of it, as §II-C implies a validated\n\
         sampling method must.)\n"
    );

    let spec = WorkloadSpec::by_name("spec06/mcf").unwrap();
    let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20);
    let params = TraceParams::new(arena, FULL, 0x5a11);
    c.bench_function("sampled_run_10pct", |b| {
        b.iter(|| {
            counters(
                platform,
                sampling::windows(spec.trace(&params), 2_000, 2_000 * FRACTION),
            )
        })
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = ablation }
criterion_main!(benches);
