//! Ablation: first fit vs best fit vs worst fit for the anonymous pool.
//!
//! The paper chose first fit "because it performs better than the
//! alternatives of best fit and worst fit in terms of runtime complexity
//! and memory utilization" (§V). This bench measures both halves of that
//! claim on a malloc-style churn workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosalloc::{FirstFit, FitPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const POOL: u64 = 256 << 20;
const OPS: usize = 20_000;

/// Runs a churn workload; returns (peak high-water, final hole bytes).
fn churn(policy: FitPolicy, seed: u64) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alloc = FirstFit::with_policy(POOL, policy);
    let mut live: Vec<(u64, u64)> = Vec::new();
    let mut peak = 0;
    for _ in 0..OPS {
        if live.len() < 64 || rng.gen_bool(0.55) {
            // Mixed sizes: mostly small, occasionally huge (the pattern
            // that fragments pools).
            let len = if rng.gen_bool(0.9) {
                rng.gen_range(1..=64u64) * 4096
            } else {
                rng.gen_range(1..=16u64) * (2 << 20)
            };
            if let Some(start) = alloc.alloc(len, 4096) {
                live.push((start, len));
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            let (start, len) = live.swap_remove(idx);
            alloc.free(start, len).expect("valid free");
        }
        peak = peak.max(alloc.high_water());
    }
    (peak, alloc.hole_bytes())
}

fn ablation(c: &mut Criterion) {
    println!("\nAblation — pool fit policy under malloc-style churn ({OPS} ops):");
    println!(
        "{:<10} {:>16} {:>18}",
        "policy", "peak highwater", "final hole bytes"
    );
    for policy in [FitPolicy::FirstFit, FitPolicy::BestFit, FitPolicy::WorstFit] {
        let (peak, holes) = churn(policy, 42);
        println!(
            "{:<10} {:>13} KB {:>15} KB",
            format!("{policy:?}"),
            peak >> 10,
            holes >> 10
        );
    }
    println!();

    let mut group = c.benchmark_group("fit_policy_churn");
    for policy in [FitPolicy::FirstFit, FitPolicy::BestFit, FitPolicy::WorstFit] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &p| b.iter(|| churn(p, 7)),
        );
    }
    group.finish();
}

criterion_group! { name = benches; config = bench::criterion(); targets = ablation }
criterion_main!(benches);
