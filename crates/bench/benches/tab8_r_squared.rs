//! Table 8: R² of single-variable linear regressors in C, M and H.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, tables};

fn tab8(c: &mut Criterion) {
    let grid = bench_grid();
    let pairs = figures::sensitive_pairs(&grid);
    println!("\n{}\n", tables::tab8(&grid, &pairs));
    c.bench_function("tab8/r_squared_all_pairs", |b| {
        b.iter(|| tables::tab8(&grid, &pairs))
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = tab8 }
criterion_main!(benches);
