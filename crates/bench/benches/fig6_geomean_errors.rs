//! Figure 6: per-benchmark geometric-mean prediction errors.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig6(c: &mut Criterion) {
    let grid = bench_grid();
    let per_platform = figures::sensitive_by_platform(&grid);
    for matrix in figures::fig6(&grid, &per_platform) {
        println!("\nFigure 6 — {matrix}");
    }
    let (p, names) = per_platform[0].clone();
    let one = names[..1.min(names.len())].to_vec();
    c.bench_function("fig6/one_workload_row", |b| {
        b.iter(|| figures::error_matrix(&grid, p, &one, figures::ErrorStat::GeoMean))
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig6 }
criterion_main!(benches);
