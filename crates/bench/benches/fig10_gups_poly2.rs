//! Figure 10: gups/16GB on SandyBridge — poly1 cannot follow the convex
//! R(C) curve, poly2 can.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig10(c: &mut Criterion) {
    let grid = bench_grid();
    println!(
        "\nFigure 10 — {}\n",
        figures::fig10(&grid).expect("anchors")
    );
    c.bench_function("fig10/gups_poly_fit", |b| {
        b.iter(|| figures::fig10(&grid).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig10 }
criterion_main!(benches);
