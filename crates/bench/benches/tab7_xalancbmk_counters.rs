//! Table 7: spec17/xalancbmk_s counters under 4KB vs 2MB pages on
//! Broadwell, split between program and walker references.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::tables;

fn tab7(c: &mut Criterion) {
    let grid = bench_grid();
    let table = tables::tab7(&grid).expect("anchors");
    println!("\n{table}");
    let (l3_4k, l3_2m) = table.l3_pollution();
    println!(
        "\nwalker-induced L3 pollution: {l3_4k} total L3 loads with 4KB pages vs {l3_2m} with 2MB\n"
    );
    c.bench_function("tab7/counter_extraction", |b| {
        b.iter(|| tables::tab7(&grid).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = tab7 }
criterion_main!(benches);
