//! The Figure-1 methodology, end to end: runtime models + partial
//! simulation predicting hypothetical designs, checked against full
//! simulation; plus §IV's cross-processor transfer experiment.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::methodology::{explore_design, transfer_error};
use machine::Platform;
use memsim::StlbGeometry;
use mosmodel::models::ModelKind;
use vmcore::PageSize;

fn methodology(c: &mut Criterion) {
    let grid = bench_grid();
    let base = &Platform::SANDY_BRIDGE;

    println!("\nFigure-1 loop — predict hypothetical designs (4KB runs, model: per row):");
    println!(
        "{:<18} {:<10} {:>12} {:>12} {:>8}",
        "design", "model", "predicted R", "full-sim R", "err"
    );
    let big_stlb = Platform {
        stlb: StlbGeometry {
            entries: 2048,
            ways: 8,
            holds_2m: true,
            entries_1g: 0,
        },
        ..base.clone()
    };
    let two_walkers = Platform {
        walkers: 2,
        ..base.clone()
    };
    for workload in ["xsbench/8GB", "gups/16GB"] {
        for (name, design) in [("big-stlb", &big_stlb), ("2-walkers", &two_walkers)] {
            for model in [ModelKind::Yaniv, ModelKind::Mosmodel] {
                let p =
                    explore_design(&grid, workload, base, design, name, model, PageSize::Base4K)
                        .expect("anchors");
                println!(
                    "{:<18} {:<10} {:>12.0} {:>12.0} {:>7.1}%  ({workload})",
                    name,
                    model.name(),
                    p.predicted_r,
                    p.simulated_r,
                    100.0 * p.error()
                );
            }
        }
    }

    println!("\n§IV transfer — model fitted on P, evaluated on P̄'s data (gups/16GB, mosmodel):");
    for from in Platform::ALL {
        for to in Platform::ALL {
            let e =
                transfer_error(&grid, "gups/16GB", from, to, ModelKind::Mosmodel).expect("anchors");
            print!(
                "  {}→{}: {:>6.1}%",
                &from.name[..3],
                &to.name[..3],
                100.0 * e
            );
        }
        println!();
    }
    println!();

    c.bench_function("figure1_loop_one_design", |b| {
        b.iter(|| {
            explore_design(
                &grid,
                "gups/16GB",
                base,
                &two_walkers,
                "2-walkers",
                ModelKind::Mosmodel,
                PageSize::Base4K,
            )
            .unwrap()
        })
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = methodology }
criterion_main!(benches);
