//! Ablation: hardware structures behind the paper's observations.
//!
//! * **Page-walk caches**: §II-B argues partial simulators must model
//!   PWCs "to accurately calculate the number of walk cycles" — here is
//!   how wrong `C` gets without them.
//! * **Second walker**: Broadwell's twin walkers make the `C` counter
//!   double-count (§VI-D); removing one walker removes the pathology.

use criterion::{criterion_group, criterion_main, Criterion};
use machine::{Engine, Platform};
use memsim::PwcGeometry;
use vmcore::{PageSize, Region, VirtAddr};
use workloads::{TraceParams, WorkloadSpec};

fn run(platform: &Platform, workload: &str, accesses: u64) -> vmcore::PmuCounters {
    let spec = WorkloadSpec::by_name(workload).unwrap();
    let arena = Region::new(VirtAddr::new(0x1000_0000_0000), 256 << 20);
    let trace = spec.trace(&TraceParams::new(arena, accesses, 0xdead));
    Engine::new(platform).run(trace, |_| PageSize::Base4K)
}

fn ablation(c: &mut Criterion) {
    let accesses = 80_000;

    // --- PWC on/off ---
    println!("\nAblation — page-walk caches (spec06/mcf, all-4KB):");
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "platform", "C with PWC", "C w/o PWC", "C ratio"
    );
    for base in Platform::ALL {
        let no_pwc = Platform {
            pwc: PwcGeometry {
                pml4e: 0,
                pdpte: 0,
                pde: 0,
            },
            ..base.clone()
        };
        let with = run(base, "spec06/mcf", accesses);
        let without = run(&no_pwc, "spec06/mcf", accesses);
        println!(
            "{:<14} {:>12} {:>12} {:>9.2}x",
            base.name,
            with.walk_cycles,
            without.walk_cycles,
            without.walk_cycles as f64 / with.walk_cycles.max(1) as f64
        );
    }

    // --- 1 vs 2 walkers on Broadwell ---
    println!("\nAblation — walker count (gups/32GB on Broadwell, all-4KB):");
    for walkers in [1u32, 2] {
        let platform = Platform {
            walkers,
            ..Platform::BROADWELL.clone()
        };
        let counters = run(&platform, "gups/32GB", accesses);
        println!(
            "  {walkers} walker(s): R = {:>10}, C = {:>10}, C/R = {:.2} {}",
            counters.runtime_cycles,
            counters.walk_cycles,
            counters.walk_cycles as f64 / counters.runtime_cycles as f64,
            if counters.walk_cycles > counters.runtime_cycles {
                "→ Basu's β goes negative"
            } else {
                ""
            }
        );
    }
    println!();

    c.bench_function("engine_run_80k_no_pwc", |b| {
        let no_pwc = Platform {
            pwc: PwcGeometry {
                pml4e: 0,
                pdpte: 0,
                pde: 0,
            },
            ..Platform::SANDY_BRIDGE.clone()
        };
        b.iter(|| run(&no_pwc, "spec06/mcf", 20_000))
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = ablation }
criterion_main!(benches);
