//! Figure 9: the poly1 slope for spec17/xalancbmk_s on Broadwell exceeds
//! 1 (cache pollution makes walks cost more than their cycles).

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig9(c: &mut Criterion) {
    let grid = bench_grid();
    println!("\n{}\n", figures::fig9(&grid).expect("anchors"));
    c.bench_function("fig9/xalancbmk_slope", |b| {
        b.iter(|| figures::fig9(&grid).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig9 }
criterion_main!(benches);
