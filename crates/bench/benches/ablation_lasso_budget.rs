//! Ablation: Mosmodel's non-zero-term budget.
//!
//! The paper's Lasso "leaves only 5 nonzero coefficients or less"
//! (one-in-ten rule against 54 samples). This bench sweeps the budget
//! from 1 to 10 terms and reports training and cross-validation errors —
//! showing where extra flexibility stops paying.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::Grid;
use machine::Platform;
use mosmodel::lasso::fit_lasso;
use mosmodel::metrics::max_err;
use mosmodel::poly::PolyFeatures;
use mosmodel::Dataset;

fn cv_lasso(ds: &Dataset, budget: usize, k: usize) -> f64 {
    let mut worst = 0.0f64;
    for fold in 0..k {
        let train_idx: Vec<usize> = (0..ds.len()).filter(|i| i % k != fold).collect();
        let test_idx: Vec<usize> = (0..ds.len()).filter(|i| i % k == fold).collect();
        let fit = fit_lasso(PolyFeatures::mosmodel(), &ds.subset(&train_idx), budget)
            .expect("enough samples");
        worst = worst.max(max_err(&fit, &ds.subset(&test_idx)));
    }
    worst
}

fn ablation(c: &mut Criterion) {
    let grid: Grid = bench_grid();
    let pairs = [
        ("spec06/mcf", &Platform::SANDY_BRIDGE),
        ("gups/16GB", &Platform::BROADWELL),
        ("xsbench/8GB", &Platform::HASWELL),
    ];
    println!("\nAblation — Lasso term budget (paper uses ≤ 5):");
    println!(
        "{:>7} {:>28} {:>28}",
        "budget", "worst fit err (3 pairs)", "worst 6-fold CV err"
    );
    for budget in [1usize, 2, 3, 5, 8, 10] {
        let mut fit_worst = 0.0f64;
        let mut cv_worst = 0.0f64;
        for (w, p) in pairs {
            let ds = grid.dataset(w, p);
            let fit = fit_lasso(PolyFeatures::mosmodel(), &ds, budget).expect("fits");
            fit_worst = fit_worst.max(max_err(&fit, &ds));
            cv_worst = cv_worst.max(cv_lasso(&ds, budget, 6));
        }
        println!(
            "{:>7} {:>27.2}% {:>27.2}%",
            budget,
            100.0 * fit_worst,
            100.0 * cv_worst
        );
    }
    println!();

    let ds = grid.dataset("spec06/mcf", &Platform::SANDY_BRIDGE);
    c.bench_function("lasso_budget_5_fit", |b| {
        b.iter(|| fit_lasso(PolyFeatures::mosmodel(), &ds, 5).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = ablation }
criterion_main!(benches);
