//! Table 6: maximal K-fold cross-validation errors of the new models.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, tables};

fn tab6(c: &mut Criterion) {
    let grid = bench_grid();
    let pairs = figures::sensitive_pairs(&grid);
    println!("\n{}\n", tables::tab6(&grid, &pairs, 6));
    let one_pair = &pairs[..1.min(pairs.len())];
    c.bench_function("tab6/kfold_one_pair", |b| {
        b.iter(|| tables::tab6(&grid, one_pair, 6))
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = tab6 }
criterion_main!(benches);
