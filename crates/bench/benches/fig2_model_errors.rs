//! Figure 2: aggregated maximal errors of old (2a) and new (2b) models
//! over every TLB-sensitive (workload, platform) pair.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig2(c: &mut Criterion) {
    let grid = bench_grid();
    let pairs = figures::sensitive_pairs(&grid);
    println!("\n{}\n", figures::fig2(&grid, &pairs));
    // Timing the full figure would refit every model on every pair per
    // iteration; time the per-pair kernel instead.
    let one_pair = &pairs[..1.min(pairs.len())];
    c.bench_function("fig2/fit_and_score_one_pair", |b| {
        b.iter(|| figures::fig2(&grid, one_pair))
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig2 }
criterion_main!(benches);
