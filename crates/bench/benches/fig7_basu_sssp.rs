//! Figure 7: the Basu model's optimistic predictions for
//! gapbs/sssp-twitter on SandyBridge.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig7(c: &mut Criterion) {
    let grid = bench_grid();
    println!("\n{}\n", figures::fig7(&grid).expect("anchors"));
    c.bench_function("fig7/basu_optimism", |b| {
        b.iter(|| figures::fig7(&grid).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig7 }
criterion_main!(benches);
