//! Figure 8: linear regression describes spec06/omnetpp well.

use bench::bench_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::figures;

fn fig8(c: &mut Criterion) {
    let grid = bench_grid();
    println!("\nFigure 8 — {}\n", figures::fig8(&grid).expect("anchors"));
    c.bench_function("fig8/omnetpp_poly1", |b| {
        b.iter(|| figures::fig8(&grid).unwrap())
    });
}

criterion_group! { name = benches; config = bench::criterion(); targets = fig8 }
criterion_main!(benches);
