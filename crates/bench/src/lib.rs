//! Shared setup for the benchmark harness.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper: it prints the full result during setup (the reproduction), then
//! times a representative kernel with Criterion so `cargo bench` also
//! reports meaningful performance numbers.
//!
//! The measurement grid is disk-cached under `target/mosaic-cache`, so
//! only the first bench invocation pays for simulation; set
//! `MOSAIC_FAST=1` for a quick low-fidelity pass.

use harness::{Grid, Speed};
use machine::{profile_tlb_misses, Engine, Platform};
use mosmodel::dataset::{Dataset, LayoutKind, Sample};
use vmcore::{MemoryLayout, PageSize, Region, VirtAddr};
use workloads::{TraceParams, WorkloadSpec};

/// Builds the benchmark grid with the standard disk cache.
pub fn bench_grid() -> Grid {
    Grid::new(Speed::from_env())
}

/// Criterion configured for heavyweight end-to-end kernels.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .configure_from_args()
}

/// Measures a custom-size layout battery for one (workload, platform)
/// pair, bypassing the grid cache — used by the ablation benches that
/// vary the battery itself.
///
/// Returns the fitting dataset (no all-1GB sample).
pub fn measure_battery(
    platform: &'static Platform,
    workload: &str,
    steps: usize,
    accesses: u64,
) -> Dataset {
    let spec = WorkloadSpec::by_name(workload).expect("known workload");
    let speed = Speed::from_env();
    let footprint = speed.footprint(spec.nominal_footprint);
    let arena = Region::new(VirtAddr::new(mosalloc::HEAP_POOL_BASE), footprint);
    let params = TraceParams::new(arena, accesses, 0xab1a);
    let profile = profile_tlb_misses(platform, spec.trace(&params), arena, 2 << 20);
    let battery = layouts::battery_with_steps(arena, |x| profile.hot_region(x), steps);
    battery
        .into_iter()
        .map(|planned| {
            let layout = planned.layout;
            let counters =
                Engine::new(platform).run(spec.trace(&params), |va| layout.page_size_at(va));
            let kind = classify(&layout);
            Sample::from_counters(&counters, kind)
        })
        .collect()
}

fn classify(layout: &MemoryLayout) -> LayoutKind {
    if layout.windows().is_empty() {
        LayoutKind::All4K
    } else if layout.bytes_backed_by(PageSize::Base4K) == 0 {
        LayoutKind::All2M
    } else {
        LayoutKind::Mixed
    }
}
