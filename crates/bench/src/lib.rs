//! Shared setup for the benchmark harness.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper: it prints the full result during setup (the reproduction), then
//! times a representative kernel with Criterion so `cargo bench` also
//! reports meaningful performance numbers.
//!
//! The measurement grid is disk-cached under `target/mosaic-cache`, so
//! only the first bench invocation pays for simulation; set
//! `MOSAIC_FAST=1` for a quick low-fidelity pass.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use harness::{
    measure_layout, measure_layout_traced, Grid, MachineVariant, MeasureContext, SampledConfig,
    Speed,
};
use libc::{poll_fds, pollfd, POLLIN, POLLOUT};
use machine::{profile_tlb_misses, Engine, Platform};
use mosmodel::dataset::{Dataset, LayoutKind, Sample};
use service::client::Client;
use service::registry::ModelRegistry;
use service::server::{Server, ServerConfig};
use vmcore::{MemoryLayout, PageSize, Region, VirtAddr};
use workloads::{TraceParams, WorkloadSpec};

pub mod codec;

use codec::{
    BenchReport, ConnsBench, GridBench, GridParBench, GridSampledBench, RecommendBench,
    ServiceBench,
};

/// Builds the benchmark grid with the standard disk cache.
pub fn bench_grid() -> Grid {
    Grid::new(Speed::from_env())
}

/// Criterion configured for heavyweight end-to-end kernels.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .configure_from_args()
}

/// Measures a custom-size layout battery for one (workload, platform)
/// pair, bypassing the grid cache — used by the ablation benches that
/// vary the battery itself.
///
/// Returns the fitting dataset (no all-1GB sample).
pub fn measure_battery(
    platform: &'static Platform,
    workload: &str,
    steps: usize,
    accesses: u64,
) -> Dataset {
    let spec = WorkloadSpec::by_name(workload).expect("known workload");
    let speed = Speed::from_env();
    let footprint = speed.footprint(spec.nominal_footprint);
    let arena = Region::new(VirtAddr::new(mosalloc::HEAP_POOL_BASE), footprint);
    let params = TraceParams::new(arena, accesses, 0xab1a);
    let profile = profile_tlb_misses(platform, spec.trace(&params), arena, 2 << 20);
    let battery = layouts::battery_with_steps(arena, |x| profile.hot_region(x), steps);
    battery
        .into_iter()
        .map(|planned| {
            let layout = planned.layout;
            let counters =
                Engine::new(platform).run(spec.trace(&params), |va| layout.page_size_at(va));
            let kind = classify(&layout);
            Sample::from_counters(&counters, kind)
        })
        .collect()
}

/// Warm predict requests timed against the in-process server, after
/// the separately-timed cold request that absorbs the model fit.
const SERVICE_REQUESTS: usize = 32;

/// Warm recommend requests timed after the cold one (which pays
/// candidate enumeration, scoring, and the K-fold CV error; the warm
/// ones hit the recommendation cache).
const RECOMMEND_REQUESTS: usize = 16;

/// Hugepage budget the recommend leg asks about — small enough to be
/// admissible against the smallest pool any preset produces (48MB).
const RECOMMEND_BUDGET: &str = "8x2m";

/// Connection counts the concurrency leg sweeps. The largest is far
/// beyond the worker count, so its throughput only holds up if the
/// serving plane multiplexes connections instead of parking a thread
/// on each one.
const CONNS_LEVELS: [usize; 3] = [1, 16, 256];

/// Total warm predicts issued per concurrency level, split evenly
/// across the level's connections so every level does the same work.
const CONNS_TOTAL_REQUESTS: usize = 2048;

/// Layout specs the service and concurrency legs rotate through; all
/// windows fit the smallest pool any preset produces (48MB).
const LAYOUT_SPECS: [&str; 6] = ["4k", "2m", "1g", "2m:0..8M", "2m:8M..24M", "2m:0..32M"];

/// Runs the end-to-end benchmark suite: the grid battery (throughput)
/// and the mosaicd request path (latency), both for one
/// `(workload, platform)` pair at the given fidelity.
///
/// The grid leg times a cold in-memory battery fit — `records` layout
/// measurements through the full simulation stack — and reports demand
/// accesses per wall-clock second, the figure the hot-path work in
/// `memsim`/`machine` is meant to move. The service leg then starts a
/// real TCP server over the same (now warm) grid and times the first
/// request cold (it pays the model fit under the registry's
/// singleflight latch — the cost `warm` moves off the request path)
/// before timing the steady state, whose numbers isolate per-request
/// work: one `measure_layout` plus model application per predict.
///
/// # Panics
///
/// Panics on an unknown workload/platform or if the loopback server
/// cannot bind — all setup errors, not measurement outcomes.
pub fn run_bench(speed: Speed, workload: &str, platform: &'static Platform) -> BenchReport {
    let spec = WorkloadSpec::by_name(workload).expect("known workload");
    let grid = Grid::in_memory(speed);

    let started = Instant::now();
    let entry = grid.entry(workload, platform);
    let wall = started.elapsed();

    let records = entry.records.len() as u64;
    // Every record replays the same trace at least once; FAST/FULL stop
    // at one repetition when the runtime variation bound already holds,
    // so the per-record access count is the trace length.
    let accesses = records * speed.trace_len(spec.access_factor);
    let wall_seconds = wall.as_secs_f64();
    let grid_bench = GridBench {
        records,
        accesses,
        wall_seconds,
        accesses_per_sec: accesses as f64 / wall_seconds,
        trace_overhead_pct: trace_overhead_pct(speed, workload, platform),
    };

    let grid_par_bench = grid_par_bench(speed, workload, platform, &entry);
    let grid_sampled_bench = grid_sampled_bench(platform);

    // The service leg reuses the grid (and its cached entry), so the
    // first predict pays only the model fit, not a second battery. The
    // admission bound is raised above the concurrency leg's largest
    // sweep so none of its connections are turned away `busy`.
    let registry = ModelRegistry::new(grid, None);
    let config = ServerConfig {
        queue_bound: 1024,
        ..Default::default()
    };
    let server = Server::start(config, registry).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect to own server");

    let layout_specs = LAYOUT_SPECS;

    // The first request through the server is deliberately cold: it
    // blocks on the registry's singleflight model fit, so its latency
    // is exactly what a `warm` request (or `mosaic serve --warm`) moves
    // off the request path.
    let cold_started = Instant::now();
    client
        .predict(workload, platform.name, layout_specs[0], None)
        .expect("cold predict");
    let cold_us = cold_started.elapsed().as_micros() as f64;
    let after_cold = server.stats();
    // The server traced the cold request into its ring; the newest
    // wall-domain predict trace is its stage breakdown (read/parse/
    // fit/cache_lookup/simulate/render, µs since the first byte).
    let cold_stages = client
        .trace(8)
        .ok()
        .and_then(|(traces, _dropped)| {
            traces
                .into_iter()
                .rev()
                .find(|t| t.label == "predict" && t.domain == obs::ClockDomain::Wall)
        })
        .map_or_else(|| "-".to_string(), |t| stage_tokens(&t.spans));

    let mut total = Duration::ZERO;
    for i in 0..SERVICE_REQUESTS {
        let layout = layout_specs[i % layout_specs.len()];
        let one = Instant::now();
        client
            .predict(workload, platform.name, layout, None)
            .expect("timed predict");
        total += one.elapsed();
    }
    // Percentiles come from the server's own histogram, as the delta
    // over the cold request's snapshot so the fit doesn't pollute the
    // warm distribution; the mean is client-side, so it also includes
    // the loopback round-trip.
    let snap = server.stats();
    let mut warm_buckets = snap.buckets;
    for (warm, cold) in warm_buckets.iter_mut().zip(after_cold.buckets) {
        *warm = warm.saturating_sub(cold);
    }
    let warm_only = service::metrics::StatsSnapshot {
        buckets: warm_buckets,
        ..snap
    };
    let service_bench = ServiceBench {
        requests: SERVICE_REQUESTS as u64,
        cold_us,
        cold_stages,
        mean_us: total.as_micros() as f64 / SERVICE_REQUESTS as f64,
        p50_us: warm_only.percentile_us(50),
        p90_us: warm_only.percentile_us(90),
        p99_us: warm_only.percentile_us(99),
    };

    // The recommend leg rides the already-fitted pair: the cold request
    // pays candidate enumeration, per-candidate scoring (warming the
    // prediction cache), and the K-fold CV error; the warm ones are
    // recommendation-cache hits, so the gap is what the cache buys.
    let rec_cold_started = Instant::now();
    client
        .recommend(workload, platform.name, RECOMMEND_BUDGET, None)
        .expect("cold recommend");
    let rec_cold_us = rec_cold_started.elapsed().as_micros() as f64;
    let mut rec_total = Duration::ZERO;
    for _ in 0..RECOMMEND_REQUESTS {
        let one = Instant::now();
        client
            .recommend(workload, platform.name, RECOMMEND_BUDGET, None)
            .expect("timed recommend");
        rec_total += one.elapsed();
    }
    let recommend_bench = RecommendBench {
        rec_requests: RECOMMEND_REQUESTS as u64,
        rec_cold_us,
        rec_mean_us: rec_total.as_micros() as f64 / RECOMMEND_REQUESTS as f64,
    };

    // The concurrency leg sweeps warm-path throughput at 1, 16, and
    // 256 connections against the same (fully warmed) server. Every
    // layout below was already predicted, so each request is a
    // prediction-cache hit and the sweep isolates the serving plane.
    let [one, sixteen, two_fifty_six] =
        CONNS_LEVELS.map(|conns| conns_qps(server.addr(), workload, platform.name, conns));
    let conns_bench = ConnsBench {
        conns_1_qps: one,
        conns_16_qps: sixteen,
        conns_256_qps: two_fifty_six,
    };
    server.shutdown();

    BenchReport {
        date: today_utc(),
        speed: speed.name.to_string(),
        workload: workload.to_string(),
        platform: platform.name.to_string(),
        grid: grid_bench,
        grid_par: grid_par_bench,
        grid_sampled: grid_sampled_bench,
        service: service_bench,
        recommend: recommend_bench,
        conns: conns_bench,
    }
}

/// Times the identical cold battery twice on fresh in-memory grids —
/// serially (`jobs=1`) and with the resolved worker fan-out — and
/// reports the measured speedup. Both rebuilt entries are checked
/// against the reference entry the main grid leg produced: the speedup
/// only counts if the parallel build is answer-identical.
fn grid_par_bench(
    speed: Speed,
    workload: &str,
    platform: &'static Platform,
    reference: &harness::GridEntry,
) -> GridParBench {
    let jobs = harness::resolve_jobs(None).max(2);

    let serial_grid = Grid::in_memory(speed).with_jobs(1);
    let t1 = Instant::now();
    let serial = serial_grid.entry(workload, platform);
    let par_1_wall_seconds = t1.elapsed().as_secs_f64();

    let parallel_grid = Grid::in_memory(speed).with_jobs(jobs);
    let tn = Instant::now();
    let parallel = parallel_grid.entry(workload, platform);
    let par_n_wall_seconds = tn.elapsed().as_secs_f64();

    assert_eq!(
        *serial, *reference,
        "serial rebuild diverged from the reference battery"
    );
    assert_eq!(
        *parallel, *reference,
        "parallel rebuild diverged from the reference battery"
    );
    GridParBench {
        par_jobs: jobs as u64,
        par_1_wall_seconds,
        par_n_wall_seconds,
        par_speedup: if par_n_wall_seconds > 0.0 {
            par_1_wall_seconds / par_n_wall_seconds
        } else {
            0.0
        },
    }
}

/// The sampled leg's fixed preset: a trace long enough for the
/// cold-split extrapolation to amortize the pool's compulsory fills,
/// so the honest 5% gate genuinely accepts (probed max anchor error
/// ≈ 4.3%, deterministic). Independent of the session's speed preset —
/// the leg benchmarks the sampling pipeline itself, and gate acceptance
/// is a property of (workload, trace length, window, period), not of
/// the caller's fidelity choice.
const SAMPLED_BENCH_SPEED: Speed = Speed {
    name: "sampled-bench",
    footprint_div: 1 << 30,
    min_footprint: 2 << 20,
    accesses: 2_000_000,
    max_reps: 1,
};

/// The sampled leg's configuration: keep 1k of every 5k accesses (20%)
/// under the default 5% gate bound.
const SAMPLED_BENCH_CFG: SampledConfig = SampledConfig {
    window: 1_000,
    period: 5_000,
    bound: 0.05,
};

/// Workload the sampled leg measures; uniform-random gups is the
/// calibrated pairing for [`SAMPLED_BENCH_SPEED`].
const SAMPLED_BENCH_WORKLOAD: &str = "gups/8GB";

/// Times the identical cold battery twice on fresh in-memory grids —
/// once with validated interval sampling and once full — and reports
/// the measured speedup plus the gate's measured anchor error. The leg
/// panics if the gate rejects: a rejected battery silently falls back
/// to full measurement, which would make the reported "speedup" a
/// comparison of two full builds.
fn grid_sampled_bench(platform: &'static Platform) -> GridSampledBench {
    let cfg = SAMPLED_BENCH_CFG;
    let sampled_grid = Grid::in_memory(SAMPLED_BENCH_SPEED).with_sampled(cfg);
    let t0 = Instant::now();
    let sampled = sampled_grid.entry(SAMPLED_BENCH_WORKLOAD, platform);
    let sampled_wall_seconds = t0.elapsed().as_secs_f64();
    let gate = sampled
        .gate
        .expect("sampled grids always carry a gate verdict");
    assert!(
        gate.accepted,
        "the sampled bench gate must accept its calibrated config: max_rel_err {}",
        gate.max_rel_err
    );

    let full_grid = Grid::in_memory(SAMPLED_BENCH_SPEED);
    let t1 = Instant::now();
    let full = full_grid.entry(SAMPLED_BENCH_WORKLOAD, platform);
    let sampled_full_wall_seconds = t1.elapsed().as_secs_f64();
    assert_eq!(
        sampled.records.len(),
        full.records.len(),
        "sampled and full batteries must measure the same layout list"
    );

    GridSampledBench {
        sampled_window: cfg.window,
        sampled_period: cfg.period,
        sampled_bound: cfg.bound,
        sampled_anchor_err: gate.max_rel_err,
        sampled_wall_seconds,
        sampled_full_wall_seconds,
        sampled_speedup: if sampled_wall_seconds > 0.0 {
            sampled_full_wall_seconds / sampled_wall_seconds
        } else {
            0.0
        },
    }
}

/// One load-generator connection: a nonblocking socket with exactly one
/// request in flight at a time.
struct LoadConn {
    stream: TcpStream,
    /// Unsent bytes of the current request; empty while awaiting a reply.
    to_write: Vec<u8>,
    /// Reply bytes accumulated so far (at most one line, since only one
    /// request is ever in flight).
    reply: Vec<u8>,
    /// Requests fully written so far — rotates the layout spec.
    sent: usize,
    /// Replies still expected before this connection is finished.
    remaining: usize,
}

/// Warm-path predict throughput with `conns` concurrent connections,
/// each keeping exactly one request in flight. A single thread drives
/// every connection through one `poll(2)` loop, so the figure measures
/// the serving plane's scalability rather than client-side thread
/// scheduling: at 1 connection the exchange is a strict ping-pong
/// (bounded by per-request wakeups on both sides), while at 256 the
/// server sees hundreds of in-flight requests per readiness wakeup and
/// can batch its reads, dispatches, and reply writes.
fn conns_qps(addr: SocketAddr, workload: &str, platform: &str, conns: usize) -> f64 {
    let per_conn = (CONNS_TOTAL_REQUESTS / conns).max(1);
    let request = |i: usize| {
        let layout = LAYOUT_SPECS[i % LAYOUT_SPECS.len()];
        format!("predict {workload} {platform} {layout}\n").into_bytes()
    };
    let mut loaders: Vec<LoadConn> = (0..conns)
        .map(|_| {
            let stream = TcpStream::connect(addr).expect("connect load connection");
            stream
                .set_nodelay(true)
                .expect("nodelay on load connection");
            stream
                .set_nonblocking(true)
                .expect("nonblocking load connection");
            LoadConn {
                stream,
                to_write: request(0),
                reply: Vec::new(),
                sent: 0,
                remaining: per_conn,
            }
        })
        .collect();
    let total = per_conn * conns;
    let mut done = 0usize;
    let started = Instant::now();
    while done < total {
        let mut fds: Vec<pollfd> = loaders
            .iter()
            .map(|conn| pollfd {
                fd: conn.stream.as_raw_fd(),
                events: if conn.remaining == 0 {
                    0
                } else if conn.to_write.is_empty() {
                    POLLIN
                } else {
                    POLLOUT
                },
                revents: 0,
            })
            .collect();
        poll_fds(&mut fds, 1000).expect("poll load connections");
        for (conn, fd) in loaders.iter_mut().zip(&fds) {
            if fd.revents == 0 || conn.remaining == 0 {
                continue;
            }
            if !conn.to_write.is_empty() {
                match conn.stream.write(&conn.to_write) {
                    Ok(n) => {
                        conn.to_write.drain(..n);
                        if conn.to_write.is_empty() {
                            conn.sent += 1;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("load-connection write failed: {e}"),
                }
                continue;
            }
            let mut chunk = [0u8; 512];
            match conn.stream.read(&mut chunk) {
                Ok(0) => panic!("server closed a load connection"),
                Ok(n) => {
                    conn.reply.extend_from_slice(&chunk[..n]);
                    while let Some(nl) = conn.reply.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = conn.reply.drain(..=nl).collect();
                        assert!(
                            line.starts_with(b"ok "),
                            "load predict failed: {}",
                            String::from_utf8_lossy(&line)
                        );
                        done += 1;
                        conn.remaining -= 1;
                        if conn.remaining > 0 {
                            conn.to_write = request(conn.sent);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("load-connection read failed: {e}"),
            }
        }
    }
    total as f64 / started.elapsed().as_secs_f64()
}

/// Renders wall-domain spans as space-separated `stage:start..end`
/// tokens for the bench report (the report codec treats a comma as
/// end-of-value, so the wire format's comma separator is unusable).
fn stage_tokens(spans: &[obs::Span]) -> String {
    if spans.is_empty() {
        return "-".to_string();
    }
    spans
        .iter()
        .map(|s| format!("{}:{}..{}", s.stage, s.start, s.end))
        .collect::<Vec<_>>()
        .join(" ")
}

/// How many interleaved traced/untraced `measure_layout` pairs the
/// overhead gate times (min-of-k on each arm).
const OVERHEAD_REPS: usize = 5;

/// Measures the relative wall-clock cost of running `measure_layout`
/// with a span recorder attached, in percent. Min-of-k on interleaved
/// runs: both arms get their best case, so scheduler noise cancels
/// instead of accumulating into a phantom overhead. A warmup run
/// absorbs first-touch page faults before either arm is timed.
fn trace_overhead_pct(speed: Speed, workload: &str, platform: &'static Platform) -> f64 {
    let ctx = MeasureContext::new(speed, workload).expect("known workload");
    let variant = MachineVariant::real(platform);
    let layout = MemoryLayout::all_4k(ctx.pool());
    let _ = measure_layout(&ctx, &variant, &layout);

    let mut untraced = f64::INFINITY;
    let mut traced = f64::INFINITY;
    for _ in 0..OVERHEAD_REPS {
        let t0 = Instant::now();
        let _ = measure_layout(&ctx, &variant, &layout);
        untraced = untraced.min(t0.elapsed().as_secs_f64());

        let mut recorder = obs::SpanRecorder::new(64);
        let t1 = Instant::now();
        let _ = measure_layout_traced(&ctx, &variant, &layout, Some(&mut recorder));
        traced = traced.min(t1.elapsed().as_secs_f64());
    }
    if untraced <= 0.0 {
        return 0.0;
    }
    (traced - untraced) / untraced * 100.0
}

/// Today's civil date (UTC) as `YYYY-MM-DD`, from the system clock.
pub fn today_utc() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs()
        / 86_400;
    civil_from_days(days as i64)
}

/// Gregorian date for a day count since 1970-01-01 (the standard
/// era-based inversion), so the report stamp needs no date crate.
fn civil_from_days(z: i64) -> String {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn classify(layout: &MemoryLayout) -> LayoutKind {
    if layout.windows().is_empty() {
        LayoutKind::All4K
    } else if layout.bytes_backed_by(PageSize::Base4K) == 0 {
        LayoutKind::All2M
    } else {
        LayoutKind::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), "1970-01-01");
        assert_eq!(civil_from_days(31), "1970-02-01");
        assert_eq!(civil_from_days(11_016), "2000-02-29"); // leap day
        assert_eq!(civil_from_days(11_017), "2000-03-01");
        assert_eq!(civil_from_days(19_723), "2024-01-01");
        assert_eq!(civil_from_days(20_671), "2026-08-06");
    }

    #[test]
    fn today_is_well_formed() {
        let today = today_utc();
        let parts: Vec<&str> = today.split('-').collect();
        assert_eq!(parts.len(), 3, "{today:?}");
        assert_eq!(parts[0].len(), 4);
        assert!(parts[0].parse::<u32>().unwrap() >= 2024);
        assert!((1..=12).contains(&parts[1].parse::<u32>().unwrap()));
        assert!((1..=31).contains(&parts[2].parse::<u32>().unwrap()));
    }
}
