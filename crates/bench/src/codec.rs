//! On-disk codec for `mosaic bench` reports.
//!
//! A report is a small JSON document whose `format` field carries the
//! `# mosaic-bench v3` version header; readers reject any other version
//! rather than guessing. All floating-point fields are rendered with
//! [`fmt_f64_shortest`] (Rust's shortest-roundtrip `Display`), so
//! `parse_report(&render_report(r))` reproduces every float bit-for-bit
//! — the same bit-exactness contract as the grid cache and the model
//! store.

use std::fmt::Write as _;

use mosmodel::persist::{fmt_f64_shortest, parse_f64_shortest};

/// Version of the bench-report schema. Bump on any breaking change.
/// v2 added `cold_us` (first-request latency including the model fit)
/// to the service leg. v3 added `trace_overhead_pct` (tracer cost on a
/// FAST `measure_layout`, the <3% gate) to the grid leg and
/// `cold_stages` (wall-domain stage breakdown of the cold request,
/// from the server's trace ring) to the service leg. v4 added the
/// `recommend` leg (`rec_requests` / `rec_cold_us` / `rec_mean_us`),
/// timing the budget-to-layout recommendation verb cold (candidate
/// enumeration, scoring, and the K-fold CV pass) and warm (served from
/// the recommendation cache). v5 added the `conns` leg (`conns_1_qps` /
/// `conns_16_qps` / `conns_256_qps`), warm-path predict throughput at
/// 1, 16, and 256 concurrent connections — the scaling figure for the
/// event-driven serving plane, where idle connections cost a poll slot
/// instead of a worker thread. v6 added the `grid_par` leg (`par_jobs` /
/// `par_1_wall_seconds` / `par_n_wall_seconds` / `par_speedup`), the
/// same cold battery built serially and with the parallel fan-out — the
/// speedup claim for deterministic-parallel grid builds is measured
/// here, not asserted. v7 added the `grid_sampled` leg
/// (`sampled_window` / `sampled_period` / `sampled_bound` /
/// `sampled_anchor_err` / `sampled_wall_seconds` /
/// `sampled_full_wall_seconds` / `sampled_speedup`), the cold battery
/// built once with validated interval sampling and once full — both
/// the speedup *and* the cross-validation gate's measured anchor error
/// are reported, so the claim "cheaper and still within bound" is
/// evidence, not assertion.
pub const BENCH_VERSION: u32 = 7;

/// Version-header prefix; the full header is `# mosaic-bench v7`.
const BENCH_MAGIC: &str = "# mosaic-bench v";

/// Wall-clock results of the grid-battery throughput benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct GridBench {
    /// Measurement records produced (battery layouts + the all-1GB run).
    pub records: u64,
    /// Total simulated demand accesses across all records.
    pub accesses: u64,
    /// Wall-clock seconds for the whole battery.
    pub wall_seconds: f64,
    /// `accesses / wall_seconds` — the headline throughput figure.
    pub accesses_per_sec: f64,
    /// Relative cost (percent, min-of-k) of running `measure_layout`
    /// with the span recorder enabled versus disabled. The tracing
    /// gate: must stay under 3% or observability is perturbing the
    /// measurement it observes. Negative values are timer noise.
    pub trace_overhead_pct: f64,
}

/// Wall-clock results of the mosaicd request-latency benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceBench {
    /// Predict requests timed (after the model-fitting warmup).
    pub requests: u64,
    /// Latency of the first (cold) request in microseconds — pays the
    /// full model fit under the registry's singleflight latch. The gap
    /// between this and `mean_us` is what `warm` requests buy.
    pub cold_us: f64,
    /// Wall-domain stage breakdown of the cold request, harvested from
    /// the server's trace ring: space-separated `stage:start..end`
    /// tokens in microseconds since the request's first byte, or `-`
    /// when no trace was captured. Space-separated (not the wire
    /// format's commas) because this codec's field extractor treats a
    /// comma as end-of-value.
    pub cold_stages: String,
    /// Mean end-to-end warm request latency in microseconds.
    pub mean_us: f64,
    /// Median latency (bucket upper bound) in microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
}

/// Wall-clock results of the mosaicd recommendation benchmark. Field
/// names carry a `rec_` prefix because this codec's extractor matches
/// keys globally across the document.
#[derive(Clone, Debug, PartialEq)]
pub struct RecommendBench {
    /// Warm recommend requests timed (after the cold one).
    pub rec_requests: u64,
    /// Latency of the first recommend in microseconds — pays candidate
    /// enumeration, per-candidate scoring, and the K-fold CV error.
    pub rec_cold_us: f64,
    /// Mean warm recommend latency in microseconds (recommendation-cache
    /// hits; includes the loopback round-trip).
    pub rec_mean_us: f64,
}

/// Warm-path predict throughput at increasing connection counts, all
/// against one server whose caches are already hot. Field names carry a
/// `conns_` prefix because this codec's extractor matches keys globally
/// across the document.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnsBench {
    /// Requests per second with a single connection issuing sequential
    /// warm predicts — the latency-bound baseline.
    pub conns_1_qps: f64,
    /// Requests per second across 16 concurrent connections.
    pub conns_16_qps: f64,
    /// Requests per second across 256 concurrent connections — far more
    /// connections than workers, so this figure only scales if the
    /// serving plane multiplexes instead of parking a thread per
    /// connection.
    pub conns_256_qps: f64,
}

/// Wall-clock results of the parallel-battery speedup benchmark: the
/// identical cold battery built twice on fresh in-memory grids, once
/// serially and once with the full worker fan-out. Field names carry a
/// `par_` prefix because this codec's extractor matches keys globally
/// across the document.
#[derive(Clone, Debug, PartialEq)]
pub struct GridParBench {
    /// Worker threads used for the parallel build (the resolved
    /// `--jobs`/`MOSAIC_JOBS`/`available_parallelism` value).
    pub par_jobs: u64,
    /// Wall-clock seconds for the serial (jobs=1) battery.
    pub par_1_wall_seconds: f64,
    /// Wall-clock seconds for the parallel (jobs=N) battery.
    pub par_n_wall_seconds: f64,
    /// `par_1_wall_seconds / par_n_wall_seconds` — the headline speedup.
    pub par_speedup: f64,
}

/// Wall-clock results of the validated-sampling speedup benchmark: the
/// identical cold battery built twice on fresh in-memory grids, once
/// with interval sampling (gated by the sampled-vs-full anchor
/// cross-validation) and once full. Field names carry a `sampled_`
/// prefix because this codec's extractor matches keys globally across
/// the document.
#[derive(Clone, Debug, PartialEq)]
pub struct GridSampledBench {
    /// Accesses kept at the start of each sampling period.
    pub sampled_window: u64,
    /// Length of each sampling period.
    pub sampled_period: u64,
    /// Gate bound the anchor error was held to.
    pub sampled_bound: f64,
    /// The gate's measured worst anchor error (sampled vs full, all
    /// PMU counters); the battery only counts as sampled if this is
    /// within `sampled_bound`.
    pub sampled_anchor_err: f64,
    /// Wall-clock seconds for the gated sampled battery (anchor
    /// cross-validation included — the gate's cost is part of the
    /// price).
    pub sampled_wall_seconds: f64,
    /// Wall-clock seconds for the full battery.
    pub sampled_full_wall_seconds: f64,
    /// `sampled_full_wall_seconds / sampled_wall_seconds` — the
    /// headline speedup.
    pub sampled_speedup: f64,
}

/// One complete `mosaic bench` report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Civil date of the run (`YYYY-MM-DD`), stamped by the runner.
    pub date: String,
    /// Speed preset the benchmark ran at (`fast` / `full`).
    pub speed: String,
    /// Workload benchmarked (e.g. `gups/8GB`).
    pub workload: String,
    /// Platform benchmarked (e.g. `SandyBridge`).
    pub platform: String,
    /// Grid-battery throughput results.
    pub grid: GridBench,
    /// Parallel-battery speedup results.
    pub grid_par: GridParBench,
    /// Validated-sampling speedup results.
    pub grid_sampled: GridSampledBench,
    /// mosaicd latency results.
    pub service: ServiceBench,
    /// mosaicd recommendation-verb latency results.
    pub recommend: RecommendBench,
    /// mosaicd concurrent-connection throughput results.
    pub conns: ConnsBench,
}

impl BenchReport {
    /// The versioned format header this codec writes and accepts.
    pub fn format_header() -> String {
        format!("{BENCH_MAGIC}{BENCH_VERSION}")
    }
}

/// Renders a report as its on-disk JSON document.
pub fn render_report(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"format\": \"{}\",", BenchReport::format_header());
    let _ = writeln!(out, "  \"date\": \"{}\",", report.date);
    let _ = writeln!(out, "  \"speed\": \"{}\",", report.speed);
    let _ = writeln!(out, "  \"workload\": \"{}\",", report.workload);
    let _ = writeln!(out, "  \"platform\": \"{}\",", report.platform);
    let _ = writeln!(out, "  \"grid\": {{");
    let _ = writeln!(out, "    \"records\": {},", report.grid.records);
    let _ = writeln!(out, "    \"accesses\": {},", report.grid.accesses);
    let _ = writeln!(
        out,
        "    \"wall_seconds\": {},",
        fmt_f64_shortest(report.grid.wall_seconds)
    );
    let _ = writeln!(
        out,
        "    \"accesses_per_sec\": {},",
        fmt_f64_shortest(report.grid.accesses_per_sec)
    );
    let _ = writeln!(
        out,
        "    \"trace_overhead_pct\": {}",
        fmt_f64_shortest(report.grid.trace_overhead_pct)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"grid_par\": {{");
    let _ = writeln!(out, "    \"par_jobs\": {},", report.grid_par.par_jobs);
    let _ = writeln!(
        out,
        "    \"par_1_wall_seconds\": {},",
        fmt_f64_shortest(report.grid_par.par_1_wall_seconds)
    );
    let _ = writeln!(
        out,
        "    \"par_n_wall_seconds\": {},",
        fmt_f64_shortest(report.grid_par.par_n_wall_seconds)
    );
    let _ = writeln!(
        out,
        "    \"par_speedup\": {}",
        fmt_f64_shortest(report.grid_par.par_speedup)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"grid_sampled\": {{");
    let _ = writeln!(
        out,
        "    \"sampled_window\": {},",
        report.grid_sampled.sampled_window
    );
    let _ = writeln!(
        out,
        "    \"sampled_period\": {},",
        report.grid_sampled.sampled_period
    );
    let _ = writeln!(
        out,
        "    \"sampled_bound\": {},",
        fmt_f64_shortest(report.grid_sampled.sampled_bound)
    );
    let _ = writeln!(
        out,
        "    \"sampled_anchor_err\": {},",
        fmt_f64_shortest(report.grid_sampled.sampled_anchor_err)
    );
    let _ = writeln!(
        out,
        "    \"sampled_wall_seconds\": {},",
        fmt_f64_shortest(report.grid_sampled.sampled_wall_seconds)
    );
    let _ = writeln!(
        out,
        "    \"sampled_full_wall_seconds\": {},",
        fmt_f64_shortest(report.grid_sampled.sampled_full_wall_seconds)
    );
    let _ = writeln!(
        out,
        "    \"sampled_speedup\": {}",
        fmt_f64_shortest(report.grid_sampled.sampled_speedup)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"service\": {{");
    let _ = writeln!(out, "    \"requests\": {},", report.service.requests);
    let _ = writeln!(
        out,
        "    \"cold_us\": {},",
        fmt_f64_shortest(report.service.cold_us)
    );
    let _ = writeln!(
        out,
        "    \"cold_stages\": \"{}\",",
        report.service.cold_stages
    );
    let _ = writeln!(
        out,
        "    \"mean_us\": {},",
        fmt_f64_shortest(report.service.mean_us)
    );
    let _ = writeln!(out, "    \"p50_us\": {},", report.service.p50_us);
    let _ = writeln!(out, "    \"p90_us\": {},", report.service.p90_us);
    let _ = writeln!(out, "    \"p99_us\": {}", report.service.p99_us);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"recommend\": {{");
    let _ = writeln!(
        out,
        "    \"rec_requests\": {},",
        report.recommend.rec_requests
    );
    let _ = writeln!(
        out,
        "    \"rec_cold_us\": {},",
        fmt_f64_shortest(report.recommend.rec_cold_us)
    );
    let _ = writeln!(
        out,
        "    \"rec_mean_us\": {}",
        fmt_f64_shortest(report.recommend.rec_mean_us)
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"conns\": {{");
    let _ = writeln!(
        out,
        "    \"conns_1_qps\": {},",
        fmt_f64_shortest(report.conns.conns_1_qps)
    );
    let _ = writeln!(
        out,
        "    \"conns_16_qps\": {},",
        fmt_f64_shortest(report.conns.conns_16_qps)
    );
    let _ = writeln!(
        out,
        "    \"conns_256_qps\": {}",
        fmt_f64_shortest(report.conns.conns_256_qps)
    );
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Extracts the raw value token following `"key":` — up to the next
/// comma or newline — from this codec's own fixed-shape documents (one
/// field per line; not a general JSON parser).
fn field<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle).ok_or_else(|| format!("missing {key}"))?;
    let rest = text[at + needle.len()..].trim_start();
    let end = rest
        .find(['\n', ','])
        .ok_or_else(|| format!("unterminated {key}"))?;
    Ok(rest[..end].trim_end().trim_end_matches(','))
}

fn string_field(text: &str, key: &str) -> Result<String, String> {
    let raw = field(text, key)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("{key} is not a string: {raw:?}"))
}

fn u64_field(text: &str, key: &str) -> Result<u64, String> {
    let raw = field(text, key)?;
    raw.parse().map_err(|e| format!("bad {key}: {e}"))
}

fn f64_field(text: &str, key: &str) -> Result<f64, String> {
    let raw = field(text, key)?;
    parse_f64_shortest(raw).ok_or_else(|| format!("bad {key}: {raw:?}"))
}

/// Parses a document written by [`render_report`].
///
/// # Errors
///
/// Returns a description of the first problem: a missing or malformed
/// field, or a version header this codec does not understand.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let header = string_field(text, "format")?;
    if header != BenchReport::format_header() {
        return Err(format!(
            "unsupported bench report format {header:?} (this build reads {:?})",
            BenchReport::format_header()
        ));
    }
    Ok(BenchReport {
        date: string_field(text, "date")?,
        speed: string_field(text, "speed")?,
        workload: string_field(text, "workload")?,
        platform: string_field(text, "platform")?,
        grid: GridBench {
            records: u64_field(text, "records")?,
            accesses: u64_field(text, "accesses")?,
            wall_seconds: f64_field(text, "wall_seconds")?,
            accesses_per_sec: f64_field(text, "accesses_per_sec")?,
            trace_overhead_pct: f64_field(text, "trace_overhead_pct")?,
        },
        grid_par: GridParBench {
            par_jobs: u64_field(text, "par_jobs")?,
            par_1_wall_seconds: f64_field(text, "par_1_wall_seconds")?,
            par_n_wall_seconds: f64_field(text, "par_n_wall_seconds")?,
            par_speedup: f64_field(text, "par_speedup")?,
        },
        grid_sampled: GridSampledBench {
            sampled_window: u64_field(text, "sampled_window")?,
            sampled_period: u64_field(text, "sampled_period")?,
            sampled_bound: f64_field(text, "sampled_bound")?,
            sampled_anchor_err: f64_field(text, "sampled_anchor_err")?,
            sampled_wall_seconds: f64_field(text, "sampled_wall_seconds")?,
            sampled_full_wall_seconds: f64_field(text, "sampled_full_wall_seconds")?,
            sampled_speedup: f64_field(text, "sampled_speedup")?,
        },
        service: ServiceBench {
            requests: u64_field(text, "requests")?,
            cold_us: f64_field(text, "cold_us")?,
            cold_stages: string_field(text, "cold_stages")?,
            mean_us: f64_field(text, "mean_us")?,
            p50_us: u64_field(text, "p50_us")?,
            p90_us: u64_field(text, "p90_us")?,
            p99_us: u64_field(text, "p99_us")?,
        },
        recommend: RecommendBench {
            rec_requests: u64_field(text, "rec_requests")?,
            rec_cold_us: f64_field(text, "rec_cold_us")?,
            rec_mean_us: f64_field(text, "rec_mean_us")?,
        },
        conns: ConnsBench {
            conns_1_qps: f64_field(text, "conns_1_qps")?,
            conns_16_qps: f64_field(text, "conns_16_qps")?,
            conns_256_qps: f64_field(text, "conns_256_qps")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            date: "2026-08-06".to_string(),
            speed: "fast".to_string(),
            workload: "gups/8GB".to_string(),
            platform: "SandyBridge".to_string(),
            grid: GridBench {
                records: 55,
                accesses: 4_400_000,
                wall_seconds: 0.698_678_299,
                accesses_per_sec: 6_297_613.847_210_31,
                trace_overhead_pct: 0.412_907_3,
            },
            grid_par: GridParBench {
                par_jobs: 8,
                par_1_wall_seconds: 5.602_113_9,
                par_n_wall_seconds: 0.913_446_2,
                par_speedup: 6.132_931_407_2,
            },
            grid_sampled: GridSampledBench {
                sampled_window: 1_000,
                sampled_period: 5_000,
                sampled_bound: 0.05,
                sampled_anchor_err: 0.042_913_7,
                sampled_wall_seconds: 4.301_226_8,
                sampled_full_wall_seconds: 16.204_119_5,
                sampled_speedup: 3.767_325_991_3,
            },
            service: ServiceBench {
                requests: 32,
                cold_us: 2_731_009.25,
                cold_stages: "read:0..3 parse:3..5 fit:5..2730881 cache_lookup:2730881..2730890 simulate:2730890..2730999 render:2730999..2731002".to_string(),
                mean_us: 24_817.406_25,
                p50_us: 25_000,
                p90_us: 50_000,
                p99_us: 50_000,
            },
            recommend: RecommendBench {
                rec_requests: 16,
                rec_cold_us: 148_212.75,
                rec_mean_us: 183.062_5,
            },
            conns: ConnsBench {
                conns_1_qps: 9_841.275_310_2,
                conns_16_qps: 61_204.883_1,
                conns_256_qps: 88_930.017_4,
            },
        }
    }

    #[test]
    fn report_roundtrips_bit_exactly() {
        let report = sample();
        let text = render_report(&report);
        assert!(text.contains("\"format\": \"# mosaic-bench v7\""));
        let back = parse_report(&text).expect("own output parses");
        assert_eq!(back, report);
        assert_eq!(
            back.grid.wall_seconds.to_bits(),
            report.grid.wall_seconds.to_bits()
        );
        assert_eq!(
            back.grid.accesses_per_sec.to_bits(),
            report.grid.accesses_per_sec.to_bits()
        );
        assert_eq!(
            back.service.mean_us.to_bits(),
            report.service.mean_us.to_bits()
        );
        assert_eq!(
            back.service.cold_us.to_bits(),
            report.service.cold_us.to_bits()
        );
        assert_eq!(
            back.grid.trace_overhead_pct.to_bits(),
            report.grid.trace_overhead_pct.to_bits()
        );
        assert_eq!(back.service.cold_stages, report.service.cold_stages);
        assert_eq!(
            back.recommend.rec_cold_us.to_bits(),
            report.recommend.rec_cold_us.to_bits()
        );
        assert_eq!(
            back.recommend.rec_mean_us.to_bits(),
            report.recommend.rec_mean_us.to_bits()
        );
        assert_eq!(
            back.conns.conns_1_qps.to_bits(),
            report.conns.conns_1_qps.to_bits()
        );
        assert_eq!(
            back.conns.conns_256_qps.to_bits(),
            report.conns.conns_256_qps.to_bits()
        );
        assert_eq!(back.grid_par.par_jobs, report.grid_par.par_jobs);
        assert_eq!(
            back.grid_par.par_1_wall_seconds.to_bits(),
            report.grid_par.par_1_wall_seconds.to_bits()
        );
        assert_eq!(
            back.grid_par.par_speedup.to_bits(),
            report.grid_par.par_speedup.to_bits()
        );
        assert_eq!(back.grid_sampled.sampled_window, 1_000);
        assert_eq!(back.grid_sampled.sampled_period, 5_000);
        assert_eq!(
            back.grid_sampled.sampled_anchor_err.to_bits(),
            report.grid_sampled.sampled_anchor_err.to_bits()
        );
        assert_eq!(
            back.grid_sampled.sampled_speedup.to_bits(),
            report.grid_sampled.sampled_speedup.to_bits()
        );
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = render_report(&sample()).replace("# mosaic-bench v7", "# mosaic-bench v6");
        let err = parse_report(&text).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn missing_fields_error_cleanly() {
        assert!(parse_report("{}").is_err());
        let text = render_report(&sample()).replace("\"p99_us\"", "\"p99\"");
        assert!(parse_report(&text).is_err());
    }
}
