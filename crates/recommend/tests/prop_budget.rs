//! Property tests for the budget grammar, mirroring
//! `layouts/tests/prop_spec.rs`: parsing is total on hostile input,
//! `parse_budget ∘ render_budget` is a fixed point for admissible
//! budgets, and pool-exceeding budgets are rejected with a typed error
//! (capping a budget would answer a different question than asked).

use proptest::prelude::*;
use vmcore::{PageSize, Region, VirtAddr, GIB};

use recommend::{enumerate_candidates, parse_budget, render_budget, Budget, BudgetError};

fn pool() -> Region {
    Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
}

/// The 2GiB pool holds 1024 2MB pages and 2 1GB pages.
const MAX_2M: u64 = 1024;
const MAX_1G: u64 = 2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_never_panics(s in ".{0,64}") {
        let _ = parse_budget(pool(), &s);
    }

    #[test]
    fn parse_never_panics_on_grammar_shaped_input(
        terms in prop::collection::vec(("[0-9xXmMgGbB+]{0,8}", any::<bool>()), 1..4)
    ) {
        // Near-miss inputs drawn from the grammar's own alphabet reach
        // deeper than fully random strings; parsing must stay total.
        let text = terms
            .iter()
            .map(|(t, _)| t.as_str())
            .collect::<Vec<_>>()
            .join("+");
        let _ = parse_budget(pool(), &text);
    }

    #[test]
    fn render_then_parse_is_a_fixed_point(huge_2m in 0..=MAX_2M, huge_1g in 0..=MAX_1G) {
        let budget = Budget { huge_2m, huge_1g };
        let text = render_budget(&budget);
        prop_assert_eq!(parse_budget(pool(), &text), Ok(budget), "{}", text);
        // Re-rendering the parsed budget reproduces the canonical text.
        prop_assert_eq!(render_budget(&budget), text);
    }

    #[test]
    fn pool_exceeding_budgets_are_rejected_with_a_typed_error(
        over_2m in MAX_2M + 1..MAX_2M + 10_000,
        over_1g in MAX_1G + 1..MAX_1G + 10_000,
        which in any::<bool>(),
    ) {
        let (text, size) = if which {
            (format!("{over_2m}x2m"), PageSize::Huge2M)
        } else {
            (format!("{over_1g}x1g"), PageSize::Huge1G)
        };
        let err = parse_budget(pool(), &text).unwrap_err();
        let BudgetError::ExceedsPool { size: got, requested, available } = err else {
            prop_assert!(false, "{text:?} gave {err:?}");
            unreachable!();
        };
        prop_assert_eq!(got, size);
        prop_assert_eq!(requested, if which { over_2m } else { over_1g });
        prop_assert_eq!(available, if which { MAX_2M } else { MAX_1G });
    }

    #[test]
    fn candidates_respect_any_admissible_budget(
        huge_2m in 0..=MAX_2M,
        huge_1g in 0..=MAX_1G,
        steps in 1usize..6,
    ) {
        let budget = Budget { huge_2m, huge_1g };
        let candidates = enumerate_candidates(pool(), &budget, steps);
        prop_assert!(!candidates.is_empty(), "all-4KB is always admissible");
        for c in &candidates {
            prop_assert!(budget.admits(c), "{} exceeds {}", c.describe(), render_budget(&budget));
            let spec = recommend::render_layout_spec(c);
            let back = layouts::parse_spec(pool(), &spec);
            prop_assert!(back.is_ok(), "rendered spec {spec:?} rejected: {:?}", back);
            prop_assert_eq!(back.unwrap().describe(), c.describe(), "spec {}", spec);
        }
    }
}
