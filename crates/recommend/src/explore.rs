//! The paper's exploration heuristics, lifted behind a trait.
//!
//! Inside the grid battery the three §VI-B heuristics are free
//! functions wired to a fixed schedule; here each becomes an
//! [`Explorer`] — a swappable candidate source the recommendation
//! engine iterates over (Virtuoso's argument: the exploration *policy*
//! is a first-class module, not battery-internal code).
//!
//! Determinism: explorers take no clock and no ambient RNG. The random
//! explorer derives its seed from the canonical budget string (FNV-1a),
//! so the same `(pool, budget, steps)` request enumerates the same
//! candidates on any server. The sliding explorer needs a hot region;
//! on the request path no PEBS-like profile is available, so it slides
//! a *budget-sized* window (the largest window the 2MB inventory can
//! back) from the pool's base — a documented substitution that still
//! sweeps distinct placements of the affordable window.

use vmcore::{MemoryLayout, PageSize, Region};

use crate::budget::{render_budget, Budget};

/// A deterministic source of candidate layouts for one budget.
pub trait Explorer {
    /// Short name used in docs and diagnostics.
    fn name(&self) -> &'static str;

    /// Candidate layouts for `budget` over `pool`. Implementations must
    /// be pure functions of their arguments (no clocks, no ambient
    /// randomness); they may return candidates that exceed the budget —
    /// the engine filters admissibility centrally.
    fn candidates(&self, pool: Region, budget: &Budget, steps: usize) -> Vec<MemoryLayout>;
}

/// Growing Window: 2MB prefixes of the pool, all-4KB to all-2MB.
pub struct GrowingExplorer;

/// Random Window: windows of random position and length, seeded from
/// the canonical budget string.
pub struct RandomExplorer;

/// Sliding Window over a budget-sized window at the pool base.
pub struct SlidingExplorer;

/// The engine's default explorer set, in a fixed deterministic order.
pub fn default_explorers() -> [&'static dyn Explorer; 3] {
    [&GrowingExplorer, &RandomExplorer, &SlidingExplorer]
}

/// FNV-1a over the canonical budget string: a stable, dependency-free
/// seed so the random explorer is a pure function of the budget.
fn budget_seed(budget: &Budget) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in render_budget(budget).bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Explorer for GrowingExplorer {
    fn name(&self) -> &'static str {
        "growing"
    }

    fn candidates(&self, pool: Region, _budget: &Budget, steps: usize) -> Vec<MemoryLayout> {
        if steps == 0 || pool.is_empty() {
            return Vec::new();
        }
        layouts::growing_window(pool, steps)
    }
}

impl Explorer for RandomExplorer {
    fn name(&self) -> &'static str {
        "random"
    }

    fn candidates(&self, pool: Region, budget: &Budget, steps: usize) -> Vec<MemoryLayout> {
        if steps == 0 || pool.is_empty() {
            return Vec::new();
        }
        layouts::random_window(pool, steps, budget_seed(budget))
    }
}

impl Explorer for SlidingExplorer {
    fn name(&self) -> &'static str {
        "sliding"
    }

    fn candidates(&self, pool: Region, budget: &Budget, steps: usize) -> Vec<MemoryLayout> {
        if steps == 0 || pool.is_empty() || budget.huge_2m == 0 {
            return Vec::new();
        }
        let window_bytes = budget
            .huge_2m
            .saturating_mul(PageSize::Huge2M.bytes())
            .min(pool.len());
        let hot = Region::new(pool.start(), window_bytes);
        layouts::sliding_window(pool, hot, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, GIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
    }

    fn budget() -> Budget {
        Budget {
            huge_2m: 64,
            huge_1g: 0,
        }
    }

    #[test]
    fn explorers_are_deterministic() {
        for explorer in default_explorers() {
            let a = explorer.candidates(pool(), &budget(), 4);
            let b = explorer.candidates(pool(), &budget(), 4);
            assert_eq!(a, b, "{} must be pure", explorer.name());
            assert!(!a.is_empty(), "{} returned no candidates", explorer.name());
        }
    }

    #[test]
    fn random_explorer_seed_follows_the_budget() {
        let other = Budget {
            huge_2m: 65,
            huge_1g: 0,
        };
        let a = RandomExplorer.candidates(pool(), &budget(), 8);
        let b = RandomExplorer.candidates(pool(), &other, 8);
        assert_ne!(a, b, "different budgets should draw different windows");
    }

    #[test]
    fn degenerate_inputs_return_empty_instead_of_panicking() {
        let empty = Region::new(VirtAddr::new(0x2000_0000_0000), 0);
        for explorer in default_explorers() {
            assert!(explorer.candidates(empty, &budget(), 4).is_empty());
            assert!(explorer.candidates(pool(), &budget(), 0).is_empty());
        }
        // A 2MB-free budget gives the sliding explorer nothing to slide.
        let no_2m = Budget {
            huge_2m: 0,
            huge_1g: 1,
        };
        assert!(SlidingExplorer.candidates(pool(), &no_2m, 4).is_empty());
    }

    #[test]
    fn sliding_window_is_budget_sized() {
        let candidates = SlidingExplorer.candidates(pool(), &budget(), 4);
        let first = candidates.first().unwrap();
        // 64 pages x 2MB = 128MB window at the pool base.
        assert_eq!(first.bytes_backed_by(PageSize::Huge2M), 128 << 20);
        assert_eq!(first.page_size_at(pool().start()), PageSize::Huge2M);
    }
}
