//! The hugepage-budget grammar.
//!
//! A budget names the hugepage inventory an operator is willing to
//! reserve, as one whitespace-free token: `<count>x<size>` terms joined
//! with `+`, where `<size>` is `2m` or `1g` (case-insensitive, `2mb`/
//! `1gb` accepted). Repeated sizes sum. Examples: `64x2m`, `1x1g`,
//! `64x2m+1x1g`, `0x2m` (the empty budget — only the all-4KB layout is
//! admissible).
//!
//! Like [`layouts::spec`], parsing validates against the concrete
//! mosalloc pool: a budget requesting more pages of a size than the
//! (outward-aligned) pool can hold is rejected with a typed error
//! rather than silently capped — a capped budget would answer a
//! different question than the one asked.

use std::fmt;

use vmcore::{PageSize, Region};

/// A validated hugepage inventory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// 2MB pages available.
    pub huge_2m: u64,
    /// 1GB pages available.
    pub huge_1g: u64,
}

impl Budget {
    /// Whether `layout` fits inside this budget: the hugepages its
    /// windows reserve (full window extents — a reservation rounds
    /// outward past an unaligned pool, and those pages are real) must
    /// not exceed the inventory.
    pub fn admits(&self, layout: &vmcore::MemoryLayout) -> bool {
        let (mut need_2m, mut need_1g) = (0u64, 0u64);
        for w in layout.windows() {
            let pages = w.region.len() / w.size.bytes();
            match w.size {
                PageSize::Huge2M => need_2m = need_2m.saturating_add(pages),
                PageSize::Huge1G => need_1g = need_1g.saturating_add(pages),
                PageSize::Base4K => {}
            }
        }
        need_2m <= self.huge_2m && need_1g <= self.huge_1g
    }
}

/// Why a budget failed to parse or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetError {
    /// The budget (or a term inside it) is not valid grammar.
    Syntax(String),
    /// Summed counts overflowed `u64`.
    Overflow(String),
    /// The budget asks for more pages of a size than the pool can hold.
    ExceedsPool {
        /// The page size whose count is too large.
        size: PageSize,
        /// Pages requested by the budget.
        requested: u64,
        /// Pages the (outward-aligned) pool can hold.
        available: u64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Syntax(s) => write!(f, "bad budget {s:?} (want <count>x<2m|1g>[+...])"),
            BudgetError::Overflow(s) => write!(f, "budget term {s:?} overflows"),
            BudgetError::ExceedsPool {
                size,
                requested,
                available,
            } => write!(
                f,
                "budget asks for {requested} {size} pages but the pool holds at most {available}"
            ),
        }
    }
}

impl std::error::Error for BudgetError {}

/// Pages of `size` the outward-aligned pool can hold — the admissible
/// ceiling a budget is validated against.
fn pool_capacity(pool: Region, size: PageSize) -> u64 {
    pool.align_outward(size).len() / size.bytes()
}

/// Parses a budget token against a concrete pool region.
///
/// # Errors
///
/// Returns a [`BudgetError`] describing the first problem found; the
/// parser never panics on malformed input.
///
/// # Example
///
/// ```
/// use recommend::parse_budget;
/// use vmcore::{Region, VirtAddr, GIB};
///
/// let pool = Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB);
/// let b = parse_budget(pool, "64x2m+1x1g").unwrap();
/// assert_eq!((b.huge_2m, b.huge_1g), (64, 1));
/// assert!(parse_budget(pool, "3x1g").is_err()); // pool holds only 2
/// ```
pub fn parse_budget(pool: Region, text: &str) -> Result<Budget, BudgetError> {
    if text.is_empty() {
        return Err(BudgetError::Syntax(text.to_string()));
    }
    let mut budget = Budget::default();
    for term in text.split('+') {
        let (count_text, size_text) = term
            .split_once(['x', 'X'])
            .ok_or_else(|| BudgetError::Syntax(term.to_string()))?;
        // A leading '+' would make "+64x2m" parse as 64: digits only.
        if count_text.is_empty() || !count_text.bytes().all(|b| b.is_ascii_digit()) {
            return Err(BudgetError::Syntax(term.to_string()));
        }
        let count: u64 = count_text
            .parse()
            .map_err(|_| BudgetError::Overflow(term.to_string()))?;
        let slot = match size_text.to_ascii_lowercase().as_str() {
            "2m" | "2mb" => &mut budget.huge_2m,
            "1g" | "1gb" => &mut budget.huge_1g,
            _ => return Err(BudgetError::Syntax(term.to_string())),
        };
        *slot = slot
            .checked_add(count)
            .ok_or_else(|| BudgetError::Overflow(term.to_string()))?;
    }
    for (size, requested) in [
        (PageSize::Huge2M, budget.huge_2m),
        (PageSize::Huge1G, budget.huge_1g),
    ] {
        let available = pool_capacity(pool, size);
        if requested > available {
            return Err(BudgetError::ExceedsPool {
                size,
                requested,
                available,
            });
        }
    }
    Ok(budget)
}

/// Renders a budget in canonical form: the `2m` term first, then the
/// `1g` term, zero terms omitted; the all-zero budget renders as
/// `0x2m`. `parse_budget(pool, &render_budget(&b)) == Ok(b)` for any
/// budget admissible in `pool` — the canonical string doubles as a
/// deterministic cache key and RNG seed.
pub fn render_budget(budget: &Budget) -> String {
    let mut parts = Vec::new();
    if budget.huge_2m > 0 {
        parts.push(format!("{}x2m", budget.huge_2m));
    }
    if budget.huge_1g > 0 {
        parts.push(format!("{}x1g", budget.huge_1g));
    }
    if parts.is_empty() {
        return "0x2m".to_string();
    }
    parts.join("+")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{MemoryLayout, VirtAddr, GIB, MIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
    }

    #[test]
    fn grammar_accepts_canonical_forms() {
        let b = parse_budget(pool(), "64x2m").unwrap();
        assert_eq!(
            b,
            Budget {
                huge_2m: 64,
                huge_1g: 0
            }
        );
        let b = parse_budget(pool(), "64x2M+1x1G").unwrap();
        assert_eq!(
            b,
            Budget {
                huge_2m: 64,
                huge_1g: 1
            }
        );
        let b = parse_budget(pool(), "0x2m").unwrap();
        assert_eq!(b, Budget::default());
    }

    #[test]
    fn repeated_sizes_sum() {
        let b = parse_budget(pool(), "8x2m+8x2m+1x1g").unwrap();
        assert_eq!(
            b,
            Budget {
                huge_2m: 16,
                huge_1g: 1
            }
        );
    }

    #[test]
    fn malformed_budgets_error_cleanly() {
        for bad in [
            "",
            "x2m",
            "64x",
            "64",
            "64x3m",
            "64x2m+",
            "+64x2m",
            "-1x2m",
            " 64x2m",
            "64 x2m",
            "6.4x2m",
            "64x2m+x1g",
        ] {
            assert!(
                matches!(
                    parse_budget(pool(), bad),
                    Err(BudgetError::Syntax(_) | BudgetError::Overflow(_))
                ),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn overflow_is_typed() {
        let huge = format!("{}x2m+{}x2m", u64::MAX, u64::MAX);
        assert!(matches!(
            parse_budget(pool(), &huge),
            Err(BudgetError::Overflow(_))
        ));
    }

    #[test]
    fn pool_exceeding_budgets_are_rejected_not_capped() {
        // The 2GiB pool holds 1024 2MB pages and 2 1GB pages.
        assert!(parse_budget(pool(), "1024x2m").is_ok());
        assert!(matches!(
            parse_budget(pool(), "1025x2m"),
            Err(BudgetError::ExceedsPool {
                size: PageSize::Huge2M,
                requested: 1025,
                available: 1024,
            })
        ));
        assert!(parse_budget(pool(), "2x1g").is_ok());
        assert!(matches!(
            parse_budget(pool(), "3x1g"),
            Err(BudgetError::ExceedsPool { .. })
        ));
    }

    #[test]
    fn unaligned_pool_rounds_capacity_outward() {
        // A 48MB pool still admits one 1GB page (the reservation rounds
        // out), exactly as MemoryLayout::uniform would reserve it.
        let small = Region::new(VirtAddr::new(0x2000_0000_0000), 48 * MIB);
        let b = parse_budget(small, "1x1g").unwrap();
        assert_eq!(b.huge_1g, 1);
        assert!(matches!(
            parse_budget(small, "2x1g"),
            Err(BudgetError::ExceedsPool { .. })
        ));
    }

    #[test]
    fn render_is_canonical() {
        assert_eq!(
            render_budget(&Budget {
                huge_2m: 64,
                huge_1g: 1
            }),
            "64x2m+1x1g"
        );
        assert_eq!(
            render_budget(&Budget {
                huge_2m: 0,
                huge_1g: 2
            }),
            "2x1g"
        );
        assert_eq!(render_budget(&Budget::default()), "0x2m");
    }

    #[test]
    fn admits_counts_full_window_extents() {
        let b = Budget {
            huge_2m: 4,
            huge_1g: 0,
        };
        let ok = MemoryLayout::builder(pool())
            .window(Region::new(pool().start(), 8 * MIB), PageSize::Huge2M)
            .unwrap()
            .build()
            .unwrap();
        assert!(b.admits(&ok));
        let too_big = MemoryLayout::builder(pool())
            .window(Region::new(pool().start(), 10 * MIB), PageSize::Huge2M)
            .unwrap()
            .build()
            .unwrap();
        assert!(!b.admits(&too_big));
        // The 1GB uniform layout over a 48MB pool needs one 1GB page.
        let small = Region::new(VirtAddr::new(0x2000_0000_0000), 48 * MIB);
        let one_gig = MemoryLayout::uniform(small, PageSize::Huge1G);
        assert!(Budget {
            huge_2m: 0,
            huge_1g: 1
        }
        .admits(&one_gig));
        assert!(!Budget::default().admits(&one_gig));
        // All-4KB needs nothing.
        assert!(Budget::default().admits(&MemoryLayout::all_4k(pool())));
    }
}
