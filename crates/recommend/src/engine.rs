//! The recommendation engine: candidates → scores → a decision.
//!
//! [`enumerate_candidates`] produces the deterministic, deduplicated,
//! budget-admissible candidate set; [`recommend`] scores it through a
//! caller-supplied [`Scorer`] and picks either the layout with the
//! lowest predicted runtime (when the pair's cross-validation error is
//! within the confidence threshold) or — the active-learning fallback —
//! the candidate the models disagree about most, as the single most
//! informative next layout to measure.

use std::collections::BTreeSet;
use std::fmt;

use vmcore::{MemoryLayout, PageSize, Region};

use crate::budget::Budget;
use crate::explore::default_explorers;

/// Steps per exploration heuristic on the request path. Smaller than
/// the battery's 8: every candidate costs one partial simulation to
/// score, and 4 steps already mix prefixes, random windows and slides.
pub const DEFAULT_EXPLORE_STEPS: usize = 4;

/// Maximal K-fold CV error at which a prediction-backed recommendation
/// is considered trustworthy (10%, the ballpark of the paper's Table 6
/// Mosmodel errors). Above it the engine returns a measurement
/// suggestion instead.
pub const DEFAULT_CV_THRESHOLD: f64 = 0.10;

/// How a scorer rates one candidate layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Score {
    /// Predicted runtime (cycles) from the pair's primary model.
    pub predicted: f64,
    /// How much the fitted models disagree on this candidate (relative
    /// spread of their predictions). High disagreement marks the most
    /// informative layout to measure next (query-by-committee).
    pub disagreement: f64,
}

/// Evaluates candidate layouts with the pair's fitted models.
///
/// mosaicd implements this with one partial simulation plus model
/// application per candidate; tests implement it with lookup tables.
pub trait Scorer {
    /// Scores `layout`, or `None` if it cannot be evaluated (the engine
    /// skips such candidates).
    fn score(&self, layout: &MemoryLayout) -> Option<Score>;
}

/// The engine's answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Recommendation {
    /// Confident: run this layout; `predicted` is its modeled runtime.
    Layout {
        /// The recommended layout.
        layout: MemoryLayout,
        /// Predicted runtime in cycles.
        predicted: f64,
    },
    /// Not confident (CV error above threshold): measure this layout
    /// next — it is the candidate the models disagree about most.
    Measure {
        /// The most informative layout to measure next.
        layout: MemoryLayout,
        /// The models' relative disagreement on it.
        gain: f64,
    },
}

/// Why no recommendation could be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecommendError {
    /// No admissible candidate could be scored.
    NoCandidates,
}

impl fmt::Display for RecommendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecommendError::NoCandidates => {
                write!(f, "no admissible candidate layout could be scored")
            }
        }
    }
}

impl std::error::Error for RecommendError {}

/// Enumerates the deterministic candidate set for one budget: the
/// all-4KB baseline, the admissible uniform layouts, then every
/// explorer's admissible candidates, deduplicated by canonical
/// description in first-seen order.
pub fn enumerate_candidates(pool: Region, budget: &Budget, steps: usize) -> Vec<MemoryLayout> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let mut push = |layout: MemoryLayout| {
        if budget.admits(&layout) && seen.insert(layout.describe()) {
            out.push(layout);
        }
    };
    push(MemoryLayout::all_4k(pool));
    if !pool.is_empty() {
        push(MemoryLayout::uniform(pool, PageSize::Huge2M));
        push(MemoryLayout::uniform(pool, PageSize::Huge1G));
    }
    for explorer in default_explorers() {
        for layout in explorer.candidates(pool, budget, steps) {
            push(layout);
        }
    }
    out
}

/// Scores every candidate and decides.
///
/// With `cv_err <= threshold` the answer is the candidate with the
/// strictly lowest finite predicted runtime ([`Recommendation::Layout`];
/// ties keep the first candidate in enumeration order, so the choice is
/// deterministic). Otherwise the models cannot be trusted to rank
/// layouts, and the answer is the candidate with the highest model
/// disagreement ([`Recommendation::Measure`]) — measuring it shrinks
/// the models' uncertainty fastest. A `NaN` `cv_err` (no CV report
/// available) counts as not confident.
///
/// # Errors
///
/// [`RecommendError::NoCandidates`] if no candidate yields a finite
/// score.
pub fn recommend(
    pool: Region,
    budget: &Budget,
    steps: usize,
    scorer: &dyn Scorer,
    cv_err: f64,
    threshold: f64,
) -> Result<Recommendation, RecommendError> {
    recommend_over(
        &enumerate_candidates(pool, budget, steps),
        scorer,
        cv_err,
        threshold,
    )
}

/// [`recommend`] over an already-enumerated candidate set, so callers
/// that time enumeration and scoring separately (mosaicd's trace spans)
/// run exactly the decision logic the one-shot entry point runs.
///
/// # Errors
///
/// [`RecommendError::NoCandidates`] if no candidate yields a finite
/// score.
pub fn recommend_over(
    candidates: &[MemoryLayout],
    scorer: &dyn Scorer,
    cv_err: f64,
    threshold: f64,
) -> Result<Recommendation, RecommendError> {
    let mut scored: Vec<(MemoryLayout, Score)> = Vec::new();
    for layout in candidates {
        if let Some(score) = scorer.score(layout) {
            if score.predicted.is_finite() && score.disagreement.is_finite() {
                scored.push((layout.clone(), score));
            }
        }
    }
    let confident = cv_err.is_finite() && cv_err <= threshold;
    let best = if confident {
        scored.into_iter().reduce(|best, next| {
            if next.1.predicted < best.1.predicted {
                next
            } else {
                best
            }
        })
    } else {
        scored.into_iter().reduce(|best, next| {
            if next.1.disagreement > best.1.disagreement {
                next
            } else {
                best
            }
        })
    };
    let Some((layout, score)) = best else {
        return Err(RecommendError::NoCandidates);
    };
    Ok(if confident {
        Recommendation::Layout {
            layout,
            predicted: score.predicted,
        }
    } else {
        Recommendation::Measure {
            layout,
            gain: score.disagreement,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{VirtAddr, GIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
    }

    /// Scores a layout by its 2MB coverage: more coverage, lower
    /// predicted runtime; disagreement peaks at half coverage.
    struct CoverageScorer;

    impl Scorer for CoverageScorer {
        fn score(&self, layout: &MemoryLayout) -> Option<Score> {
            let covered = layout.bytes_backed_by(PageSize::Huge2M) as f64
                + layout.bytes_backed_by(PageSize::Huge1G) as f64;
            let frac = covered / layout.pool().len() as f64;
            Some(Score {
                predicted: 1e9 * (2.0 - frac),
                disagreement: frac * (1.0 - frac),
            })
        }
    }

    #[test]
    fn candidates_are_admissible_and_unique() {
        let budget = Budget {
            huge_2m: 64,
            huge_1g: 1,
        };
        let candidates = enumerate_candidates(pool(), &budget, 4);
        assert!(
            candidates.len() >= 4,
            "only {} candidates",
            candidates.len()
        );
        let mut seen = BTreeSet::new();
        for c in &candidates {
            assert!(budget.admits(c), "{} exceeds the budget", c.describe());
            assert!(seen.insert(c.describe()), "duplicate {}", c.describe());
        }
        // The all-4KB baseline is always first.
        assert_eq!(candidates[0].describe(), "all-4KB");
    }

    #[test]
    fn empty_budget_still_offers_all_4k() {
        let candidates = enumerate_candidates(pool(), &Budget::default(), 4);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].describe(), "all-4KB");
    }

    #[test]
    fn enumeration_is_deterministic() {
        let budget = Budget {
            huge_2m: 512,
            huge_1g: 2,
        };
        assert_eq!(
            enumerate_candidates(pool(), &budget, 4),
            enumerate_candidates(pool(), &budget, 4),
        );
    }

    #[test]
    fn confident_branch_picks_lowest_prediction() {
        let budget = Budget {
            huge_2m: 1024,
            huge_1g: 2,
        };
        let rec = recommend(pool(), &budget, 4, &CoverageScorer, 0.05, 0.10).unwrap();
        let Recommendation::Layout { layout, predicted } = rec else {
            panic!("expected the confident branch, got {rec:?}");
        };
        // Full coverage scores best under CoverageScorer.
        assert_eq!(layout.bytes_backed_by(PageSize::Base4K), 0);
        for candidate in enumerate_candidates(pool(), &budget, 4) {
            let score = CoverageScorer.score(&candidate).unwrap();
            assert!(predicted <= score.predicted, "{}", candidate.describe());
        }
    }

    #[test]
    fn unconfident_branch_returns_a_measurement_suggestion() {
        let budget = Budget {
            huge_2m: 1024,
            huge_1g: 2,
        };
        let rec = recommend(pool(), &budget, 4, &CoverageScorer, 0.5, 0.10).unwrap();
        let Recommendation::Measure { layout, gain } = rec else {
            panic!("expected the active-learning branch, got {rec:?}");
        };
        assert!(gain > 0.0);
        for candidate in enumerate_candidates(pool(), &budget, 4) {
            let score = CoverageScorer.score(&candidate).unwrap();
            assert!(gain >= score.disagreement, "{}", candidate.describe());
        }
        // The suggestion is a real admissible candidate.
        assert!(budget.admits(&layout));
    }

    #[test]
    fn nan_cv_error_is_not_confident() {
        let budget = Budget {
            huge_2m: 8,
            huge_1g: 0,
        };
        let rec = recommend(pool(), &budget, 4, &CoverageScorer, f64::NAN, 0.10).unwrap();
        assert!(matches!(rec, Recommendation::Measure { .. }));
    }

    struct NoScorer;

    impl Scorer for NoScorer {
        fn score(&self, _layout: &MemoryLayout) -> Option<Score> {
            None
        }
    }

    #[test]
    fn unscorable_candidates_yield_a_typed_error() {
        let budget = Budget {
            huge_2m: 8,
            huge_1g: 0,
        };
        assert_eq!(
            recommend(pool(), &budget, 4, &NoScorer, 0.0, 0.10),
            Err(RecommendError::NoCandidates)
        );
    }

    #[test]
    fn ties_keep_enumeration_order() {
        struct Flat;
        impl Scorer for Flat {
            fn score(&self, _layout: &MemoryLayout) -> Option<Score> {
                Some(Score {
                    predicted: 1.0,
                    disagreement: 0.0,
                })
            }
        }
        let budget = Budget {
            huge_2m: 1024,
            huge_1g: 0,
        };
        let rec = recommend(pool(), &budget, 4, &Flat, 0.0, 0.10).unwrap();
        let Recommendation::Layout { layout, .. } = rec else {
            panic!("expected a layout");
        };
        // First candidate in enumeration order wins the tie.
        assert_eq!(layout.describe(), "all-4KB");
    }
}
