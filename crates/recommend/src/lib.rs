//! Layout recommendation: from a hugepage budget to a concrete layout.
//!
//! The paper's exploration heuristics (§VI-B) generate layouts to *fit*
//! models; this crate turns the fitted models around and asks the
//! question an operator actually has: *given this hugepage budget, which
//! layout should I run?* The pipeline is
//!
//! 1. [`parse_budget`] — a budget grammar (`"64x2m+1x1g"`) naming an
//!    admissible hugepage inventory, validated against the mosalloc pool
//!    the same way [`layouts::spec`] validates window specs;
//! 2. [`enumerate_candidates`] — a deterministic candidate generator
//!    that reuses the paper's three exploration heuristics, lifted
//!    behind the [`Explorer`] trait, and keeps only budget-admissible
//!    layouts;
//! 3. [`recommend`] — a scorer-driven engine that evaluates every
//!    candidate with cheap model predictions (the [`Scorer`] is supplied
//!    by the caller; mosaicd backs it with the pair's fitted registry
//!    entry) and annotates the answer with the pair's K-fold
//!    cross-validation error.
//!
//! When the CV error exceeds the confidence threshold the engine does
//! **not** return a low-confidence layout: it switches to an
//! active-learning fallback and returns the single candidate the models
//! disagree about most — the most informative next layout to *measure*
//! (query-by-committee, in the spirit of Gem5Pred's learned-cost
//! budgeting of expensive runs).
//!
//! Everything here is deterministic: candidate order is a pure function
//! of `(pool, budget, steps)` (the random explorer is seeded from the
//! canonical budget string), so two independent servers produce
//! byte-identical recommendations for the same request.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Recommendations are computed on the mosaicd request path, where a
// panic kills a worker thread; panicking shortcuts are banned in
// production code (tests may still unwrap/index).
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod budget;
pub mod engine;
pub mod explore;

pub use budget::{parse_budget, render_budget, Budget, BudgetError};
pub use engine::{
    enumerate_candidates, recommend, recommend_over, RecommendError, Recommendation, Score, Scorer,
    DEFAULT_CV_THRESHOLD, DEFAULT_EXPLORE_STEPS,
};
pub use explore::{default_explorers, Explorer};

use vmcore::{MemoryLayout, PageSize};

/// Renders a layout as a [`layouts::spec`] token (`4k` or
/// `2m:<start>..<end>` windows joined with `+`, pool-relative byte
/// offsets), so a recommendation can be fed straight back into
/// `predict`. Re-parsing the rendered spec against the layout's pool
/// reproduces the layout (windows are clipped to the pool for
/// rendering; `parse_spec` re-aligns them outward, restoring the
/// original reservation).
pub fn render_layout_spec(layout: &MemoryLayout) -> String {
    let pool = layout.pool();
    let parts: Vec<String> = layout
        .windows()
        .iter()
        .filter_map(|w| {
            let clipped = w.region.intersection(&pool)?;
            let start = clipped.start().raw().saturating_sub(pool.start().raw());
            let end = start + clipped.len();
            let size = match w.size {
                PageSize::Huge2M => "2m",
                PageSize::Huge1G => "1g",
                PageSize::Base4K => return None,
            };
            Some(format!("{size}:{start}..{end}"))
        })
        .collect();
    if parts.is_empty() {
        "4k".to_string()
    } else {
        parts.join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcore::{Region, VirtAddr, GIB, MIB};

    fn pool() -> Region {
        Region::new(VirtAddr::new(0x2000_0000_0000), 2 * GIB)
    }

    #[test]
    fn rendered_specs_reparse_to_the_same_layout() {
        let budget = parse_budget(pool(), "64x2m+1x1g").unwrap();
        for layout in enumerate_candidates(pool(), &budget, 4) {
            let spec = render_layout_spec(&layout);
            let back = layouts::parse_spec(pool(), &spec)
                .unwrap_or_else(|e| panic!("rendered spec {spec:?} rejected: {e}"));
            assert_eq!(back.describe(), layout.describe(), "spec {spec:?}");
        }
    }

    #[test]
    fn all_4k_renders_as_4k() {
        assert_eq!(render_layout_spec(&MemoryLayout::all_4k(pool())), "4k");
    }

    #[test]
    fn uniform_1g_over_small_pool_renders_clipped_but_reparses() {
        // A 48MB pool backed by one 1GB page: the window reservation
        // extends past the pool; the rendered spec names the pool's
        // slice of it and parse_spec re-aligns outward.
        let small = Region::new(VirtAddr::new(0x2000_0000_0000), 48 * MIB);
        let layout = MemoryLayout::uniform(small, PageSize::Huge1G);
        let spec = render_layout_spec(&layout);
        assert_eq!(spec, format!("1g:0..{}", 48 * MIB));
        let back = layouts::parse_spec(small, &spec).unwrap();
        assert_eq!(back.describe(), layout.describe());
    }

    #[test]
    fn mixed_layout_renders_both_windows() {
        let layout = MemoryLayout::builder(pool())
            .window(Region::new(pool().start(), GIB), PageSize::Huge1G)
            .unwrap()
            .window(
                Region::new(pool().start() + GIB, 64 * MIB),
                PageSize::Huge2M,
            )
            .unwrap()
            .build()
            .unwrap();
        let spec = render_layout_spec(&layout);
        assert_eq!(
            spec,
            format!("1g:0..{}+2m:{}..{}", GIB, GIB, GIB + 64 * MIB)
        );
    }
}
