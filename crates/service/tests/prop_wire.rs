//! Property tests for every wire-format parser a mosaicd client or
//! scraper feeds: the single-line `stats` codec, the multi-line
//! Prometheus exposition, and the trace verb's header + trace lines.
//!
//! Two properties per format:
//!
//! 1. **Total**: parsing is a total function over arbitrary strings —
//!    it returns `Err`, never panics. These parsers sit behind
//!    [`service::client::Client`], which reads from a network peer it
//!    does not control.
//! 2. **Fixed point**: `render ∘ parse ∘ render = render` — a rendered
//!    document parses back to an equal value, and re-rendering that
//!    value reproduces the document byte-for-byte. This is what makes
//!    the canonical exposition order an invariant rather than an
//!    accident.

use obs::{parse_trace, render_trace, ClockDomain, Span, Trace};
use proptest::prelude::*;
use service::cache::CacheCounters;
use service::metrics::{StatsSnapshot, BUCKET_BOUNDS_US};
use service::prom::{parse_metrics, render_metrics, MetricsReport, StageEntry};
use service::protocol::{parse_trace_header, render_trace_header};
use service::registry::RegistryCounters;

fn snapshot_strategy() -> impl Strategy<Value = StatsSnapshot> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>()),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        prop::collection::vec(0u64..1_000_000, BUCKET_BOUNDS_US.len()),
    )
        .prop_map(|(core, gauges, reg, cache, rec, bucket_vec)| {
            let (requests, predicts, recommends, errors, busy, queue_depth) = core;
            let (too_long, connections) = gauges;
            let (hits, misses, disk_loads, fitting, sampled_rejections) = reg;
            let mut buckets = [0u64; BUCKET_BOUNDS_US.len()];
            for (out, v) in buckets.iter_mut().zip(bucket_vec) {
                *out = v;
            }
            StatsSnapshot {
                requests,
                predicts,
                recommends,
                errors,
                too_long,
                busy,
                queue_depth,
                connections,
                registry: RegistryCounters {
                    hits,
                    misses,
                    disk_loads,
                    fitting,
                    sampled_rejections,
                },
                cache: CacheCounters {
                    hits: cache.0,
                    misses: cache.1,
                },
                rec_cache: CacheCounters {
                    hits: rec.0,
                    misses: rec.1,
                },
                pred_cache_len: rec.2,
                buckets,
            }
        })
}

fn stage_entries_strategy() -> impl Strategy<Value = Vec<StageEntry>> {
    prop::collection::vec(("[a-z_]{1,10}", any::<u64>(), any::<u64>()), 0..4).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(stage, total_ticks, spans)| StageEntry {
                stage,
                total_ticks,
                spans,
            })
            .collect()
    })
}

fn report_strategy() -> impl Strategy<Value = MetricsReport> {
    (
        snapshot_strategy(),
        prop::collection::vec(any::<u64>(), 0..10),
        stage_entries_strategy(),
        stage_entries_strategy(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(stats, pred_cache_shard_lens, wall_stages, sim_stages, ring)| MetricsReport {
                stats,
                pred_cache_shard_lens,
                wall_stages,
                sim_stages,
                traces_buffered: ring.0,
                trace_capacity: ring.1,
                traces_dropped: ring.2,
            },
        )
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        any::<u64>(),
        "[a-z_]{1,10}",
        any::<bool>(),
        any::<u64>(),
        prop::collection::vec(("[a-z_]{1,10}", any::<u64>(), any::<u64>()), 0..5),
    )
        .prop_map(|(seq, label, sim, dropped_spans, spans)| Trace {
            seq,
            label,
            domain: if sim {
                ClockDomain::Sim
            } else {
                ClockDomain::Wall
            },
            dropped_spans,
            spans: spans
                .into_iter()
                .map(|(stage, start, end)| Span { stage, start, end })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // --- totality on arbitrary (hostile) input -------------------------

    #[test]
    fn stats_parse_never_panics(s in ".{0,64}") {
        let _ = StatsSnapshot::parse(&s);
    }

    #[test]
    fn metrics_parse_never_panics(s in ".{0,64}") {
        let _ = parse_metrics(&s);
    }

    #[test]
    fn trace_parse_never_panics(s in ".{0,64}") {
        let _ = parse_trace(&s);
    }

    #[test]
    fn trace_header_parse_never_panics(s in ".{0,64}") {
        let _ = parse_trace_header(&s);
    }

    /// Near-miss inputs: a valid exposition truncated at an arbitrary
    /// character boundary. Deeper into the parser's state machine than
    /// fully random strings ever reach; must still never panic.
    #[test]
    fn metrics_parse_survives_truncation(report in report_strategy(), frac in 0.0f64..1.0) {
        let text = render_metrics(&report);
        let cut = ((text.chars().count() as f64) * frac) as usize;
        let truncated: String = text.chars().take(cut).collect();
        let _ = parse_metrics(&truncated);
    }

    // --- render ∘ parse ∘ render is the identity -----------------------

    #[test]
    fn stats_line_is_a_fixed_point(snap in snapshot_strategy()) {
        let line = snap.render();
        let back = StatsSnapshot::parse(&line);
        prop_assert_eq!(back.as_ref(), Ok(&snap), "{}", line);
        prop_assert_eq!(back.map(|s| s.render()), Ok(line));
    }

    #[test]
    fn metrics_exposition_is_a_fixed_point(report in report_strategy()) {
        let text = render_metrics(&report);
        let back = parse_metrics(&text);
        prop_assert_eq!(back.as_ref(), Ok(&report), "{}", text);
        prop_assert_eq!(back.map(|r| render_metrics(&r)), Ok(text));
    }

    #[test]
    fn trace_line_is_a_fixed_point(trace in trace_strategy()) {
        let line = render_trace(&trace);
        let back = parse_trace(&line);
        prop_assert_eq!(back.as_ref(), Ok(&trace), "{}", line);
        prop_assert_eq!(back.map(|t| render_trace(&t)), Ok(line));
    }

    #[test]
    fn trace_header_roundtrips(count in 0usize..1_000_000, dropped in any::<u64>()) {
        let line = render_trace_header(count, dropped);
        prop_assert_eq!(parse_trace_header(&line), Ok((count, dropped)));
    }
}
