//! The line-delimited wire protocol shared by server and client.
//!
//! Keeping parsing and rendering in one module means the integration
//! tests exercise the *same* code path in both directions, and a
//! protocol change cannot silently desynchronize the two sides.
//!
//! Floating-point fields are rendered with Rust's `Display`, which emits
//! the shortest string that round-trips to the same bits; `str::parse`
//! on the other side therefore reproduces the server's value exactly.

use mosmodel::ModelKind;

use crate::registry::PairInfo;

/// A parsed request line.
// Not `Eq`: the recommend threshold is an `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `predict <workload> <platform> <layout-spec> [model]`
    Predict {
        /// Workload name, paper spelling (e.g. `gups/8GB`).
        workload: String,
        /// Platform name, case-insensitive (e.g. `sandybridge`).
        platform: String,
        /// Layout spec in the [`layouts::spec`] grammar.
        spec: String,
        /// Requested model; `None` means the default (`mosmodel`).
        model: Option<ModelKind>,
    },
    /// `warm <workload> <platform>` — pre-fit a pair's models without
    /// running a prediction (pays the one-time fitting cost up front).
    Warm {
        /// Workload name, paper spelling (e.g. `gups/8GB`).
        workload: String,
        /// Platform name, case-insensitive (e.g. `sandybridge`).
        platform: String,
    },
    /// `stats` — dump the metrics snapshot.
    Stats,
    /// `metrics` — Prometheus text exposition (multi-line response
    /// terminated by `# EOF`).
    Metrics,
    /// `trace [n]` — dump the last `n` request traces (default
    /// [`DEFAULT_TRACE_COUNT`]); the response is a `traces count=… …`
    /// header followed by that many `trace …` lines.
    Trace {
        /// How many traces to return (capped by the ring's contents).
        n: usize,
    },
    /// `recommend <workload> <platform> <budget> [threshold]` — pick
    /// the best admissible layout for a hugepage budget (the
    /// [`recommend`] crate's grammar, e.g. `64x2m+1x1g`), or — when the
    /// pair's CV error exceeds the confidence threshold — the most
    /// informative next layout to measure.
    Recommend {
        /// Workload name, paper spelling (e.g. `gups/8GB`).
        workload: String,
        /// Platform name, case-insensitive (e.g. `sandybridge`).
        platform: String,
        /// Budget token in the [`recommend::budget`] grammar.
        budget: String,
        /// Confidence threshold on the pair's K-fold CV error; `None`
        /// means [`recommend::DEFAULT_CV_THRESHOLD`].
        threshold: Option<f64>,
    },
    /// `pairs` — list fitted/fitting (workload, platform) pairs with
    /// their CV error, so operators can see what `recommend`/`warm`
    /// can serve; the response is a `pairs count=…` header followed by
    /// that many `pair …` lines.
    Pairs,
    /// `batch <req>[; <req>]…` — run several sub-requests from one
    /// line; the reply is a `batch count=…` header followed by exactly
    /// one reply line per sub-request, in order. Only single-line-reply
    /// verbs may appear inside a batch (no `metrics`, `trace`, `pairs`,
    /// or nested `batch`), so the framing is always `1 + count` lines.
    Batch(Vec<Request>),
}

/// How many traces `trace` returns when no count is given.
pub const DEFAULT_TRACE_COUNT: usize = 16;

/// Looks a model kind up by its wire name (`pham`, `poly2`, `mosmodel`, ...).
pub fn model_by_name(name: &str) -> Option<ModelKind> {
    ModelKind::ALL.into_iter().find(|k| k.name() == name)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable reason (sent back as `err <reason>`) for
/// unknown verbs, wrong arity, or an unrecognized model name.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_ascii_whitespace();
    match words.next() {
        Some("predict") => {
            let workload = words.next().ok_or("predict needs <workload>")?.to_string();
            let platform = words.next().ok_or("predict needs <platform>")?.to_string();
            let spec = words
                .next()
                .ok_or("predict needs <layout-spec>")?
                .to_string();
            let model = match words.next() {
                None => None,
                Some(name) => {
                    Some(model_by_name(name).ok_or_else(|| format!("unknown model {name:?}"))?)
                }
            };
            if let Some(extra) = words.next() {
                return Err(format!("unexpected trailing argument {extra:?}"));
            }
            Ok(Request::Predict {
                workload,
                platform,
                spec,
                model,
            })
        }
        Some("warm") => {
            let workload = words.next().ok_or("warm needs <workload>")?.to_string();
            let platform = words.next().ok_or("warm needs <platform>")?.to_string();
            if let Some(extra) = words.next() {
                return Err(format!("unexpected trailing argument {extra:?}"));
            }
            Ok(Request::Warm { workload, platform })
        }
        Some("stats") => {
            if words.next().is_some() {
                return Err("stats takes no arguments".to_string());
            }
            Ok(Request::Stats)
        }
        Some("metrics") => {
            if words.next().is_some() {
                return Err("metrics takes no arguments".to_string());
            }
            Ok(Request::Metrics)
        }
        Some("trace") => {
            let n = match words.next() {
                None => DEFAULT_TRACE_COUNT,
                Some(text) => text
                    .parse::<usize>()
                    .map_err(|_| format!("trace count must be a number, got {text:?}"))?,
            };
            if let Some(extra) = words.next() {
                return Err(format!("unexpected trailing argument {extra:?}"));
            }
            Ok(Request::Trace { n })
        }
        Some("recommend") => {
            let workload = words
                .next()
                .ok_or("recommend needs <workload>")?
                .to_string();
            let platform = words
                .next()
                .ok_or("recommend needs <platform>")?
                .to_string();
            let budget = words.next().ok_or("recommend needs <budget>")?.to_string();
            let threshold = match words.next() {
                None => None,
                Some(text) => Some(
                    text.parse::<f64>()
                        .map_err(|_| format!("threshold must be a number, got {text:?}"))?,
                ),
            };
            if let Some(extra) = words.next() {
                return Err(format!("unexpected trailing argument {extra:?}"));
            }
            Ok(Request::Recommend {
                workload,
                platform,
                budget,
                threshold,
            })
        }
        Some("pairs") => {
            if words.next().is_some() {
                return Err("pairs takes no arguments".to_string());
            }
            Ok(Request::Pairs)
        }
        Some("batch") => {
            // Sub-requests are ';'-separated, so recover the raw tail
            // after the verb rather than consuming the word iterator.
            let tail = line.trim_start().strip_prefix("batch").unwrap_or_default();
            parse_batch(tail)
        }
        Some(verb) => Err(format!("unknown command {verb:?}")),
        None => Err("empty request".to_string()),
    }
}

/// Parses the tail of a `batch` line into its sub-requests.
///
/// Nested batches are rejected *before* recursing into
/// [`parse_request`], so a hostile `batch batch batch …` line cannot
/// drive parser recursion depth with its length.
fn parse_batch(tail: &str) -> Result<Request, String> {
    let mut subs = Vec::new();
    for part in tail.split(';') {
        let part = part.trim();
        if part.is_empty() {
            return Err("batch sub-requests must be non-empty".to_string());
        }
        if part.split_ascii_whitespace().next() == Some("batch") {
            return Err("batch cannot nest".to_string());
        }
        let sub = parse_request(part).map_err(|e| format!("in batch: {e}"))?;
        if matches!(
            sub,
            Request::Metrics | Request::Trace { .. } | Request::Pairs
        ) {
            return Err("batch only accepts single-line-reply verbs".to_string());
        }
        subs.push(sub);
    }
    if subs.is_empty() {
        return Err("batch needs at least one sub-request".to_string());
    }
    Ok(Request::Batch(subs))
}

/// Renders the `batch …` response header (no newline): how many reply
/// lines follow, one per sub-request.
pub fn render_batch_header(count: usize) -> String {
    format!("batch count={count}")
}

/// Parses a `batch …` response header; returns the reply-line count.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_batch_header(line: &str) -> Result<usize, String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("batch") {
        return Err(format!("expected batch response, got {line:?}"));
    }
    let count = field(&mut words, "count")?
        .parse::<usize>()
        .map_err(|e| format!("bad count: {e}"))?;
    if words.next().is_some() {
        return Err("unexpected trailing tokens on batch header".to_string());
    }
    Ok(count)
}

/// A successful prediction: measured counters, the chosen model's
/// predicted runtime, and the model's fit-time error bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Measured runtime cycles (`R`).
    pub runtime_cycles: u64,
    /// Measured L2-TLB hits (`H`).
    pub stlb_hits: u64,
    /// Measured L2-TLB misses (`M`).
    pub stlb_misses: u64,
    /// Measured page-walk cycles (`C`).
    pub walk_cycles: u64,
    /// The model that produced the prediction.
    pub model: ModelKind,
    /// Predicted runtime cycles, `R̂(H, M, C)`.
    pub predicted: f64,
    /// The model's maximum relative error over its fitting battery.
    pub max_err: f64,
    /// The model's geometric-mean relative error over its battery.
    pub geo_mean_err: f64,
}

/// Renders a prediction as the `ok ...` response line (no newline).
pub fn render_prediction(p: &Prediction) -> String {
    format!(
        "ok r={} h={} m={} c={} model={} pred={} max_err={} geo_err={}",
        p.runtime_cycles,
        p.stlb_hits,
        p.stlb_misses,
        p.walk_cycles,
        p.model.name(),
        p.predicted,
        p.max_err,
        p.geo_mean_err,
    )
}

/// Renders the `warm ...` response line (no newline): the pair that was
/// warmed and how many models its bundle now holds.
pub fn render_warm(workload: &str, platform: &str, models: usize) -> String {
    format!("warm workload={workload} platform={platform} models={models}")
}

/// Parses a `warm ...` response line; returns the model count.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_warm(line: &str) -> Result<u64, String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("warm") {
        return Err(format!("expected warm response, got {line:?}"));
    }
    field(&mut words, "workload")?;
    field(&mut words, "platform")?;
    let models = field(&mut words, "models")?;
    models
        .parse::<u64>()
        .map_err(|e| format!("bad models: {e}"))
}

/// What a recommendation tells the operator to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecommendAction {
    /// Confident: run the named layout.
    Layout,
    /// Not confident: measure the named layout next (active learning).
    Measure,
}

/// A complete `recommend` answer as carried on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct RecommendReply {
    /// Run it, or measure it first.
    pub action: RecommendAction,
    /// The layout, as a [`layouts::spec`] token ready to feed back into
    /// `predict` (or a mosalloc configuration).
    pub spec: String,
    /// For [`RecommendAction::Layout`]: the predicted runtime cycles.
    /// For [`RecommendAction::Measure`]: the models' relative
    /// disagreement on the candidate (the expected information gain).
    pub value: f64,
    /// The pair's K-fold CV error the decision was based on.
    pub cv_err: f64,
    /// The confidence threshold the request resolved to.
    pub threshold: f64,
}

/// Renders a recommendation as the `rec ...` response line (no
/// newline). The value field is named by the action (`pred=` vs
/// `gain=`), so a reader cannot mistake a measurement suggestion for a
/// confident prediction.
pub fn render_recommend(r: &RecommendReply) -> String {
    match r.action {
        RecommendAction::Layout => format!(
            "rec action=layout layout={} pred={} cv_err={} threshold={}",
            r.spec, r.value, r.cv_err, r.threshold,
        ),
        RecommendAction::Measure => format!(
            "rec action=measure layout={} gain={} cv_err={} threshold={}",
            r.spec, r.value, r.cv_err, r.threshold,
        ),
    }
}

/// Parses a `rec ...` response line. `parse_recommend` of
/// [`render_recommend`]'s output is the identity, bit-for-bit.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_recommend(line: &str) -> Result<RecommendReply, String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("rec") {
        return Err(format!("expected rec response, got {line:?}"));
    }
    let parse_f64 = |s: &str, key: &str| s.parse::<f64>().map_err(|e| format!("bad {key}: {e}"));
    let action = match field(&mut words, "action")? {
        "layout" => RecommendAction::Layout,
        "measure" => RecommendAction::Measure,
        other => return Err(format!("bad action {other:?}")),
    };
    let spec = field(&mut words, "layout")?.to_string();
    let value_key = match action {
        RecommendAction::Layout => "pred",
        RecommendAction::Measure => "gain",
    };
    let value = parse_f64(field(&mut words, value_key)?, value_key)?;
    let cv_err = parse_f64(field(&mut words, "cv_err")?, "cv_err")?;
    let threshold = parse_f64(field(&mut words, "threshold")?, "threshold")?;
    if words.next().is_some() {
        return Err("unexpected trailing tokens on rec response".to_string());
    }
    Ok(RecommendReply {
        action,
        spec,
        value,
        cv_err,
        threshold,
    })
}

/// Renders the `pairs …` response header (no newline): how many `pair`
/// lines follow.
pub fn render_pairs_header(count: usize) -> String {
    format!("pairs count={count}")
}

/// Parses a `pairs …` response header; returns the pair count.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_pairs_header(line: &str) -> Result<usize, String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("pairs") {
        return Err(format!("expected pairs response, got {line:?}"));
    }
    let count = field(&mut words, "count")?
        .parse::<usize>()
        .map_err(|e| format!("bad count: {e}"))?;
    if words.next().is_some() {
        return Err("unexpected trailing tokens on pairs header".to_string());
    }
    Ok(count)
}

/// Renders one registry pair as a `pair ...` line (no newline). A pair
/// whose CV error has not been computed yet renders `cv_err=NaN`.
pub fn render_pair(info: &PairInfo) -> String {
    format!(
        "pair workload={} platform={} state={} models={} cv_err={}",
        info.workload,
        info.platform,
        if info.ready { "ready" } else { "fitting" },
        info.models,
        info.cv_err,
    )
}

/// Parses a `pair ...` line back into a [`PairInfo`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_pair(line: &str) -> Result<PairInfo, String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("pair") {
        return Err(format!("expected pair line, got {line:?}"));
    }
    let workload = field(&mut words, "workload")?.to_string();
    let platform = field(&mut words, "platform")?.to_string();
    let ready = match field(&mut words, "state")? {
        "ready" => true,
        "fitting" => false,
        other => return Err(format!("bad state {other:?}")),
    };
    let models = field(&mut words, "models")?
        .parse::<usize>()
        .map_err(|e| format!("bad models: {e}"))?;
    let cv_err = field(&mut words, "cv_err")?
        .parse::<f64>()
        .map_err(|e| format!("bad cv_err: {e}"))?;
    if words.next().is_some() {
        return Err("unexpected trailing tokens on pair line".to_string());
    }
    Ok(PairInfo {
        workload,
        platform,
        ready,
        models,
        cv_err,
    })
}

/// Renders the `traces …` response header (no newline): how many trace
/// lines follow and the ring's lifetime drop count.
pub fn render_trace_header(count: usize, dropped: u64) -> String {
    format!("traces count={count} dropped={dropped}")
}

/// Parses a `traces …` response header; returns `(count, dropped)`.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_trace_header(line: &str) -> Result<(usize, u64), String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("traces") {
        return Err(format!("expected traces response, got {line:?}"));
    }
    let count = field(&mut words, "count")?
        .parse::<usize>()
        .map_err(|e| format!("bad count: {e}"))?;
    let dropped = field(&mut words, "dropped")?
        .parse::<u64>()
        .map_err(|e| format!("bad dropped: {e}"))?;
    if words.next().is_some() {
        return Err("unexpected trailing tokens on traces header".to_string());
    }
    Ok((count, dropped))
}

fn field<'a>(words: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<&'a str, String> {
    let word = words.next().ok_or_else(|| format!("missing field {key}"))?;
    word.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=..., got {word:?}"))
}

/// Parses an `ok ...` response line back into a [`Prediction`].
///
/// # Errors
///
/// Returns a description of the first malformed field. `parse_prediction`
/// of [`render_prediction`]'s output is the identity, bit-for-bit.
pub fn parse_prediction(line: &str) -> Result<Prediction, String> {
    let mut words = line.split_ascii_whitespace();
    if words.next() != Some("ok") {
        return Err(format!("expected ok response, got {line:?}"));
    }
    let parse_u64 = |s: &str, key: &str| s.parse::<u64>().map_err(|e| format!("bad {key}: {e}"));
    let parse_f64 = |s: &str, key: &str| s.parse::<f64>().map_err(|e| format!("bad {key}: {e}"));
    let runtime_cycles = parse_u64(field(&mut words, "r")?, "r")?;
    let stlb_hits = parse_u64(field(&mut words, "h")?, "h")?;
    let stlb_misses = parse_u64(field(&mut words, "m")?, "m")?;
    let walk_cycles = parse_u64(field(&mut words, "c")?, "c")?;
    let model_name = field(&mut words, "model")?;
    let model = model_by_name(model_name).ok_or_else(|| format!("bad model {model_name:?}"))?;
    let predicted = parse_f64(field(&mut words, "pred")?, "pred")?;
    let max_err = parse_f64(field(&mut words, "max_err")?, "max_err")?;
    let geo_mean_err = parse_f64(field(&mut words, "geo_err")?, "geo_err")?;
    Ok(Prediction {
        runtime_cycles,
        stlb_hits,
        stlb_misses,
        walk_cycles,
        model,
        predicted,
        max_err,
        geo_mean_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(
            parse_request("predict gups/8GB sandybridge 2m:0..64M"),
            Ok(Request::Predict {
                workload: "gups/8GB".into(),
                platform: "sandybridge".into(),
                spec: "2m:0..64M".into(),
                model: None,
            })
        );
        assert_eq!(
            parse_request("predict x y 4k poly2"),
            Ok(Request::Predict {
                workload: "x".into(),
                platform: "y".into(),
                spec: "4k".into(),
                model: Some(ModelKind::Poly2),
            })
        );
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(
            parse_request("warm gups/8GB sandybridge"),
            Ok(Request::Warm {
                workload: "gups/8GB".into(),
                platform: "sandybridge".into(),
            })
        );
        assert_eq!(parse_request("metrics"), Ok(Request::Metrics));
        assert_eq!(
            parse_request("trace"),
            Ok(Request::Trace {
                n: DEFAULT_TRACE_COUNT
            })
        );
        assert_eq!(parse_request("trace 3"), Ok(Request::Trace { n: 3 }));
        assert_eq!(
            parse_request("recommend gups/8GB sandybridge 64x2m+1x1g"),
            Ok(Request::Recommend {
                workload: "gups/8GB".into(),
                platform: "sandybridge".into(),
                budget: "64x2m+1x1g".into(),
                threshold: None,
            })
        );
        assert_eq!(
            parse_request("recommend gups/8GB sandybridge 8x2m 0.25"),
            Ok(Request::Recommend {
                workload: "gups/8GB".into(),
                platform: "sandybridge".into(),
                budget: "8x2m".into(),
                threshold: Some(0.25),
            })
        );
        assert_eq!(parse_request("pairs"), Ok(Request::Pairs));
        assert_eq!(
            parse_request("batch stats; warm gups/8GB sandybridge ;predict x y 4k"),
            Ok(Request::Batch(vec![
                Request::Stats,
                Request::Warm {
                    workload: "gups/8GB".into(),
                    platform: "sandybridge".into(),
                },
                Request::Predict {
                    workload: "x".into(),
                    platform: "y".into(),
                    spec: "4k".into(),
                    model: None,
                },
            ]))
        );
        assert_eq!(
            parse_request("batch stats"),
            Ok(Request::Batch(vec![Request::Stats]))
        );
        for bad in [
            "",
            "predict",
            "predict a",
            "predict a b",
            "predict a b c nomodel",
            "predict a b c mosmodel extra",
            "warm",
            "warm a",
            "warm a b c",
            "stats now",
            "metrics now",
            "trace x",
            "trace -1",
            "trace 3 4",
            "recommend",
            "recommend a",
            "recommend a b",
            "recommend a b 8x2m nope",
            "recommend a b 8x2m 0.1 extra",
            "pairs now",
            "frobnicate",
            "batch",
            "batch ",
            "batch stats;",
            "batch ;stats",
            "batch stats; batch stats",
            "batch metrics",
            "batch trace 3",
            "batch pairs",
            "batch frobnicate",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn batch_header_roundtrips() {
        assert_eq!(render_batch_header(3), "batch count=3");
        assert_eq!(parse_batch_header("batch count=3"), Ok(3));
        for bad in ["", "batch", "batch count=x", "batch count=1 x", "ok r=1"] {
            assert!(
                parse_batch_header(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn trace_header_roundtrips() {
        let line = render_trace_header(5, 12);
        assert_eq!(line, "traces count=5 dropped=12");
        assert_eq!(parse_trace_header(&line), Ok((5, 12)));
        for bad in [
            "",
            "traces",
            "traces count=x dropped=0",
            "ok r=1",
            "traces count=1 dropped=2 x",
        ] {
            assert!(
                parse_trace_header(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn prediction_roundtrips_bit_for_bit() {
        let p = Prediction {
            runtime_cycles: 123_456_789,
            stlb_hits: 42,
            stlb_misses: 7,
            walk_cycles: 999,
            model: ModelKind::Mosmodel,
            predicted: 1.234_567_890_123_4e8,
            max_err: 0.071_234_567_89,
            geo_mean_err: f64::MIN_POSITIVE,
        };
        let parsed = parse_prediction(&render_prediction(&p)).unwrap();
        assert_eq!(parsed.predicted.to_bits(), p.predicted.to_bits());
        assert_eq!(parsed.geo_mean_err.to_bits(), p.geo_mean_err.to_bits());
        assert_eq!(parsed, p);
    }

    #[test]
    fn malformed_responses_error_cleanly() {
        for bad in [
            "",
            "err nope",
            "ok",
            "ok r=1",
            "ok r=x h=1 m=1 c=1 model=pham pred=1 max_err=1 geo_err=1",
            "ok r=1 h=1 m=1 c=1 model=zeus pred=1 max_err=1 geo_err=1",
        ] {
            assert!(parse_prediction(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn warm_roundtrips() {
        let line = render_warm("gups/8GB", "SandyBridge", 9);
        assert_eq!(line, "warm workload=gups/8GB platform=SandyBridge models=9");
        assert_eq!(parse_warm(&line), Ok(9));
        for bad in ["", "warm", "warm workload=w platform=p models=x", "ok r=1"] {
            assert!(parse_warm(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn recommend_roundtrips_bit_for_bit() {
        let layout = RecommendReply {
            action: RecommendAction::Layout,
            spec: "2m:0..67108864+1g:1073741824..2147483648".into(),
            value: 1.234_567_890_123_4e8,
            cv_err: 0.071_234_567_89,
            threshold: 0.1,
        };
        let line = render_recommend(&layout);
        assert!(line.starts_with("rec action=layout "));
        assert!(line.contains(" pred="));
        let parsed = parse_recommend(&line).unwrap();
        assert_eq!(parsed.value.to_bits(), layout.value.to_bits());
        assert_eq!(parsed, layout);

        let measure = RecommendReply {
            action: RecommendAction::Measure,
            spec: "4k".into(),
            value: 0.42,
            cv_err: f64::INFINITY,
            threshold: 0.1,
        };
        let line = render_recommend(&measure);
        assert!(line.contains(" gain="));
        assert_eq!(parse_recommend(&line), Ok(measure));

        for bad in [
            "",
            "rec",
            "rec action=panic layout=4k pred=1 cv_err=1 threshold=1",
            // The value key must match the action.
            "rec action=layout layout=4k gain=1 cv_err=1 threshold=1",
            "rec action=measure layout=4k pred=1 cv_err=1 threshold=1",
            "rec action=layout layout=4k pred=x cv_err=1 threshold=1",
            "rec action=layout layout=4k pred=1 cv_err=1 threshold=1 x",
            "ok r=1",
        ] {
            assert!(parse_recommend(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn pairs_lines_roundtrip_including_nan_cv() {
        assert_eq!(render_pairs_header(3), "pairs count=3");
        assert_eq!(parse_pairs_header("pairs count=3"), Ok(3));
        for bad in ["", "pairs", "pairs count=x", "pairs count=1 x", "ok r=1"] {
            assert!(
                parse_pairs_header(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }

        let ready = PairInfo {
            workload: "gups/8GB".into(),
            platform: "SandyBridge".into(),
            ready: true,
            models: 9,
            cv_err: 0.034_567_89,
        };
        let line = render_pair(&ready);
        assert_eq!(
            line,
            "pair workload=gups/8GB platform=SandyBridge state=ready models=9 cv_err=0.03456789"
        );
        assert_eq!(parse_pair(&line), Ok(ready));

        // A pair whose CV has not been computed yet carries NaN; NaN is
        // never `==` so compare fields (and bits) directly.
        let fresh = PairInfo {
            workload: "w".into(),
            platform: "p".into(),
            ready: false,
            models: 0,
            cv_err: f64::NAN,
        };
        let line = render_pair(&fresh);
        assert!(line.contains("state=fitting"));
        assert!(line.ends_with("cv_err=NaN"));
        let parsed = parse_pair(&line).unwrap();
        assert!(parsed.cv_err.is_nan());
        assert_eq!((parsed.workload, parsed.models), ("w".into(), 0));

        for bad in [
            "",
            "pair",
            "pair workload=w platform=p state=limbo models=1 cv_err=1",
            "pair workload=w platform=p state=ready models=x cv_err=1",
            "pair workload=w platform=p state=ready models=1 cv_err=1 x",
        ] {
            assert!(parse_pair(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn every_model_kind_has_a_wire_name() {
        for kind in ModelKind::ALL {
            assert_eq!(model_by_name(kind.name()), Some(kind));
        }
    }
}
