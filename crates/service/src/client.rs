//! A blocking mosaicd client for the CLI and the integration tests.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use mosmodel::ModelKind;

use crate::metrics::StatsSnapshot;
use crate::prom::{parse_metrics, MetricsReport};
use crate::protocol::{
    parse_batch_header, parse_pair, parse_pairs_header, parse_prediction, parse_recommend,
    parse_trace_header, parse_warm, Prediction, RecommendReply,
};
use crate::registry::PairInfo;

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hangup).
    Io(String),
    /// The server rejected the connection with `busy` (admission queue
    /// full) — back off and retry on a fresh connection.
    Busy,
    /// The server answered `err <reason>`.
    Server(String),
    /// The server's response did not parse — version skew or a
    /// non-mosaicd endpoint.
    Protocol(String),
    /// A request argument would corrupt the line-delimited framing
    /// (empty, or containing whitespace/control characters), so it was
    /// rejected client-side without touching the wire.
    InvalidArgument(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Busy => write!(f, "server busy (admission queue full)"),
            ClientError::Server(reason) => write!(f, "server error: {reason}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::InvalidArgument(e) => write!(f, "invalid argument: {e}"),
        }
    }
}

/// Rejects arguments that cannot survive the whitespace-delimited,
/// newline-framed wire protocol. An embedded `\n` would smuggle a
/// second request onto the wire and desynchronize request/response
/// pairing; an embedded space would silently shift every later
/// argument; an empty string would vanish entirely.
fn validate_arg(kind: &str, value: &str) -> Result<(), ClientError> {
    if value.is_empty() {
        return Err(ClientError::InvalidArgument(format!(
            "{kind} must not be empty"
        )));
    }
    if value.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(ClientError::InvalidArgument(format!(
            "{kind} {value:?} contains whitespace or control characters"
        )));
    }
    Ok(())
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// One persistent connection to a mosaicd server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the TCP connect or socket setup fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads one response line.
    fn roundtrip(&mut self, request: &str) -> Result<String, ClientError> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io("server closed the connection".to_string()));
        }
        let line = line.trim_end().to_string();
        if line == "busy" {
            return Err(ClientError::Busy);
        }
        if let Some(reason) = line.strip_prefix("err ") {
            return Err(ClientError::Server(reason.to_string()));
        }
        Ok(line)
    }

    /// Requests a prediction for `(workload, platform, layout-spec)`,
    /// optionally pinning the model (default: `mosmodel`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] under backpressure, [`ClientError::Server`]
    /// for unknown names or bad specs, [`ClientError::Io`] /
    /// [`ClientError::Protocol`] for transport or framing problems.
    pub fn predict(
        &mut self,
        workload: &str,
        platform: &str,
        spec: &str,
        model: Option<ModelKind>,
    ) -> Result<Prediction, ClientError> {
        validate_arg("workload", workload)?;
        validate_arg("platform", platform)?;
        validate_arg("layout spec", spec)?;
        let mut request = format!("predict {workload} {platform} {spec}");
        if let Some(kind) = model {
            request.push(' ');
            request.push_str(kind.name());
        }
        let line = self.roundtrip(&request)?;
        parse_prediction(&line).map_err(ClientError::Protocol)
    }

    /// Pre-fits (or revives) a pair's models without running a
    /// prediction; returns how many models the server's bundle holds.
    /// Blocks until the fit completes — issue warms from their own
    /// connections to overlap several pairs.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`].
    pub fn warm(&mut self, workload: &str, platform: &str) -> Result<u64, ClientError> {
        validate_arg("workload", workload)?;
        validate_arg("platform", platform)?;
        let line = self.roundtrip(&format!("warm {workload} {platform}"))?;
        parse_warm(&line).map_err(ClientError::Protocol)
    }

    /// Asks the server to recommend a layout for a hugepage budget
    /// (`64x2m+1x1g` grammar); `threshold` overrides the server's
    /// default confidence threshold on the pair's CV error. The reply is
    /// either a confident layout recommendation or — when the models
    /// cannot be trusted for the pair — the most informative layout to
    /// measure next.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`], plus
    /// [`ClientError::Server`] for malformed or pool-exceeding budgets.
    pub fn recommend(
        &mut self,
        workload: &str,
        platform: &str,
        budget: &str,
        threshold: Option<f64>,
    ) -> Result<RecommendReply, ClientError> {
        validate_arg("workload", workload)?;
        validate_arg("platform", platform)?;
        validate_arg("budget", budget)?;
        let mut request = format!("recommend {workload} {platform} {budget}");
        if let Some(t) = threshold {
            if !t.is_finite() {
                return Err(ClientError::InvalidArgument(format!(
                    "threshold {t} is not finite"
                )));
            }
            request.push(' ');
            request.push_str(&t.to_string());
        }
        let line = self.roundtrip(&request)?;
        parse_recommend(&line).map_err(ClientError::Protocol)
    }

    /// Lists every `(workload, platform)` pair the server's registry
    /// knows — fitted or mid-fit — with model counts and memoized CV
    /// errors (`NaN` until the pair's first `recommend`).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`].
    pub fn pairs(&mut self) -> Result<Vec<PairInfo>, ClientError> {
        let header = self.roundtrip("pairs")?;
        let count = parse_pairs_header(&header).map_err(ClientError::Protocol)?;
        let mut pairs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let line = self.read_line()?;
            pairs.push(parse_pair(&line).map_err(ClientError::Protocol)?);
        }
        Ok(pairs)
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let line = self.roundtrip("stats")?;
        StatsSnapshot::parse(&line).map_err(ClientError::Protocol)
    }

    /// Sends several sub-requests as one `batch` line and returns the
    /// raw reply line for each, in order. A sub-request that fails
    /// server-side comes back as its `err …` line rather than failing
    /// the whole call, so a partially successful batch is observable.
    ///
    /// Sub-requests must be single-line-reply verbs (`predict`, `warm`,
    /// `stats`, `recommend`); the server rejects `metrics`, `trace`,
    /// `pairs`, and nested `batch` lines.
    ///
    /// # Errors
    ///
    /// [`ClientError::InvalidArgument`] for an empty batch or a
    /// sub-request that would corrupt the framing (`;`, newline, or
    /// control characters); otherwise the same failure modes as
    /// [`Client::predict`].
    pub fn batch(&mut self, requests: &[&str]) -> Result<Vec<String>, ClientError> {
        if requests.is_empty() {
            return Err(ClientError::InvalidArgument(
                "batch needs at least one sub-request".to_string(),
            ));
        }
        for request in requests {
            if request.trim().is_empty() {
                return Err(ClientError::InvalidArgument(
                    "batch sub-request must not be empty".to_string(),
                ));
            }
            if request.chars().any(|c| c == ';' || c.is_control()) {
                return Err(ClientError::InvalidArgument(format!(
                    "batch sub-request {request:?} contains ';' or control characters"
                )));
            }
        }
        let header = self.roundtrip(&format!("batch {}", requests.join(";")))?;
        let count = parse_batch_header(&header).map_err(ClientError::Protocol)?;
        let mut replies = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            replies.push(self.read_line()?);
        }
        Ok(replies)
    }

    /// Reads one response line (without sending anything); used by the
    /// multi-line verbs after the first line has been read.
    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io("server closed the connection".to_string()));
        }
        Ok(line.trim_end().to_string())
    }

    /// Fetches the Prometheus exposition (the `metrics` verb) and parses
    /// it back into a [`MetricsReport`]. Use [`Client::metrics_text`]
    /// for the raw scrape body.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`].
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        let text = self.metrics_text()?;
        parse_metrics(&text).map_err(ClientError::Protocol)
    }

    /// Fetches the raw Prometheus text exposition, exactly as a scraper
    /// would see it (terminated by `# EOF` and a newline).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`].
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let first = self.roundtrip("metrics")?;
        let mut text = String::new();
        let mut line = first;
        loop {
            let done = line == "# EOF";
            text.push_str(&line);
            text.push('\n');
            if done {
                return Ok(text);
            }
            line = self.read_line()?;
        }
    }

    /// Fetches the last `n` request traces; returns the traces (oldest
    /// first) and the ring's lifetime drop counter.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`].
    pub fn trace(&mut self, n: usize) -> Result<(Vec<obs::Trace>, u64), ClientError> {
        let header = self.roundtrip(&format!("trace {n}"))?;
        let (count, dropped) = parse_trace_header(&header).map_err(ClientError::Protocol)?;
        let mut traces = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let line = self.read_line()?;
            traces.push(obs::parse_trace(&line).map_err(ClientError::Protocol)?);
        }
        Ok((traces, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_hostile_arguments_are_rejected_client_side() {
        for bad in ["", "a b", "a\tb", "a\nb", "a\rb", "spec\nstats"] {
            let err = validate_arg("workload", bad).unwrap_err();
            assert!(
                matches!(err, ClientError::InvalidArgument(_)),
                "{bad:?} should be InvalidArgument, got {err:?}"
            );
        }
        for good in ["gups/8GB", "sandybridge", "2m:0..64M+1g:1G..2G", "a_b"] {
            assert_eq!(validate_arg("workload", good), Ok(()), "{good:?}");
        }
    }

    #[test]
    fn predict_and_warm_validate_before_touching_the_wire() {
        // No server anywhere: if validation happens first, these fail
        // with InvalidArgument, never Io.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = Client::connect(listener.local_addr().unwrap()).unwrap();
        for (w, p, s) in [
            ("", "sandybridge", "4k"),
            ("gups/8GB", "sandy bridge", "4k"),
            ("gups/8GB", "sandybridge", "4k\nstats"),
        ] {
            let err = client.predict(w, p, s, None).unwrap_err();
            assert!(matches!(err, ClientError::InvalidArgument(_)), "{err:?}");
        }
        let err = client.warm("gups/8GB", "sandy\nbridge").unwrap_err();
        assert!(matches!(err, ClientError::InvalidArgument(_)), "{err:?}");
        for bad in [
            &[] as &[&str],
            &[""],
            &["   "],
            &["stats;stats"],
            &["stats\nstats"],
        ] {
            let err = client.batch(bad).unwrap_err();
            assert!(matches!(err, ClientError::InvalidArgument(_)), "{err:?}");
        }
        for (w, p, b, t) in [
            ("gups/8GB", "sandybridge", "8x2m\nstats", None),
            ("gups/8GB", "sandybridge", "64x2m + 1x1g", None),
            ("gups/8GB", "sandybridge", "8x2m", Some(f64::NAN)),
            ("gups/8GB", "sandybridge", "8x2m", Some(f64::INFINITY)),
        ] {
            let err = client.recommend(w, p, b, t).unwrap_err();
            assert!(matches!(err, ClientError::InvalidArgument(_)), "{err:?}");
        }
    }
}
