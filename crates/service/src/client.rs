//! A blocking mosaicd client for the CLI and the integration tests.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use mosmodel::ModelKind;

use crate::metrics::StatsSnapshot;
use crate::protocol::{parse_prediction, Prediction};

/// Why a client call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hangup).
    Io(String),
    /// The server rejected the connection with `busy` (admission queue
    /// full) — back off and retry on a fresh connection.
    Busy,
    /// The server answered `err <reason>`.
    Server(String),
    /// The server's response did not parse — version skew or a
    /// non-mosaicd endpoint.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Busy => write!(f, "server busy (admission queue full)"),
            ClientError::Server(reason) => write!(f, "server error: {reason}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// One persistent connection to a mosaicd server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the TCP connect or socket setup fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads one response line.
    fn roundtrip(&mut self, request: &str) -> Result<String, ClientError> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io("server closed the connection".to_string()));
        }
        let line = line.trim_end().to_string();
        if line == "busy" {
            return Err(ClientError::Busy);
        }
        if let Some(reason) = line.strip_prefix("err ") {
            return Err(ClientError::Server(reason.to_string()));
        }
        Ok(line)
    }

    /// Requests a prediction for `(workload, platform, layout-spec)`,
    /// optionally pinning the model (default: `mosmodel`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] under backpressure, [`ClientError::Server`]
    /// for unknown names or bad specs, [`ClientError::Io`] /
    /// [`ClientError::Protocol`] for transport or framing problems.
    pub fn predict(
        &mut self,
        workload: &str,
        platform: &str,
        spec: &str,
        model: Option<ModelKind>,
    ) -> Result<Prediction, ClientError> {
        let mut request = format!("predict {workload} {platform} {spec}");
        if let Some(kind) = model {
            request.push(' ');
            request.push_str(kind.name());
        }
        let line = self.roundtrip(&request)?;
        parse_prediction(&line).map_err(ClientError::Protocol)
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Client::predict`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let line = self.roundtrip("stats")?;
        StatsSnapshot::parse(&line).map_err(ClientError::Protocol)
    }
}
