//! **mosaicd** — the prediction-serving subsystem.
//!
//! The paper's workflow ends with a fitted model; this crate turns that
//! model into an online service. A [`registry::ModelRegistry`] fits (or
//! reloads) the nine runtime models per `(workload, platform)` pair and
//! persists the coefficients in the versioned [`mosmodel::persist`]
//! format; a [`server::Server`] exposes them over a line-delimited TCP
//! protocol with an event-driven worker plane (a fixed pool of shards,
//! each multiplexing its connections through one `poll(2)` readiness
//! loop), bounded admission with explicit backpressure, and an embedded
//! metrics endpoint; a blocking [`client::Client`] speaks the protocol
//! for the CLI and tests.
//!
//! # Wire protocol
//!
//! Requests and responses are single `\n`-terminated lines over TCP;
//! a connection may carry any number of requests.
//!
//! | request | response |
//! |---|---|
//! | `predict <workload> <platform> <layout-spec> [model]` | `ok r=… h=… m=… c=… model=… pred=… max_err=… geo_err=…` |
//! | `warm <workload> <platform>` | `warm workload=… platform=… models=…` |
//! | `stats` | `stats requests=… … p50_us=… buckets=…` |
//! | `metrics` | Prometheus text exposition, multi-line, ends with `# EOF` |
//! | `trace [n]` | `traces count=… dropped=…` then one `trace …` line per trace |
//! | `recommend <workload> <platform> <budget> [threshold]` | `rec action=layout layout=… pred=…` or `rec action=measure layout=… gain=…` |
//! | `pairs` | `pairs count=…` then one `pair …` line per (workload, platform) |
//! | `batch <req>[; <req>]…` | `batch count=…` then one reply line per sub-request |
//! | anything else | `err <reason>` |
//!
//! `metrics`, `trace`, `pairs`, and `batch` are the only multi-line
//! responses; all are self-framing (the `# EOF` terminator and the
//! `count=` headers), so clients never guess where a response ends.
//! `batch` runs `;`-separated single-line-reply sub-requests (`predict`,
//! `warm`, `stats`, `recommend`) from one wire line, amortizing a round
//! trip across N requests; each sub-reply is byte-identical to what the
//! standalone request would have answered. Request handling is traced
//! end-to-end into fixed-capacity ring buffers ([`obs`]): wall-domain
//! spans (µs) for the request path, sim-domain spans (simulated cycles,
//! byte-identical across identical runs) for the partial simulation.
//!
//! `warm` pre-fits a pair's models without running a prediction, so a
//! deployment can pay the one-time fitting cost up front (`mosaic serve
//! --warm <workload>:<platform>`). Fitting is per-pair singleflight:
//! one cold fit never blocks predictions for other pairs, and repeat
//! predictions for the same `(workload, platform, layout, model)` are
//! answered bit-identically from a bounded deterministic cache.
//!
//! `recommend` turns the service into a decision engine: given a
//! hugepage budget in the [`recommend`] crate's grammar (`64x2m+1x1g`),
//! the server enumerates admissible candidate layouts with the paper's
//! exploration heuristics, scores each with the pair's fitted Mosmodel,
//! and returns the cheapest — unless the pair's K-fold CV error exceeds
//! the confidence threshold, in which case it returns the layout whose
//! measurement would be most informative (`action=measure`, active
//! learning). Recommendations are deterministic and served from their
//! own bounded FIFO cache keyed on the canonical budget.
//!
//! A connection arriving while the plane's backlog is at its bound is
//! answered `busy` and closed — explicit backpressure instead of
//! unbounded buffering. Admitted connections are nonblocking and
//! multiplexed, so an idle persistent connection costs a poll slot, not
//! a worker thread. Layout specs use the [`layouts::spec`] grammar (`4k`,
//! `2m`, `1g`, `2m:0..64M+1g:1G..2G`); floating-point fields are printed
//! with Rust's shortest-roundtrip formatting, so parsing them back
//! yields bit-identical values.
//!
//! # Example
//!
//! ```no_run
//! use harness::{Grid, SPEED_FAST};
//! use service::client::Client;
//! use service::registry::ModelRegistry;
//! use service::server::{Server, ServerConfig};
//!
//! let registry = ModelRegistry::new(Grid::new(SPEED_FAST), None);
//! let server = Server::start(ServerConfig::default(), registry).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let p = client.predict("gups/8GB", "sandybridge", "2m:0..64M", None).unwrap();
//! println!("predicted {} cycles (max model error {:.1}%)", p.predicted, 100.0 * p.max_err);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A panic in request handling kills a worker thread (see
// `server::handle_line_shielded`), so panicking shortcuts are banned in
// production code; tests may still assert with unwrap/expect/indexing.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)
)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod prom;
pub mod protocol;
pub mod registry;
pub mod server;
mod trace;

use std::fmt;

/// Why a prediction request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The workload name is not in the registry.
    UnknownWorkload(String),
    /// The platform name is not a known platform.
    UnknownPlatform(String),
    /// The layout spec did not parse or build.
    BadSpec(String),
    /// The hugepage budget did not parse or exceeds the pool.
    BadBudget(String),
    /// The requested model is not available for the pair (e.g. a
    /// degenerate anchor made its fit impossible).
    ModelUnavailable(String),
    /// The battery fit for the pair panicked; the fitting slot was
    /// released, so a later query retries from scratch.
    FitFailed(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownWorkload(w) => write!(f, "unknown workload {w:?}"),
            ServiceError::UnknownPlatform(p) => write!(f, "unknown platform {p:?}"),
            ServiceError::BadSpec(s) => write!(f, "{s}"),
            ServiceError::BadBudget(b) => write!(f, "{b}"),
            ServiceError::ModelUnavailable(m) => write!(f, "model {m:?} unavailable for this pair"),
            ServiceError::FitFailed(why) => write!(f, "model fitting failed: {why}"),
        }
    }
}

impl std::error::Error for ServiceError {}
