//! The mosaicd TCP server: acceptor, bounded admission queue, worker
//! pool.
//!
//! One acceptor thread owns the listener. Accepted connections go into a
//! bounded queue; when the queue is full the connection is answered
//! `busy` and closed immediately — explicit backpressure instead of
//! unbounded buffering or silent drops. A fixed pool of worker threads
//! pops connections and serves them line-by-line; connections are
//! persistent, so one client can issue many requests.
//!
//! Shutdown is graceful: the flag flips, the acceptor stops admitting,
//! and workers finish the request they are executing, then drain the
//! admission queue before exiting. Workers poll the flag between
//! requests via a read timeout, so an idle persistent connection cannot
//! hold shutdown hostage.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use harness::{measure_layout_traced, MachineVariant, SIM_STAGES};
use layouts::parse_spec;
use machine::Platform;
use mosmodel::dataset::{LayoutKind, Sample};
use mosmodel::{ModelKind, RuntimeModel};
use obs::{render_trace, ClockDomain, SpanRecorder, StageSums, TraceRing};
use recommend::{
    enumerate_candidates, parse_budget, recommend_over, render_budget, render_layout_spec,
    Recommendation, Score, Scorer, DEFAULT_CV_THRESHOLD, DEFAULT_EXPLORE_STEPS,
};
use vmcore::MemoryLayout;

use crate::cache::prediction_key;
use crate::metrics::{Metrics, StatsSnapshot};
use crate::prom::{render_metrics, MetricsReport, StageEntry};
use crate::protocol::{
    parse_request, render_pair, render_pairs_header, render_prediction, render_recommend,
    render_trace_header, render_warm, Prediction, RecommendAction, RecommendReply, Request,
};
use crate::registry::{ModelRegistry, RecommendKey, RegistryEntry};
use crate::trace::RequestTrace;
use crate::ServiceError;

/// Longest request line the server accepts, in bytes. A client
/// streaming bytes with no newline is answered `err request too long`
/// once and ignored until its next newline, instead of growing the
/// line buffer without bound.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Spans one request may record per clock domain before the recorder
/// starts counting drops. Sized for the deepest path (a cold predict:
/// read, parse, fit, cache lookup, simulation, render, plus three sim
/// spans per repetition) with headroom.
pub const TRACE_SPAN_CAPACITY: usize = 16;

/// Wall-domain stage names the request path records, in pipeline order.
/// `explore` (candidate enumeration) and `score` (per-candidate
/// prediction + decision) are recorded only by the `recommend` verb.
pub const WALL_STAGES: [&str; 8] = [
    "read",
    "parse",
    "fit",
    "cache_lookup",
    "explore",
    "score",
    "simulate",
    "render",
];

/// How a [`Server`] listens and schedules work.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Admission-queue bound; connections beyond it are answered `busy`.
    pub queue_bound: usize,
    /// How many finished request traces the server retains for the
    /// `trace` verb; older traces are evicted (and counted as dropped)
    /// rather than growing memory.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_bound: 64,
            trace_capacity: 256,
        }
    }
}

/// State shared between the acceptor, the workers, and the handle.
struct Shared {
    registry: ModelRegistry,
    metrics: Metrics,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_bound: usize,
    /// Wall-domain per-stage tick totals (µs), exposed by `metrics`.
    wall_stages: StageSums,
    /// Sim-domain per-stage tick totals (simulated cycles).
    sim_stages: StageSums,
    /// Ring of the most recent finished traces, served by `trace`.
    traces: TraceRing,
}

/// A running mosaicd instance. Dropping the handle without calling
/// [`Server::shutdown`] detaches the threads (the process exit reaps
/// them); call `shutdown` for a graceful drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns the
    /// running server.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (address in use, permission, ...).
    pub fn start(config: ServerConfig, registry: ModelRegistry) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            metrics: Metrics::new(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_bound: config.queue_bound.max(1),
            wall_stages: StageSums::new(&WALL_STAGES),
            sim_stages: StageSums::new(&SIM_STAGES),
            traces: TraceRing::new(config.trace_capacity),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mosaicd-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mosaicd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot (same data as the `stats`
    /// command).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot_stats(&self.shared)
    }

    /// The registry backing the server.
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// The full observability report (same data as the `metrics` verb).
    pub fn metrics_report(&self) -> MetricsReport {
        metrics_report(&self.shared)
    }

    /// Gracefully shuts down: stop admitting, finish in-flight requests,
    /// drain the admission queue, join all threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // accept() has no timeout; a loopback connection unblocks it so
        // the acceptor can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Locks the admission queue, recovering from poisoning. The queue
/// holds plain `TcpStream`s with no invariants a half-completed
/// operation could break, so a panic elsewhere must not take the whole
/// pool down with `PoisonError` panics.
fn lock_queue(shared: &Shared) -> MutexGuard<'_, VecDeque<TcpStream>> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the acceptor should do after `accept()` returns an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AcceptErrorAction {
    /// Shutdown was requested; stop accepting.
    Shutdown,
    /// Transient failure (e.g. EMFILE while connections drain): pause
    /// before retrying instead of hot-spinning on the error.
    Backoff(Duration),
}

/// Backoff policy for `accept()` errors. A persistent error like EMFILE
/// used to make the acceptor spin `Err => continue` at 100% CPU with no
/// shutdown check; instead, back off exponentially (1ms doubling to a
/// 100ms ceiling) and honor the shutdown flag first.
fn on_accept_error(shutdown_requested: bool, consecutive_errors: u32) -> AcceptErrorAction {
    if shutdown_requested {
        return AcceptErrorAction::Shutdown;
    }
    let millis = 1u64
        .checked_shl(consecutive_errors)
        .unwrap_or(u64::MAX)
        .min(100);
    AcceptErrorAction::Backoff(Duration::from_millis(millis))
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut consecutive_errors: u32 = 0;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => {
                consecutive_errors = 0;
                conn
            }
            Err(_) => {
                match on_accept_error(shared.shutdown.load(Ordering::SeqCst), consecutive_errors) {
                    AcceptErrorAction::Shutdown => return,
                    AcceptErrorAction::Backoff(pause) => {
                        consecutive_errors = consecutive_errors.saturating_add(1);
                        std::thread::sleep(pause);
                        continue;
                    }
                }
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = lock_queue(shared);
        if queue.len() >= shared.queue_bound {
            drop(queue);
            shared.metrics.record_busy();
            let mut stream = stream;
            let _ = stream.write_all(b"busy\n");
            // Drain anything the client already pipelined so the close is
            // a clean FIN; closing with unread data can turn into an RST
            // that discards the busy reply on the way out.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
            let _ = io::Read::read(&mut stream, &mut [0u8; 256]);
        } else {
            queue.push_back(stream);
            shared.metrics.set_queue_depth(queue.len() as u64);
            drop(queue);
            shared.available.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(conn) = queue.pop_front() {
                    shared.metrics.set_queue_depth(queue.len() as u64);
                    break Some(conn);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match conn {
            Some(conn) => serve_connection(conn, shared),
            None => return,
        }
    }
}

/// Serves one persistent connection until EOF, an I/O error, or a
/// shutdown observed *between* requests (in-flight requests always
/// complete and their response is written).
///
/// Request lines are accumulated manually (via `fill_buf`/`consume`)
/// rather than with `read_line`, for two reasons: a partial line must
/// survive the 100ms shutdown-poll read timeouts untouched (a slow
/// writer's request would otherwise be truncated), and the buffer must
/// be *bounded* — a line past [`MAX_REQUEST_BYTES`] is answered
/// `err request too long` once, then discarded up to the next newline
/// so the connection resyncs at a request boundary.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    // True while skipping the remainder of an over-long request.
    let mut discarding = false;
    // When the current request's first bytes arrived — the wall epoch of
    // its trace, so the `read` span covers the whole line accumulation.
    let mut request_started: Option<Instant> = None;
    loop {
        let mut complete = false;
        let consumed = match reader.fill_buf() {
            Ok([]) => return,
            Ok(buf) => {
                if request_started.is_none() {
                    request_started = Some(Instant::now());
                }
                match buf.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        if !discarding {
                            line.extend_from_slice(buf.get(..nl).unwrap_or_default());
                        }
                        complete = true;
                        nl + 1
                    }
                    None => {
                        if !discarding {
                            line.extend_from_slice(buf);
                        }
                        buf.len()
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // The timeout exists only to poll the shutdown flag; any
                // partial line stays in `line` for the next window.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        reader.consume(consumed);

        if discarding {
            // The over-long request's tail is being thrown away; a
            // newline means the connection is back at a boundary.
            discarding = !complete;
            if complete {
                request_started = None;
            }
            continue;
        }
        if line.len() > MAX_REQUEST_BYTES {
            shared.metrics.record_request(0, false, true);
            line.clear();
            // If the newline already arrived we are at a boundary;
            // otherwise keep discarding until it does.
            discarding = !complete;
            if complete {
                request_started = None;
            }
            if writer
                .write_all(b"err request too long (max 65536 bytes)\n")
                .is_err()
            {
                return;
            }
            continue;
        }
        if !complete {
            continue;
        }

        let started = Instant::now();
        let epoch = request_started.take().unwrap_or(started);
        let mut tracer = RequestTrace::new(TRACE_SPAN_CAPACITY, epoch);
        // The read span: from the request's first byte to the complete
        // line (handling latency, recorded below, starts here).
        let read_end = tracer.now_us();
        tracer.wall.record("read", 0, read_end);
        let (response, verb, was_predict, was_error) = match std::str::from_utf8(&line) {
            Ok(text) => handle_line_shielded(text, shared, &mut tracer),
            // Raw non-UTF-8 bytes cannot carry a valid request; close,
            // matching the old `read_line` behaviour.
            Err(_) => return,
        };
        let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        shared
            .metrics
            .record_request(latency_us, was_predict, was_error);
        finish_trace(shared, verb, tracer);
        line.clear();
        if writer.write_all(response.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
    }
}

/// Folds a finished request's spans into the stage sums and pushes its
/// trace(s) into the ring: always a wall-domain trace, plus a sim-domain
/// trace when the partial simulation ran.
fn finish_trace(shared: &Shared, verb: &'static str, tracer: RequestTrace) {
    let ((wall_spans, wall_dropped), (sim_spans, sim_dropped)) = tracer.into_parts();
    shared.wall_stages.add_spans(&wall_spans);
    shared
        .traces
        .push(verb, ClockDomain::Wall, wall_spans, wall_dropped);
    if !sim_spans.is_empty() || sim_dropped > 0 {
        shared.sim_stages.add_spans(&sim_spans);
        shared
            .traces
            .push(verb, ClockDomain::Sim, sim_spans, sim_dropped);
    }
}

/// Takes the stats snapshot all three exposure paths (`stats`,
/// `metrics`, [`Server::stats`]) share.
fn snapshot_stats(shared: &Shared) -> StatsSnapshot {
    shared.metrics.snapshot(
        shared.registry.counters(),
        shared.registry.prediction_cache().counters(),
        shared.registry.recommend_cache().counters(),
        shared.registry.prediction_cache().len() as u64,
    )
}

/// Assembles the `metrics` report from the live server state.
fn metrics_report(shared: &Shared) -> MetricsReport {
    let stats = snapshot_stats(shared);
    let entries = |sums: &StageSums| -> Vec<StageEntry> {
        sums.snapshot()
            .into_iter()
            .map(|s| StageEntry {
                stage: s.stage.to_string(),
                total_ticks: s.total_ticks,
                spans: s.spans,
            })
            .collect()
    };
    MetricsReport {
        stats,
        wall_stages: entries(&shared.wall_stages),
        sim_stages: entries(&shared.sim_stages),
        traces_buffered: shared.traces.len() as u64,
        trace_capacity: shared.traces.capacity() as u64,
        traces_dropped: shared.traces.dropped(),
    }
}

/// Runs [`handle_line`] under a panic shield. The worker pool is a
/// fixed resource: a panic that escapes request handling permanently
/// removes a worker, and enough hostile requests would empty the pool
/// while the acceptor keeps admitting connections. Any panic becomes a
/// protocol-level `err internal ...` response and the worker lives on
/// (the shared queue tolerates this — see [`lock_queue`]).
fn handle_line_shielded(
    line: &str,
    shared: &Shared,
    tracer: &mut RequestTrace,
) -> (String, &'static str, bool, bool) {
    catch_unwind(AssertUnwindSafe(|| {
        handle_line(line.trim_end(), shared, tracer)
    }))
    .unwrap_or_else(|_| {
        (
            "err internal: request handler panicked; request rejected".to_string(),
            "panic",
            false,
            true,
        )
    })
}

/// Handles one request line; returns `(response, verb, was_predict,
/// was_error)`. The verb labels the request's trace in the ring.
fn handle_line(
    line: &str,
    shared: &Shared,
    tracer: &mut RequestTrace,
) -> (String, &'static str, bool, bool) {
    // Fault-injection hook for the shield regression test: the only way
    // to prove a worker survives a handler panic is to panic in a
    // handler. Debug builds only; release servers treat the verb as an
    // unknown command.
    #[cfg(debug_assertions)]
    if line == "inject-panic" {
        // audit:allow(panic-surface) deliberate fault injection, compiled out of release; the shield test depends on it
        panic!("injected worker panic (requested by the shield regression test)");
    }
    let parse_start = tracer.now_us();
    let parsed = parse_request(line);
    tracer.record("parse", parse_start);
    match parsed {
        Ok(Request::Stats) => {
            let snap = snapshot_stats(shared);
            let render_start = tracer.now_us();
            let text = snap.render();
            tracer.record("render", render_start);
            (text, "stats", false, false)
        }
        Ok(Request::Predict {
            workload,
            platform,
            spec,
            model,
        }) => match predict_traced(&shared.registry, &workload, &platform, &spec, model, tracer) {
            Ok(prediction) => {
                let render_start = tracer.now_us();
                let text = render_prediction(&prediction);
                tracer.record("render", render_start);
                (text, "predict", true, false)
            }
            Err(e) => (format!("err {e}"), "predict", true, true),
        },
        Ok(Request::Warm { workload, platform }) => {
            match warm(&shared.registry, &workload, &platform) {
                Ok(models) => (
                    render_warm(&workload, &platform, models),
                    "warm",
                    false,
                    false,
                ),
                Err(e) => (format!("err {e}"), "warm", false, true),
            }
        }
        Ok(Request::Metrics) => {
            let report = metrics_report(shared);
            let render_start = tracer.now_us();
            let text = render_metrics(&report);
            tracer.record("render", render_start);
            // render_metrics ends with "# EOF\n"; the connection loop
            // appends the final newline, so trim the trailing one here.
            (
                text.trim_end_matches('\n').to_string(),
                "metrics",
                false,
                false,
            )
        }
        Ok(Request::Trace { n }) => {
            let traces = shared.traces.last(n);
            let render_start = tracer.now_us();
            let mut text = render_trace_header(traces.len(), shared.traces.dropped());
            for trace in &traces {
                text.push('\n');
                text.push_str(&render_trace(trace));
            }
            tracer.record("render", render_start);
            (text, "trace", false, false)
        }
        Ok(Request::Recommend {
            workload,
            platform,
            budget,
            threshold,
        }) => {
            shared.metrics.record_recommend();
            match recommend_traced(
                &shared.registry,
                &workload,
                &platform,
                &budget,
                threshold,
                tracer,
            ) {
                Ok(reply) => {
                    let render_start = tracer.now_us();
                    let text = render_recommend(&reply);
                    tracer.record("render", render_start);
                    (text, "recommend", false, false)
                }
                Err(e) => (format!("err {e}"), "recommend", false, true),
            }
        }
        Ok(Request::Pairs) => {
            let pairs = shared.registry.pairs();
            let render_start = tracer.now_us();
            let mut text = render_pairs_header(pairs.len());
            for info in &pairs {
                text.push('\n');
                text.push_str(&render_pair(info));
            }
            tracer.record("render", render_start);
            (text, "pairs", false, false)
        }
        Err(reason) => (format!("err {reason}"), "error", false, true),
    }
}

/// Pre-fits (or revives) a pair's models without running a prediction;
/// returns how many models the bundle holds. Shares the registry's
/// singleflight path, so concurrent warms and predicts for the same
/// pair coalesce onto one fit.
///
/// # Errors
///
/// Same failure modes as [`ModelRegistry::entry`].
pub fn warm(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
) -> Result<usize, ServiceError> {
    let platform = Platform::by_name(platform)
        .ok_or_else(|| ServiceError::UnknownPlatform(platform.to_string()))?;
    let entry = registry.entry(workload, platform)?;
    Ok(entry.bundle.models.len())
}

/// The in-process prediction path: measure the layout with the grid's
/// methodology, then apply the fitted model. Public so the integration
/// tests can compare the server's answers bit-for-bit against a direct
/// call.
///
/// `predict` is a pure function of `(workload, platform, layout,
/// model)`, so results are memoized in the registry's bounded
/// [`PredictionCache`](crate::cache::PredictionCache): a hit skips the
/// partial simulation entirely and returns a `Prediction` that is
/// bit-identical to the uncached answer.
pub fn predict(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    spec: &str,
    model: Option<ModelKind>,
) -> Result<Prediction, ServiceError> {
    // The disabled tracer records nothing, so the traced and untraced
    // paths execute identical prediction logic (bit-identical results).
    predict_traced(
        registry,
        workload,
        platform,
        spec,
        model,
        &mut RequestTrace::disabled(),
    )
}

/// [`predict`] with stage tracing: wall-domain spans for the registry
/// fit, the cache lookup, and the partial simulation land in
/// `tracer.wall`; the simulation itself records sim-domain spans
/// (simulated cycles) into `tracer.sim` via `measure_layout_traced`.
pub(crate) fn predict_traced(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    spec: &str,
    model: Option<ModelKind>,
    tracer: &mut RequestTrace,
) -> Result<Prediction, ServiceError> {
    let platform = Platform::by_name(platform)
        .ok_or_else(|| ServiceError::UnknownPlatform(platform.to_string()))?;
    let fit_start = tracer.now_us();
    let entry = registry.entry(workload, platform)?;
    tracer.record("fit", fit_start);
    let layout =
        parse_spec(entry.ctx.pool(), spec).map_err(|e| ServiceError::BadSpec(e.to_string()))?;
    let kind = model.unwrap_or(ModelKind::Mosmodel);
    // Check model availability before the cache: a request for a model
    // the pair cannot serve must error whether or not the key is cached.
    entry
        .model(kind)
        .ok_or_else(|| ServiceError::ModelUnavailable(kind.name().to_string()))?;

    // The key uses the *canonical* layout (parsed + aligned), so spec
    // spellings naming the same windows share one cache entry.
    let lookup_start = tracer.now_us();
    let key = prediction_key(workload, platform.name, &layout, kind);
    let cached = registry.prediction_cache().get(&key);
    tracer.record("cache_lookup", lookup_start);
    if let Some(cached) = cached {
        return Ok(cached);
    }

    let sim_start = tracer.now_us();
    let prediction = simulate_prediction(&entry, platform, &layout, kind, Some(&mut tracer.sim))?;
    tracer.record("simulate", sim_start);
    registry.prediction_cache().insert(key, prediction.clone());
    Ok(prediction)
}

/// Runs the partial simulation for one layout and applies the fitted
/// model of `kind`. Shared by the `predict` path and the `recommend`
/// scorer, so both produce bit-identical [`Prediction`]s for the same
/// layout.
fn simulate_prediction(
    entry: &RegistryEntry,
    platform: &'static Platform,
    layout: &MemoryLayout,
    kind: ModelKind,
    sim: Option<&mut SpanRecorder>,
) -> Result<Prediction, ServiceError> {
    let persisted = entry
        .model(kind)
        .ok_or_else(|| ServiceError::ModelUnavailable(kind.name().to_string()))?;
    let record = measure_layout_traced(&entry.ctx, &MachineVariant::real(platform), layout, sim);
    let predicted = persisted.model.predict(&record.sample());
    Ok(Prediction {
        runtime_cycles: record.counters.runtime_cycles,
        stlb_hits: record.counters.stlb_hits,
        stlb_misses: record.counters.stlb_misses,
        walk_cycles: record.counters.walk_cycles,
        model: kind,
        predicted,
        max_err: persisted.max_err,
        geo_mean_err: persisted.geo_mean_err,
    })
}

/// Scores candidate layouts for `recommend` with the pair's fitted
/// models. The `predicted` component comes from the default model
/// through the same cached simulation path the `predict` verb uses, so
/// a recommendation's prediction is bit-comparable with a later
/// `predict` for the recommended layout (and candidate scoring warms
/// the prediction cache). The `disagreement` component is the relative
/// spread of *every* fitted model's prediction on the candidate's
/// measured sample — query-by-committee: the candidate the committee
/// disagrees about most is the most informative one to measure next.
struct RegistryScorer<'a> {
    registry: &'a ModelRegistry,
    workload: &'a str,
    platform: &'static Platform,
    entry: &'a RegistryEntry,
}

impl Scorer for RegistryScorer<'_> {
    fn score(&self, layout: &MemoryLayout) -> Option<Score> {
        let kind = ModelKind::Mosmodel;
        let key = prediction_key(self.workload, self.platform.name, layout, kind);
        let prediction = match self.registry.prediction_cache().get(&key) {
            Some(hit) => hit,
            None => {
                // Candidate simulations run untraced: their spans must
                // not pollute the recommend request's trace or the sim
                // stage sums (which meter the predict path).
                let p = simulate_prediction(self.entry, self.platform, layout, kind, None).ok()?;
                self.registry.prediction_cache().insert(key, p.clone());
                p
            }
        };
        // Rebuild the measured sample from the prediction's counters
        // (models only read H/M/C/R; the layout kind matters to fitting
        // alone) and poll the committee.
        let sample = Sample {
            r: prediction.runtime_cycles as f64,
            h: prediction.stlb_hits as f64,
            m: prediction.stlb_misses as f64,
            c: prediction.walk_cycles as f64,
            kind: LayoutKind::Mixed,
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for model in &self.entry.bundle.models {
            let p = model.model.predict(&sample);
            if p.is_finite() {
                min = min.min(p);
                max = max.max(p);
            }
        }
        let disagreement = if max >= min && prediction.predicted != 0.0 {
            (max - min) / prediction.predicted.abs()
        } else {
            0.0
        };
        Some(Score {
            predicted: prediction.predicted,
            disagreement,
        })
    }
}

/// The in-process recommendation path: parse and canonicalize the
/// budget, enumerate the deterministic candidate set, score each
/// candidate with the pair's fitted models, and decide between the
/// confident answer (lowest predicted runtime) and the active-learning
/// fallback (most informative layout to measure). Public so the
/// integration tests can compare the server's answers against a direct
/// call.
pub fn recommend(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    budget: &str,
    threshold: Option<f64>,
) -> Result<RecommendReply, ServiceError> {
    recommend_traced(
        registry,
        workload,
        platform,
        budget,
        threshold,
        &mut RequestTrace::disabled(),
    )
}

/// [`recommend`] with stage tracing: `fit` for the registry entry,
/// `cache_lookup` for the recommendation cache, `explore` for candidate
/// enumeration, `score` for the per-candidate predictions + decision.
pub(crate) fn recommend_traced(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    budget_text: &str,
    threshold: Option<f64>,
    tracer: &mut RequestTrace,
) -> Result<RecommendReply, ServiceError> {
    let platform = Platform::by_name(platform)
        .ok_or_else(|| ServiceError::UnknownPlatform(platform.to_string()))?;
    let threshold = threshold.unwrap_or(DEFAULT_CV_THRESHOLD);
    let fit_start = tracer.now_us();
    let entry = registry.entry(workload, platform)?;
    tracer.record("fit", fit_start);
    let pool = entry.ctx.pool();
    let budget =
        parse_budget(pool, budget_text).map_err(|e| ServiceError::BadBudget(e.to_string()))?;

    // The cache key carries the *canonical* budget, so spellings naming
    // the same inventory (`8x2m+8x2m`, `16x2m`) share one entry; the
    // threshold enters as raw bits to keep the key exact.
    let lookup_start = tracer.now_us();
    let key: RecommendKey = (
        workload.to_string(),
        platform.name.to_string(),
        render_budget(&budget),
        threshold.to_bits(),
    );
    let cached = registry.recommend_cache().get(&key);
    tracer.record("cache_lookup", lookup_start);
    if let Some(cached) = cached {
        return Ok(cached);
    }

    let explore_start = tracer.now_us();
    let candidates = enumerate_candidates(pool, &budget, DEFAULT_EXPLORE_STEPS);
    tracer.record("explore", explore_start);

    let score_start = tracer.now_us();
    let cv_err = registry.cv_error(workload, platform);
    let scorer = RegistryScorer {
        registry,
        workload,
        platform,
        entry: &entry,
    };
    let decision = recommend_over(&candidates, &scorer, cv_err, threshold)
        // Candidates exist for every budget (all-4KB at minimum), so an
        // empty scored set means the default model is unavailable.
        .map_err(|_| ServiceError::ModelUnavailable(ModelKind::Mosmodel.name().to_string()));
    tracer.record("score", score_start);

    let reply = match decision? {
        Recommendation::Layout { layout, predicted } => RecommendReply {
            action: RecommendAction::Layout,
            spec: render_layout_spec(&layout),
            value: predicted,
            cv_err,
            threshold,
        },
        Recommendation::Measure { layout, gain } => RecommendReply {
            action: RecommendAction::Measure,
            spec: render_layout_spec(&layout),
            value: gain,
            cv_err,
            threshold,
        },
    };
    registry.recommend_cache().insert(key, reply.clone());
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_error_backoff_honors_shutdown_first() {
        assert_eq!(on_accept_error(true, 0), AcceptErrorAction::Shutdown);
        assert_eq!(on_accept_error(true, 99), AcceptErrorAction::Shutdown);
    }

    #[test]
    fn accept_error_backoff_grows_and_caps() {
        let pause = |n| match on_accept_error(false, n) {
            AcceptErrorAction::Backoff(d) => d,
            AcceptErrorAction::Shutdown => panic!("no shutdown requested"),
        };
        // Starts small: one transient error must not stall accepts.
        assert_eq!(pause(0), Duration::from_millis(1));
        // Monotonically non-decreasing under consecutive errors...
        let mut last = Duration::ZERO;
        for n in 0..40 {
            let p = pause(n);
            assert!(p >= last, "backoff shrank at error {n}");
            assert!(p >= Duration::from_millis(1), "never a zero (hot) spin");
            last = p;
        }
        // ...and capped so recovery after EMFILE clears is prompt.
        assert_eq!(pause(12), Duration::from_millis(100));
        assert_eq!(pause(u32::MAX), Duration::from_millis(100));
    }
}
