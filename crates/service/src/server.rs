//! The mosaicd TCP server: acceptor plus an event-driven, sharded
//! serving plane.
//!
//! One acceptor thread owns the listener and decides admission: when
//! the plane is at capacity the connection is answered `busy` and
//! closed immediately — explicit backpressure instead of unbounded
//! buffering or silent drops. Admitted connections are switched to
//! nonblocking mode and handed round-robin to a fixed pool of worker
//! shards. Each worker multiplexes *all* of its connections through one
//! `poll(2)` readiness loop: a connection consumes the worker only
//! while a complete request line is being handled, so idle persistent
//! connections are free and can no longer starve the pool (the
//! thread-per-connection plane parked a whole worker on every idle
//! client). A per-shard self-pipe doorbell sits in every poll set, so
//! the acceptor's deal interrupts a sleeping shard immediately — even
//! one whose poll set already holds idle connections.
//!
//! Replies are buffered per connection and flushed as the socket
//! accepts them; while a reply is in flight the connection is polled
//! for writability only, so a slow reader throttles itself instead of
//! the plane.
//!
//! Shutdown is graceful: the flag flips, the acceptor stops admitting,
//! and each worker makes a final drain pass — reading whatever its
//! connections already pipelined, answering the complete requests, and
//! flushing the replies — before exiting. Shutdown rings every
//! doorbell, so workers observe the flag immediately and an idle
//! persistent connection cannot hold shutdown hostage.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use libc::{poll_fds, pollfd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

use harness::{measure_layout_traced, MachineVariant, SIM_STAGES};
use layouts::parse_spec;
use machine::Platform;
use mosmodel::dataset::{LayoutKind, Sample};
use mosmodel::{ModelKind, RuntimeModel};
use obs::{render_trace, ClockDomain, SpanRecorder, StageSums, TraceRing};
use recommend::{
    enumerate_candidates, parse_budget, recommend_over, render_budget, render_layout_spec,
    Recommendation, Score, Scorer, DEFAULT_CV_THRESHOLD, DEFAULT_EXPLORE_STEPS,
};
use vmcore::MemoryLayout;

use crate::cache::prediction_key;
use crate::metrics::{Metrics, StatsSnapshot};
use crate::prom::{render_metrics, MetricsReport, StageEntry};
use crate::protocol::{
    parse_request, render_batch_header, render_pair, render_pairs_header, render_prediction,
    render_recommend, render_trace_header, render_warm, Prediction, RecommendAction,
    RecommendReply, Request,
};
use crate::registry::{ModelRegistry, RecommendKey, RegistryEntry};
use crate::trace::RequestTrace;
use crate::ServiceError;

/// Longest request line the server accepts, in bytes. A client
/// streaming bytes with no newline is answered `err request too long`
/// once and ignored until its next newline, instead of growing the
/// line buffer without bound.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Spans one request may record per clock domain before the recorder
/// starts counting drops. Sized for the deepest path (a cold predict:
/// read, parse, fit, cache lookup, simulation, render, plus three sim
/// spans per repetition) with headroom.
pub const TRACE_SPAN_CAPACITY: usize = 16;

/// Wall-domain stage names the request path records, in pipeline order.
/// `explore` (candidate enumeration) and `score` (per-candidate
/// prediction + decision) are recorded only by the `recommend` verb.
pub const WALL_STAGES: [&str; 8] = [
    "read",
    "parse",
    "fit",
    "cache_lookup",
    "explore",
    "score",
    "simulate",
    "render",
];

/// The readiness-loop timeout: the longest a worker sleeps in
/// `poll(2)` before re-checking the shutdown flag and its inbox, so
/// both are observed promptly even on a fully idle plane.
const POLL_WINDOW_MS: i32 = 100;

/// Most bytes the acceptor drains from a rejected (`busy`) connection
/// before closing it — enough pipelined requests for a clean FIN,
/// bounded so a hostile firehose cannot pin the acceptor.
const BUSY_DRAIN_CAP: usize = 4096;

/// How a [`Server`] listens and schedules work.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Backlog bound: connections past `workers` count toward the
    /// backlog gauge, and once it reaches this bound new connections
    /// are answered `busy`.
    pub queue_bound: usize,
    /// How many finished request traces the server retains for the
    /// `trace` verb; older traces are evicted (and counted as dropped)
    /// rather than growing memory.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_bound: 64,
            trace_capacity: 256,
        }
    }
}

/// One worker shard's handoff slot: the acceptor pushes freshly
/// admitted (already nonblocking) streams and rings the shard's
/// doorbell — a self-pipe whose read end sits in the worker's poll set,
/// so a deal interrupts the poll immediately instead of waiting out the
/// poll window. (An earlier design rang a condvar instead, but a shard
/// holding even one idle connection sleeps in `poll(2)`, not on the
/// condvar, so fresh connections stalled up to [`POLL_WINDOW_MS`]
/// before their first byte was seen.)
struct Inbox {
    fresh: Mutex<Vec<TcpStream>>,
    /// Read end of the doorbell pipe; polled by the worker.
    doorbell_rx: libc::c_int,
    /// Write end of the doorbell pipe; written by the acceptor on every
    /// deal and by shutdown.
    doorbell_tx: libc::c_int,
}

impl Drop for Inbox {
    fn drop(&mut self) {
        libc::close_fd(self.doorbell_rx);
        libc::close_fd(self.doorbell_tx);
    }
}

/// State shared between the acceptor, the workers, and the handle.
struct Shared {
    registry: ModelRegistry,
    metrics: Metrics,
    /// One inbox per worker shard; the acceptor deals round-robin.
    inboxes: Vec<Inbox>,
    shutdown: AtomicBool,
    queue_bound: usize,
    /// Worker-shard count, for the backlog gauge (`open - workers`).
    workers: usize,
    /// Currently admitted (open) connections across all shards.
    open_connections: AtomicU64,
    /// Wall-domain per-stage tick totals (µs), exposed by `metrics`.
    wall_stages: StageSums,
    /// Sim-domain per-stage tick totals (simulated cycles).
    sim_stages: StageSums,
    /// Ring of the most recent finished traces, served by `trace`.
    traces: TraceRing,
}

/// A running mosaicd instance. Dropping the handle without calling
/// [`Server::shutdown`] detaches the threads (the process exit reaps
/// them); call `shutdown` for a graceful drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns the
    /// running server.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (address in use, permission, ...) and
    /// doorbell-pipe creation failure (fd exhaustion).
    pub fn start(config: ServerConfig, registry: ModelRegistry) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let worker_shards = config.workers.max(1);
        let inboxes = (0..worker_shards)
            .map(|_| {
                let (doorbell_rx, doorbell_tx) =
                    libc::doorbell_pair().map_err(io::Error::from_raw_os_error)?;
                Ok(Inbox {
                    fresh: Mutex::new(Vec::new()),
                    doorbell_rx,
                    doorbell_tx,
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        let shared = Arc::new(Shared {
            registry,
            metrics: Metrics::new(),
            inboxes,
            shutdown: AtomicBool::new(false),
            queue_bound: config.queue_bound.max(1),
            workers: worker_shards,
            open_connections: AtomicU64::new(0),
            wall_stages: StageSums::new(&WALL_STAGES),
            sim_stages: StageSums::new(&SIM_STAGES),
            traces: TraceRing::new(config.trace_capacity),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mosaicd-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let workers = (0..worker_shards)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mosaicd-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot (same data as the `stats`
    /// command).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot_stats(&self.shared)
    }

    /// The registry backing the server.
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// The full observability report (same data as the `metrics` verb).
    pub fn metrics_report(&self) -> MetricsReport {
        metrics_report(&self.shared)
    }

    /// Gracefully shuts down: stop admitting, let every worker make its
    /// drain pass (pipelined requests already readable are answered and
    /// flushed), join all threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for inbox in &self.shared.inboxes {
            libc::doorbell_ring(inbox.doorbell_tx);
        }
        // accept() has no timeout; a loopback connection unblocks it so
        // the acceptor can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Locks a worker inbox, recovering from poisoning. The inbox holds
/// plain `TcpStream`s with no invariants a half-completed operation
/// could break, so a panic elsewhere must not take the shard down with
/// `PoisonError` panics.
fn lock_inbox(inbox: &Inbox) -> MutexGuard<'_, Vec<TcpStream>> {
    inbox.fresh.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the acceptor should do after `accept()` returns an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AcceptErrorAction {
    /// Shutdown was requested; stop accepting.
    Shutdown,
    /// Transient failure (e.g. EMFILE while connections drain): pause
    /// before retrying instead of hot-spinning on the error.
    Backoff(Duration),
}

/// Backoff policy for `accept()` errors. A persistent error like EMFILE
/// used to make the acceptor spin `Err => continue` at 100% CPU with no
/// shutdown check; instead, back off exponentially (1ms doubling to a
/// 100ms ceiling) and honor the shutdown flag first.
fn on_accept_error(shutdown_requested: bool, consecutive_errors: u32) -> AcceptErrorAction {
    if shutdown_requested {
        return AcceptErrorAction::Shutdown;
    }
    let millis = 1u64
        .checked_shl(consecutive_errors)
        .unwrap_or(u64::MAX)
        .min(100);
    AcceptErrorAction::Backoff(Duration::from_millis(millis))
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut consecutive_errors: u32 = 0;
    let mut next_shard: usize = 0;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => {
                consecutive_errors = 0;
                conn
            }
            Err(_) => {
                match on_accept_error(shared.shutdown.load(Ordering::SeqCst), consecutive_errors) {
                    AcceptErrorAction::Shutdown => return,
                    AcceptErrorAction::Backoff(pause) => {
                        consecutive_errors = consecutive_errors.saturating_add(1);
                        std::thread::sleep(pause);
                        continue;
                    }
                }
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Admission: `workers` connections ride free; everything past
        // them counts toward the backlog, and at the bound the plane
        // answers `busy` instead of admitting without limit.
        let open = shared.open_connections.load(Ordering::SeqCst);
        if open.saturating_sub(shared.workers as u64) >= shared.queue_bound as u64 {
            reject_busy(stream, shared);
            continue;
        }
        // The readiness loop owns this socket from here on, so it must
        // never block the shard; a stream that cannot go nonblocking is
        // dropped (the client sees a clean close and retries). Nagle is
        // disabled because pipelined clients (the `batch` verb, load
        // generators) make the plane emit several sub-MSS reply writes
        // back to back — with Nagle on, every write after the first
        // stalls behind the peer's delayed ACK (~40ms), collapsing
        // pipelined throughput by an order of magnitude.
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let slot = next_shard.checked_rem(shared.inboxes.len()).unwrap_or(0);
        next_shard = next_shard.wrapping_add(1);
        if let Some(inbox) = shared.inboxes.get(slot) {
            let open = shared
                .open_connections
                .fetch_add(1, Ordering::SeqCst)
                .saturating_add(1);
            publish_connection_gauges(shared, open);
            lock_inbox(inbox).push(stream);
            libc::doorbell_ring(inbox.doorbell_tx);
        }
    }
}

/// Answers `busy` and closes. The bounded drain loop eats whatever the
/// client already pipelined so the close is a clean FIN; closing with
/// unread data can turn into an RST that discards the busy reply on
/// the way out. (The old plane read a single 256-byte window, which a
/// client pipelining more than that could still trip into an RST.)
fn reject_busy(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.record_busy();
    let _ = stream.write_all(b"busy\n");
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let mut scratch = [0u8; 256];
    let mut drained: usize = 0;
    while drained < BUSY_DRAIN_CAP {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained = drained.saturating_add(n),
        }
    }
}

/// Publishes both connection gauges from one open-connection count:
/// the raw count, and the backlog beyond the worker-shard budget
/// (which is what the `busy` admission decision keys on).
fn publish_connection_gauges(shared: &Shared, open: u64) {
    shared.metrics.set_connections(open);
    shared
        .metrics
        .set_queue_depth(open.saturating_sub(shared.workers as u64));
}

/// Drops `closed` connections out of the gauges after a shard reaps
/// them from its poll set.
fn forget_connections(shared: &Shared, closed: u64) {
    if closed == 0 {
        return;
    }
    let open = shared
        .open_connections
        .fetch_sub(closed, Ordering::SeqCst)
        .saturating_sub(closed);
    publish_connection_gauges(shared, open);
}

/// One multiplexed connection's state between readiness events.
struct Conn {
    stream: TcpStream,
    /// The partial request line accumulated so far (bounded by
    /// [`MAX_REQUEST_BYTES`] plus one read chunk).
    line: Vec<u8>,
    /// True while skipping the remainder of an over-long request; the
    /// connection resyncs at the next newline.
    discarding: bool,
    /// When the current request's first bytes arrived — the wall epoch
    /// of its trace, so the `read` span covers line accumulation.
    request_started: Option<Instant>,
    /// Reply bytes accepted by the handler but not yet by the socket.
    /// While non-empty the connection is polled for writability only,
    /// so a slow reader backpressures itself instead of the shard.
    pending: Vec<u8>,
    /// Set on EOF or a fatal I/O error; the shard reaps it after the
    /// service pass.
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            line: Vec::new(),
            discarding: false,
            request_started: None,
            pending: Vec::new(),
            closed: false,
        }
    }
}

/// One worker shard: a `poll(2)` readiness loop over every connection
/// the acceptor has dealt to it, plus the shard's doorbell as entry
/// zero. The doorbell makes every external event — a freshly dealt
/// connection, shutdown — interrupt the poll immediately; the
/// [`POLL_WINDOW_MS`] timeout remains only as a belt-and-braces
/// re-check of the shutdown flag.
fn worker_loop(shared: &Shared, shard: usize) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<pollfd> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            drain_on_shutdown(&mut conns, shared);
            return;
        }
        // poll(2) ignores negative fds, so the sentinel is safe in the
        // (unreachable) case the shard index misses the inbox table.
        let mut doorbell: libc::c_int = -1;
        if let Some(inbox) = shared.inboxes.get(shard) {
            doorbell = inbox.doorbell_rx;
            conns.extend(lock_inbox(inbox).drain(..).map(Conn::new));
        }
        fds.clear();
        fds.push(pollfd {
            fd: doorbell,
            events: POLLIN,
            revents: 0,
        });
        for conn in &conns {
            // Flow control: while a reply is queued, only writability
            // matters; the socket's receive buffer holds any pipelined
            // requests until the client drains its side.
            let events = if conn.pending.is_empty() {
                POLLIN
            } else {
                POLLOUT
            };
            fds.push(pollfd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        match poll_fds(&mut fds, POLL_WINDOW_MS) {
            Ok(0) | Err(_) => continue, // timeout or EINTR: re-check flags
            Ok(_) => {}
        }
        if fds.first().is_some_and(|bell| bell.revents & POLLIN != 0) {
            // Drain so the level-triggered doorbell goes quiet; the
            // loop top collects whatever the ring announced.
            libc::doorbell_drain(doorbell);
        }
        for (conn, pfd) in conns.iter_mut().zip(fds.iter().skip(1)) {
            let revents = pfd.revents;
            if revents == 0 {
                continue;
            }
            if revents & (POLLERR | POLLNVAL) != 0 {
                conn.closed = true;
                continue;
            }
            if revents & POLLOUT != 0 {
                flush_pending(conn);
            }
            // POLLHUP still allows reading buffered bytes; EOF (read 0)
            // is what actually closes the connection.
            if !conn.closed && conn.pending.is_empty() && revents & (POLLIN | POLLHUP) != 0 {
                service_readable(conn, shared);
            }
        }
        reap_closed(&mut conns, shared);
    }
}

/// Removes reaped connections from the shard and the gauges.
fn reap_closed(conns: &mut Vec<Conn>, shared: &Shared) {
    let before = conns.len();
    conns.retain(|c| !c.closed);
    forget_connections(shared, before.saturating_sub(conns.len()) as u64);
}

/// Writes as much queued reply as the socket accepts right now.
fn flush_pending(conn: &mut Conn) {
    while !conn.pending.is_empty() {
        match conn.stream.write(&conn.pending) {
            Ok(0) => {
                conn.closed = true;
                return;
            }
            Ok(n) => {
                conn.pending.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closed = true;
                return;
            }
        }
    }
}

/// Reads everything currently available on a readable connection,
/// dispatching each complete request line as it forms. Stops early when
/// a reply backs up (flow control) so one connection cannot pin the
/// shard with an endless pipelined stream.
fn service_readable(conn: &mut Conn, shared: &Shared) {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.closed = true;
                return;
            }
            Ok(n) => {
                ingest_bytes(conn, chunk.get(..n).unwrap_or_default(), shared);
                if conn.closed {
                    return;
                }
                flush_pending(conn);
                if !conn.pending.is_empty() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closed = true;
                return;
            }
        }
    }
}

/// Folds one read chunk into the connection's line state: accumulate
/// partial lines, enforce the [`MAX_REQUEST_BYTES`] bound (answer
/// `err request too long` once, then discard to the next newline), and
/// dispatch every complete request in the chunk.
fn ingest_bytes(conn: &mut Conn, mut bytes: &[u8], shared: &Shared) {
    while !bytes.is_empty() {
        if conn.request_started.is_none() && !conn.discarding {
            conn.request_started = Some(Instant::now());
        }
        match bytes.iter().position(|&b| b == b'\n') {
            None => {
                if !conn.discarding {
                    conn.line.extend_from_slice(bytes);
                    if conn.line.len() > MAX_REQUEST_BYTES {
                        reject_overlong(conn, shared);
                        conn.discarding = true;
                    }
                }
                return;
            }
            Some(nl) => {
                let (head, tail) = bytes.split_at(nl);
                bytes = tail.get(1..).unwrap_or_default();
                if conn.discarding {
                    // Newline reached: the over-long request's tail is
                    // gone and the connection is back at a boundary.
                    conn.discarding = false;
                    continue;
                }
                conn.line.extend_from_slice(head);
                if conn.line.len() > MAX_REQUEST_BYTES {
                    reject_overlong(conn, shared);
                } else {
                    dispatch_line(conn, shared);
                }
                conn.line.clear();
                conn.request_started = None;
            }
        }
    }
}

/// Answers an over-long request. These are counted in the dedicated
/// `too_long` counter (and as errors), *not* in the latency histogram:
/// the old plane recorded them as 0µs requests, which dragged p50/p99
/// toward zero under a flood of garbage.
fn reject_overlong(conn: &mut Conn, shared: &Shared) {
    shared.metrics.record_too_long();
    conn.line.clear();
    conn.request_started = None;
    conn.pending
        .extend_from_slice(b"err request too long (max 65536 bytes)\n");
}

/// Dispatches one complete request line: trace, handle, record, queue
/// the reply.
fn dispatch_line(conn: &mut Conn, shared: &Shared) {
    let started = Instant::now();
    let epoch = conn.request_started.take().unwrap_or(started);
    let mut tracer = RequestTrace::new(TRACE_SPAN_CAPACITY, epoch);
    // The read span: from the request's first byte to the complete
    // line (handling latency, recorded below, starts here).
    let read_end = tracer.now_us();
    tracer.wall.record("read", 0, read_end);
    let (response, verb, was_predict, was_error) = match std::str::from_utf8(&conn.line) {
        Ok(text) => handle_line_shielded(text, shared, &mut tracer),
        // A raw non-UTF-8 byte used to close the whole persistent
        // connection; the newline boundary already resyncs the stream,
        // so answer like any other malformed request instead.
        Err(_) => ("err invalid utf-8".to_string(), "error", false, true),
    };
    let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared
        .metrics
        .record_request(latency_us, was_predict, was_error);
    finish_trace(shared, verb, tracer);
    conn.pending.extend_from_slice(response.as_bytes());
    conn.pending.push(b'\n');
}

/// The shutdown drain pass: answer whatever each connection already
/// pipelined, then flush its replies with a bounded blocking window so
/// in-flight work is delivered, not dropped.
fn drain_on_shutdown(conns: &mut Vec<Conn>, shared: &Shared) {
    let mut chunk = [0u8; 4096];
    for conn in conns.iter_mut() {
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => ingest_bytes(conn, chunk.get(..n).unwrap_or_default(), shared),
            }
        }
        if !conn.pending.is_empty() {
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn
                .stream
                .set_write_timeout(Some(Duration::from_millis(500)));
            let _ = conn.stream.write_all(&conn.pending);
        }
    }
    forget_connections(shared, conns.len() as u64);
    conns.clear();
}

/// Folds a finished request's spans into the stage sums and pushes its
/// trace(s) into the ring: always a wall-domain trace, plus a sim-domain
/// trace when the partial simulation ran.
fn finish_trace(shared: &Shared, verb: &'static str, tracer: RequestTrace) {
    let ((wall_spans, wall_dropped), (sim_spans, sim_dropped)) = tracer.into_parts();
    shared.wall_stages.add_spans(&wall_spans);
    shared
        .traces
        .push(verb, ClockDomain::Wall, wall_spans, wall_dropped);
    if !sim_spans.is_empty() || sim_dropped > 0 {
        shared.sim_stages.add_spans(&sim_spans);
        shared
            .traces
            .push(verb, ClockDomain::Sim, sim_spans, sim_dropped);
    }
}

/// Takes the stats snapshot all three exposure paths (`stats`,
/// `metrics`, [`Server::stats`]) share.
fn snapshot_stats(shared: &Shared) -> StatsSnapshot {
    shared.metrics.snapshot(
        shared.registry.counters(),
        shared.registry.prediction_cache().counters(),
        shared.registry.recommend_cache().counters(),
        shared.registry.prediction_cache().len() as u64,
    )
}

/// Assembles the `metrics` report from the live server state.
fn metrics_report(shared: &Shared) -> MetricsReport {
    let stats = snapshot_stats(shared);
    let entries = |sums: &StageSums| -> Vec<StageEntry> {
        sums.snapshot()
            .into_iter()
            .map(|s| StageEntry {
                stage: s.stage.to_string(),
                total_ticks: s.total_ticks,
                spans: s.spans,
            })
            .collect()
    };
    MetricsReport {
        stats,
        pred_cache_shard_lens: shared
            .registry
            .prediction_cache()
            .shard_lens()
            .into_iter()
            .map(|len| len as u64)
            .collect(),
        wall_stages: entries(&shared.wall_stages),
        sim_stages: entries(&shared.sim_stages),
        traces_buffered: shared.traces.len() as u64,
        trace_capacity: shared.traces.capacity() as u64,
        traces_dropped: shared.traces.dropped(),
    }
}

/// Runs [`handle_line`] under a panic shield. The worker pool is a
/// fixed resource: a panic that escapes request handling permanently
/// removes a worker, and enough hostile requests would empty the pool
/// while the acceptor keeps admitting connections. Any panic becomes a
/// protocol-level `err internal ...` response and the worker lives on
/// (the shared queue tolerates this — see [`lock_queue`]).
fn handle_line_shielded(
    line: &str,
    shared: &Shared,
    tracer: &mut RequestTrace,
) -> (String, &'static str, bool, bool) {
    catch_unwind(AssertUnwindSafe(|| {
        handle_line(line.trim_end(), shared, tracer)
    }))
    .unwrap_or_else(|_| {
        (
            "err internal: request handler panicked; request rejected".to_string(),
            "panic",
            false,
            true,
        )
    })
}

/// Handles one request line; returns `(response, verb, was_predict,
/// was_error)`. The verb labels the request's trace in the ring.
fn handle_line(
    line: &str,
    shared: &Shared,
    tracer: &mut RequestTrace,
) -> (String, &'static str, bool, bool) {
    // Fault-injection hook for the shield regression test: the only way
    // to prove a worker survives a handler panic is to panic in a
    // handler. Debug builds only; release servers treat the verb as an
    // unknown command.
    #[cfg(debug_assertions)]
    if line == "inject-panic" {
        // audit:allow(panic-surface) deliberate fault injection, compiled out of release; the shield test depends on it
        panic!("injected worker panic (requested by the shield regression test)");
    }
    let parse_start = tracer.now_us();
    let parsed = parse_request(line);
    tracer.record("parse", parse_start);
    match parsed {
        Ok(request) => handle_request(request, shared, tracer),
        Err(reason) => (format!("err {reason}"), "error", false, true),
    }
}

/// Handles one parsed request; returns `(response, verb, was_predict,
/// was_error)`. Factored out of [`handle_line`] so the `batch` verb can
/// run its sub-requests through the identical dispatch (nested batches
/// are rejected at parse time, so the recursion is one level deep).
fn handle_request(
    request: Request,
    shared: &Shared,
    tracer: &mut RequestTrace,
) -> (String, &'static str, bool, bool) {
    match request {
        Request::Stats => {
            let snap = snapshot_stats(shared);
            let render_start = tracer.now_us();
            let text = snap.render();
            tracer.record("render", render_start);
            (text, "stats", false, false)
        }
        Request::Predict {
            workload,
            platform,
            spec,
            model,
        } => match predict_traced(&shared.registry, &workload, &platform, &spec, model, tracer) {
            Ok(prediction) => {
                let render_start = tracer.now_us();
                let text = render_prediction(&prediction);
                tracer.record("render", render_start);
                (text, "predict", true, false)
            }
            Err(e) => (format!("err {e}"), "predict", true, true),
        },
        Request::Warm { workload, platform } => {
            match warm(&shared.registry, &workload, &platform) {
                Ok(models) => (
                    render_warm(&workload, &platform, models),
                    "warm",
                    false,
                    false,
                ),
                Err(e) => (format!("err {e}"), "warm", false, true),
            }
        }
        Request::Metrics => {
            let report = metrics_report(shared);
            let render_start = tracer.now_us();
            let text = render_metrics(&report);
            tracer.record("render", render_start);
            // render_metrics ends with "# EOF\n"; the connection loop
            // appends the final newline, so trim the trailing one here.
            (
                text.trim_end_matches('\n').to_string(),
                "metrics",
                false,
                false,
            )
        }
        Request::Trace { n } => {
            let traces = shared.traces.last(n);
            let render_start = tracer.now_us();
            let mut text = render_trace_header(traces.len(), shared.traces.dropped());
            for trace in &traces {
                text.push('\n');
                text.push_str(&render_trace(trace));
            }
            tracer.record("render", render_start);
            (text, "trace", false, false)
        }
        Request::Recommend {
            workload,
            platform,
            budget,
            threshold,
        } => {
            shared.metrics.record_recommend();
            match recommend_traced(
                &shared.registry,
                &workload,
                &platform,
                &budget,
                threshold,
                tracer,
            ) {
                Ok(reply) => {
                    let render_start = tracer.now_us();
                    let text = render_recommend(&reply);
                    tracer.record("render", render_start);
                    (text, "recommend", false, false)
                }
                Err(e) => (format!("err {e}"), "recommend", false, true),
            }
        }
        Request::Pairs => {
            let pairs = shared.registry.pairs();
            let render_start = tracer.now_us();
            let mut text = render_pairs_header(pairs.len());
            for info in &pairs {
                text.push('\n');
                text.push_str(&render_pair(info));
            }
            tracer.record("render", render_start);
            (text, "pairs", false, false)
        }
        Request::Batch(subs) => {
            // One framed reply: a `batch count=N` header, then exactly
            // one line per sub-request, each produced by the same
            // dispatch a standalone request would take (so a batch of
            // predicts is byte-identical to N sequential predicts).
            let mut text = render_batch_header(subs.len());
            let mut any_predict = false;
            let mut any_error = false;
            for sub in subs {
                let (reply, _verb, was_predict, was_error) = handle_request(sub, shared, tracer);
                any_predict |= was_predict;
                any_error |= was_error;
                text.push('\n');
                text.push_str(&reply);
            }
            (text, "batch", any_predict, any_error)
        }
    }
}

/// Pre-fits (or revives) a pair's models without running a prediction;
/// returns how many models the bundle holds. Shares the registry's
/// singleflight path, so concurrent warms and predicts for the same
/// pair coalesce onto one fit.
///
/// # Errors
///
/// Same failure modes as [`ModelRegistry::entry`].
pub fn warm(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
) -> Result<usize, ServiceError> {
    let platform = Platform::by_name(platform)
        .ok_or_else(|| ServiceError::UnknownPlatform(platform.to_string()))?;
    let entry = registry.entry(workload, platform)?;
    Ok(entry.bundle.models.len())
}

/// The in-process prediction path: measure the layout with the grid's
/// methodology, then apply the fitted model. Public so the integration
/// tests can compare the server's answers bit-for-bit against a direct
/// call.
///
/// `predict` is a pure function of `(workload, platform, layout,
/// model)`, so results are memoized in the registry's bounded
/// [`PredictionCache`](crate::cache::PredictionCache): a hit skips the
/// partial simulation entirely and returns a `Prediction` that is
/// bit-identical to the uncached answer.
pub fn predict(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    spec: &str,
    model: Option<ModelKind>,
) -> Result<Prediction, ServiceError> {
    // The disabled tracer records nothing, so the traced and untraced
    // paths execute identical prediction logic (bit-identical results).
    predict_traced(
        registry,
        workload,
        platform,
        spec,
        model,
        &mut RequestTrace::disabled(),
    )
}

/// [`predict`] with stage tracing: wall-domain spans for the registry
/// fit, the cache lookup, and the partial simulation land in
/// `tracer.wall`; the simulation itself records sim-domain spans
/// (simulated cycles) into `tracer.sim` via `measure_layout_traced`.
pub(crate) fn predict_traced(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    spec: &str,
    model: Option<ModelKind>,
    tracer: &mut RequestTrace,
) -> Result<Prediction, ServiceError> {
    let platform = Platform::by_name(platform)
        .ok_or_else(|| ServiceError::UnknownPlatform(platform.to_string()))?;
    let fit_start = tracer.now_us();
    let entry = registry.entry(workload, platform)?;
    tracer.record("fit", fit_start);
    let layout =
        parse_spec(entry.ctx.pool(), spec).map_err(|e| ServiceError::BadSpec(e.to_string()))?;
    let kind = model.unwrap_or(ModelKind::Mosmodel);
    // Check model availability before the cache: a request for a model
    // the pair cannot serve must error whether or not the key is cached.
    entry
        .model(kind)
        .ok_or_else(|| ServiceError::ModelUnavailable(kind.name().to_string()))?;

    // The key uses the *canonical* layout (parsed + aligned), so spec
    // spellings naming the same windows share one cache entry.
    let lookup_start = tracer.now_us();
    let key = prediction_key(workload, platform.name, &layout, kind);
    let cached = registry.prediction_cache().get(&key);
    tracer.record("cache_lookup", lookup_start);
    if let Some(cached) = cached {
        return Ok(cached);
    }

    let sim_start = tracer.now_us();
    let prediction = simulate_prediction(&entry, platform, &layout, kind, Some(&mut tracer.sim))?;
    tracer.record("simulate", sim_start);
    registry.prediction_cache().insert(key, prediction.clone());
    Ok(prediction)
}

/// Runs the partial simulation for one layout and applies the fitted
/// model of `kind`. Shared by the `predict` path and the `recommend`
/// scorer, so both produce bit-identical [`Prediction`]s for the same
/// layout.
fn simulate_prediction(
    entry: &RegistryEntry,
    platform: &'static Platform,
    layout: &MemoryLayout,
    kind: ModelKind,
    sim: Option<&mut SpanRecorder>,
) -> Result<Prediction, ServiceError> {
    let persisted = entry
        .model(kind)
        .ok_or_else(|| ServiceError::ModelUnavailable(kind.name().to_string()))?;
    let record = measure_layout_traced(&entry.ctx, &MachineVariant::real(platform), layout, sim);
    let predicted = persisted.model.predict(&record.sample());
    Ok(Prediction {
        runtime_cycles: record.counters.runtime_cycles,
        stlb_hits: record.counters.stlb_hits,
        stlb_misses: record.counters.stlb_misses,
        walk_cycles: record.counters.walk_cycles,
        model: kind,
        predicted,
        max_err: persisted.max_err,
        geo_mean_err: persisted.geo_mean_err,
    })
}

/// Scores candidate layouts for `recommend` with the pair's fitted
/// models. The `predicted` component comes from the default model
/// through the same cached simulation path the `predict` verb uses, so
/// a recommendation's prediction is bit-comparable with a later
/// `predict` for the recommended layout (and candidate scoring warms
/// the prediction cache). The `disagreement` component is the relative
/// spread of *every* fitted model's prediction on the candidate's
/// measured sample — query-by-committee: the candidate the committee
/// disagrees about most is the most informative one to measure next.
struct RegistryScorer<'a> {
    registry: &'a ModelRegistry,
    workload: &'a str,
    platform: &'static Platform,
    entry: &'a RegistryEntry,
}

impl Scorer for RegistryScorer<'_> {
    fn score(&self, layout: &MemoryLayout) -> Option<Score> {
        let kind = ModelKind::Mosmodel;
        let key = prediction_key(self.workload, self.platform.name, layout, kind);
        let prediction = match self.registry.prediction_cache().get(&key) {
            Some(hit) => hit,
            None => {
                // Candidate simulations run untraced: their spans must
                // not pollute the recommend request's trace or the sim
                // stage sums (which meter the predict path).
                let p = simulate_prediction(self.entry, self.platform, layout, kind, None).ok()?;
                self.registry.prediction_cache().insert(key, p.clone());
                p
            }
        };
        // Rebuild the measured sample from the prediction's counters
        // (models only read H/M/C/R; the layout kind matters to fitting
        // alone) and poll the committee.
        let sample = Sample {
            r: prediction.runtime_cycles as f64,
            h: prediction.stlb_hits as f64,
            m: prediction.stlb_misses as f64,
            c: prediction.walk_cycles as f64,
            kind: LayoutKind::Mixed,
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for model in &self.entry.bundle.models {
            let p = model.model.predict(&sample);
            if p.is_finite() {
                min = min.min(p);
                max = max.max(p);
            }
        }
        let disagreement = if max >= min && prediction.predicted != 0.0 {
            (max - min) / prediction.predicted.abs()
        } else {
            0.0
        };
        Some(Score {
            predicted: prediction.predicted,
            disagreement,
        })
    }
}

/// The in-process recommendation path: parse and canonicalize the
/// budget, enumerate the deterministic candidate set, score each
/// candidate with the pair's fitted models, and decide between the
/// confident answer (lowest predicted runtime) and the active-learning
/// fallback (most informative layout to measure). Public so the
/// integration tests can compare the server's answers against a direct
/// call.
pub fn recommend(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    budget: &str,
    threshold: Option<f64>,
) -> Result<RecommendReply, ServiceError> {
    recommend_traced(
        registry,
        workload,
        platform,
        budget,
        threshold,
        &mut RequestTrace::disabled(),
    )
}

/// [`recommend`] with stage tracing: `fit` for the registry entry,
/// `cache_lookup` for the recommendation cache, `explore` for candidate
/// enumeration, `score` for the per-candidate predictions + decision.
pub(crate) fn recommend_traced(
    registry: &ModelRegistry,
    workload: &str,
    platform: &str,
    budget_text: &str,
    threshold: Option<f64>,
    tracer: &mut RequestTrace,
) -> Result<RecommendReply, ServiceError> {
    let platform = Platform::by_name(platform)
        .ok_or_else(|| ServiceError::UnknownPlatform(platform.to_string()))?;
    let threshold = threshold.unwrap_or(DEFAULT_CV_THRESHOLD);
    let fit_start = tracer.now_us();
    let entry = registry.entry(workload, platform)?;
    tracer.record("fit", fit_start);
    let pool = entry.ctx.pool();
    let budget =
        parse_budget(pool, budget_text).map_err(|e| ServiceError::BadBudget(e.to_string()))?;

    // The cache key carries the *canonical* budget, so spellings naming
    // the same inventory (`8x2m+8x2m`, `16x2m`) share one entry; the
    // threshold enters as raw bits to keep the key exact.
    let lookup_start = tracer.now_us();
    let key: RecommendKey = (
        workload.to_string(),
        platform.name.to_string(),
        render_budget(&budget),
        threshold.to_bits(),
    );
    let cached = registry.recommend_cache().get(&key);
    tracer.record("cache_lookup", lookup_start);
    if let Some(cached) = cached {
        return Ok(cached);
    }

    let explore_start = tracer.now_us();
    let candidates = enumerate_candidates(pool, &budget, DEFAULT_EXPLORE_STEPS);
    tracer.record("explore", explore_start);

    let score_start = tracer.now_us();
    let cv_err = registry.cv_error(workload, platform);
    let scorer = RegistryScorer {
        registry,
        workload,
        platform,
        entry: &entry,
    };
    let decision = recommend_over(&candidates, &scorer, cv_err, threshold)
        // Candidates exist for every budget (all-4KB at minimum), so an
        // empty scored set means the default model is unavailable.
        .map_err(|_| ServiceError::ModelUnavailable(ModelKind::Mosmodel.name().to_string()));
    tracer.record("score", score_start);

    let reply = match decision? {
        Recommendation::Layout { layout, predicted } => RecommendReply {
            action: RecommendAction::Layout,
            spec: render_layout_spec(&layout),
            value: predicted,
            cv_err,
            threshold,
        },
        Recommendation::Measure { layout, gain } => RecommendReply {
            action: RecommendAction::Measure,
            spec: render_layout_spec(&layout),
            value: gain,
            cv_err,
            threshold,
        },
    };
    registry.recommend_cache().insert(key, reply.clone());
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_error_backoff_honors_shutdown_first() {
        assert_eq!(on_accept_error(true, 0), AcceptErrorAction::Shutdown);
        assert_eq!(on_accept_error(true, 99), AcceptErrorAction::Shutdown);
    }

    #[test]
    fn accept_error_backoff_grows_and_caps() {
        let pause = |n| match on_accept_error(false, n) {
            AcceptErrorAction::Backoff(d) => d,
            AcceptErrorAction::Shutdown => panic!("no shutdown requested"),
        };
        // Starts small: one transient error must not stall accepts.
        assert_eq!(pause(0), Duration::from_millis(1));
        // Monotonically non-decreasing under consecutive errors...
        let mut last = Duration::ZERO;
        for n in 0..40 {
            let p = pause(n);
            assert!(p >= last, "backoff shrank at error {n}");
            assert!(p >= Duration::from_millis(1), "never a zero (hot) spin");
            last = p;
        }
        // ...and capped so recovery after EMFILE clears is prompt.
        assert_eq!(pause(12), Duration::from_millis(100));
        assert_eq!(pause(u32::MAX), Duration::from_millis(100));
    }
}
