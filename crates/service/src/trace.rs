//! Per-request tracing glue: the wall clock lives here, not in `obs`.
//!
//! The `obs` crate is clock-free by design (it sits inside the audit
//! determinism scope); this module is the one place in the request path
//! that reads `Instant` and turns it into span ticks. Each request gets a
//! [`RequestTrace`]: a wall-domain recorder (microseconds since the first
//! byte of the request line arrived) and a sim-domain recorder that the
//! partial simulation fills with simulated-cycle spans.

use std::time::Instant;

use obs::{Span, SpanRecorder};

/// Both recorders for one in-flight request, plus the wall epoch they
/// are measured against.
pub(crate) struct RequestTrace {
    epoch: Instant,
    /// Wall-domain spans (µs since `epoch`).
    pub(crate) wall: SpanRecorder,
    /// Sim-domain spans (simulated cycles), filled by the partial
    /// simulation via `measure_layout_traced`.
    pub(crate) sim: SpanRecorder,
}

impl RequestTrace {
    /// A tracer whose wall axis starts at `epoch` (when the request's
    /// first byte arrived), holding at most `span_capacity` spans per
    /// domain.
    pub(crate) fn new(span_capacity: usize, epoch: Instant) -> RequestTrace {
        RequestTrace {
            epoch,
            wall: SpanRecorder::new(span_capacity),
            sim: SpanRecorder::new(span_capacity),
        }
    }

    /// A zero-capacity tracer for untraced calls: records nothing, so
    /// the traced and untraced code paths stay identical.
    pub(crate) fn disabled() -> RequestTrace {
        RequestTrace::new(0, Instant::now())
    }

    /// Microseconds of monotonic wall time since the request epoch.
    pub(crate) fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records a wall-domain span from `start_us` (a previous
    /// [`RequestTrace::now_us`] reading) to now.
    pub(crate) fn record(&mut self, stage: &str, start_us: u64) {
        let end = self.now_us();
        self.wall.record(stage, start_us, end.max(start_us));
    }

    /// Consumes the tracer: `((wall spans, wall drops), (sim spans, sim
    /// drops))`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(self) -> ((Vec<Span>, u64), (Vec<Span>, u64)) {
        (self.wall.into_parts(), self.sim.into_parts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_spans_are_monotonic_and_bounded() {
        let mut t = RequestTrace::new(2, Instant::now());
        let start = t.now_us();
        t.record("read", start);
        t.record("parse", t.now_us().saturating_sub(1));
        t.record("render", 0);
        let ((spans, dropped), _) = t.into_parts();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 1);
        for span in &spans {
            assert!(span.end >= span.start, "{span:?}");
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = RequestTrace::disabled();
        t.record("read", 0);
        let ((wall, wall_dropped), (sim, sim_dropped)) = t.into_parts();
        assert!(wall.is_empty() && sim.is_empty());
        assert_eq!((wall_dropped, sim_dropped), (1, 0));
    }
}
